//! Garbage collection for the MVCC storage layer: version vacuum, header
//! freezing and commit-stamp pruning behind the live-snapshot low-watermark.
//!
//! PR 4's MVCC-lite made every write *append*: an UPDATE marks the old
//! version dead and inserts a new one, and every commit adds a stamp-table
//! entry — so without reclamation a sustained write workload degrades
//! monotonically (heap pages, index postings and the stamp table all grow
//! O(writes)). This module bounds all three:
//!
//! - the **low-watermark** ([`crate::txn::TxnManager::oldest_visible_stamp`])
//!   is the oldest commit stamp any live snapshot reads at; commits at or
//!   below it are visible to every live and future snapshot;
//! - **vacuum** ([`crate::catalog::Table::vacuum`], driven by
//!   [`crate::catalog::Catalog::vacuum`]) walks a table's heap pages and,
//!   for every version whose *deleter* committed at or below the watermark,
//!   physically reclaims it — removing its index postings, tombstoning its
//!   heap slot (reusable by later inserts) and compacting the page;
//! - **freezing**: surviving versions whose *creator* committed at or below
//!   the watermark get their header rewritten to the committed-forever
//!   [`crate::txn::FROZEN`] sentinel, dropping their dependence on the
//!   stamp table;
//! - **stamp pruning**: once every table's headers have been frozen through
//!   stamp `S` (tracked per table as `frozen_through`), stamp entries
//!   ≤ `min(frozen_through)` are unreferenced and dropped
//!   ([`crate::txn::TxnManager::prune_stamps`]) — the stamp table ends up
//!   bounded by the commits since the last vacuum instead of total history.
//!
//! This is the classic MVCC reclamation split: PostgreSQL-style vacuum
//! (per-table passes reclaiming dead tuples + freezing old xmins against
//! wraparound/lookup cost) with a Hekaton-style cooperative flavour — the
//! engine triggers small vacuums opportunistically on write activity
//! (`dead_hint` pressure, see [`TableGc`]) rather than only on demand.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-table garbage-collection state: trigger pressure and the freeze
/// horizon. All counters are maintained under the table's write latch (all
/// versioned writes hold it), so a vacuum pass — which also holds it — can
/// reset them to exact remainders without racing increments.
#[derive(Debug)]
pub struct TableGc {
    /// Upper bound on headers that still reference a transaction id
    /// (`xmin` not yet frozen, or `xmax` set). Monotonically incremented by
    /// writes, set to the exact remainder by a vacuum pass. `0` means the
    /// table is *fully frozen*: no header references any stamp, so its
    /// `frozen_through` may be bumped to the current watermark without a
    /// scan (the "clean bump" that lets untouched tables stop blocking
    /// stamp pruning).
    unfrozen: AtomicU64,
    /// Reclaim pressure: versions marked dead plus tombstoned slots since
    /// the last vacuum. Drives the opportunistic vacuum trigger; reset by
    /// a pass to the count of dead-but-not-yet-reclaimable versions.
    dead_hint: AtomicU64,
    /// No header in this table references a commit stamp ≤ this value.
    /// Initialised to the commit counter at table creation (a transaction
    /// writing the table necessarily commits later, i.e. with a larger
    /// stamp); advanced by vacuum passes and clean bumps.
    frozen_through: AtomicU64,
    /// The watermark the last vacuum pass ran against. The opportunistic
    /// trigger only refires once the watermark has moved past it — a
    /// long-lived snapshot pinning the watermark must not cause a futile
    /// full-table scan on every commit (the pressure would stay above the
    /// threshold with nothing reclaimable).
    last_pass_watermark: AtomicU64,
}

impl TableGc {
    /// GC state for a table created when the commit counter read `created_seq`.
    pub fn new(created_seq: u64) -> Self {
        TableGc {
            unfrozen: AtomicU64::new(0),
            dead_hint: AtomicU64::new(0),
            frozen_through: AtomicU64::new(created_seq),
            last_pass_watermark: AtomicU64::new(created_seq),
        }
    }

    /// Record versioned header references created by a write (`n` new
    /// transaction-id references: 1 per versioned insert or delete mark).
    pub fn note_unfrozen(&self, n: u64) {
        self.unfrozen.fetch_add(n, Ordering::Relaxed);
    }

    /// Record reclaim pressure (a version marked dead, or a slot
    /// tombstoned and awaiting compaction).
    pub fn note_dead(&self, n: u64) {
        self.dead_hint.fetch_add(n, Ordering::Relaxed);
    }

    /// Current reclaim-pressure estimate (drives the auto-vacuum trigger).
    pub fn dead_hint(&self) -> u64 {
        self.dead_hint.load(Ordering::Relaxed)
    }

    /// Current unfrozen-header upper bound.
    pub fn unfrozen(&self) -> u64 {
        self.unfrozen.load(Ordering::Relaxed)
    }

    /// The stamp this table is frozen through.
    pub fn frozen_through(&self) -> u64 {
        self.frozen_through.load(Ordering::Acquire)
    }

    /// The watermark of the last vacuum pass over this table.
    pub fn last_pass_watermark(&self) -> u64 {
        self.last_pass_watermark.load(Ordering::Relaxed)
    }

    /// Reset counters to the exact remainders a vacuum pass observed and
    /// advance the freeze horizon. Must be called under the table's write
    /// latch.
    pub fn after_pass(&self, watermark: u64, remaining_unfrozen: u64, remaining_dead: u64) {
        self.unfrozen.store(remaining_unfrozen, Ordering::Relaxed);
        self.dead_hint.store(remaining_dead, Ordering::Relaxed);
        self.frozen_through.fetch_max(watermark, Ordering::AcqRel);
        self.last_pass_watermark
            .fetch_max(watermark, Ordering::AcqRel);
    }

    /// Clean bump: with no unfrozen headers, the table references no stamp
    /// at all, so the freeze horizon advances without a scan. Must be
    /// called under the table's write latch. Returns whether it advanced.
    pub fn try_clean_bump(&self, watermark: u64) -> bool {
        if self.unfrozen.load(Ordering::Relaxed) == 0 {
            self.frozen_through.fetch_max(watermark, Ordering::AcqRel);
            true
        } else {
            false
        }
    }
}

/// What one table-level vacuum pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableVacuumReport {
    /// Table (or materialized-view backing stream) name.
    pub table: String,
    /// Dead versions physically reclaimed (heap slot freed, index postings
    /// removed).
    pub versions_reclaimed: u64,
    /// Surviving versions whose header was rewritten to the committed-
    /// forever sentinel.
    pub versions_frozen: u64,
    /// Pages compacted (dead record space repacked, slots reusable).
    pub pages_compacted: u64,
    /// Dead versions the pass had to leave behind (their deleter was still
    /// uncommitted or committed above the watermark).
    pub remaining_dead: u64,
}

/// The outcome of a [`crate::catalog::Catalog::vacuum`] run.
#[derive(Debug, Clone, Default)]
pub struct VacuumReport {
    /// The low-watermark the pass ran against.
    pub watermark: u64,
    /// Per-table reports, in pass order (only the tables that were
    /// actually scanned; clean tables are skipped).
    pub tables: Vec<TableVacuumReport>,
    /// Commit-stamp entries dropped after freezing.
    pub stamps_pruned: u64,
    /// Commit-stamp entries still held (live-txn horizon).
    pub stamps_remaining: u64,
}

impl VacuumReport {
    /// Total versions reclaimed across all tables of this run.
    pub fn versions_reclaimed(&self) -> u64 {
        self.tables.iter().map(|t| t.versions_reclaimed).sum()
    }

    /// Total versions frozen across all tables of this run.
    pub fn versions_frozen(&self) -> u64 {
        self.tables.iter().map(|t| t.versions_frozen).sum()
    }

    /// Total pages compacted across all tables of this run.
    pub fn pages_compacted(&self) -> u64 {
        self.tables.iter().map(|t| t.pages_compacted).sum()
    }
}

/// Cumulative database-wide GC counters (all vacuum runs, manual and
/// opportunistic), for monitoring and the soak/bench harnesses.
#[derive(Debug, Default)]
pub struct GcTotals {
    versions_reclaimed: AtomicU64,
    versions_frozen: AtomicU64,
    stamps_pruned: AtomicU64,
    pages_compacted: AtomicU64,
    vacuum_runs: AtomicU64,
}

/// A plain copy of [`GcTotals`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    pub versions_reclaimed: u64,
    pub versions_frozen: u64,
    pub stamps_pruned: u64,
    pub pages_compacted: u64,
    pub vacuum_runs: u64,
}

impl GcTotals {
    /// Fold one run's report into the totals.
    pub fn absorb(&self, report: &VacuumReport) {
        self.versions_reclaimed
            .fetch_add(report.versions_reclaimed(), Ordering::Relaxed);
        self.versions_frozen
            .fetch_add(report.versions_frozen(), Ordering::Relaxed);
        self.stamps_pruned
            .fetch_add(report.stamps_pruned, Ordering::Relaxed);
        self.pages_compacted
            .fetch_add(report.pages_compacted(), Ordering::Relaxed);
        self.vacuum_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> GcStats {
        GcStats {
            versions_reclaimed: self.versions_reclaimed.load(Ordering::Relaxed),
            versions_frozen: self.versions_frozen.load(Ordering::Relaxed),
            stamps_pruned: self.stamps_pruned.load(Ordering::Relaxed),
            pages_compacted: self.pages_compacted.load(Ordering::Relaxed),
            vacuum_runs: self.vacuum_runs.load(Ordering::Relaxed),
        }
    }
}

/// A census of every stored version of one table (diagnostic scan used by
/// the GC tests, the soak harness and `bench_vacuum`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionCensus {
    /// Stored versions, whatever their state.
    pub total_versions: u64,
    /// Versions with no delete mark (`xmax == 0`).
    pub live: u64,
    /// Versions carrying a delete mark (superseded or deleted; their
    /// deleter may or may not have committed yet).
    pub dead: u64,
    /// Fully frozen headers (`xmin == FROZEN`, `xmax == 0`): no stamp-table
    /// dependence at all.
    pub frozen: u64,
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::buffer::BufferPool;
    use crate::catalog::{Catalog, Table};
    use crate::disk::DiskManager;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::txn::Transaction;
    use crate::value::{DataType, Value};

    fn setup() -> (Catalog, Arc<Table>) {
        let c = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 256)));
        let t = c
            .create_table(
                "T",
                Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Str)]),
            )
            .unwrap();
        t.create_index("t_id", vec![0], true).unwrap();
        (c, t)
    }

    fn row(id: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(id), Value::Str(format!("v{v}"))])
    }

    /// One committed autocommit-style update of row `id` → value `v`.
    fn committed_update(c: &Catalog, t: &Arc<Table>, id: i64, v: i64) {
        let mut txn = Transaction::begin(c.txns());
        let snap = txn.write_snapshot();
        let (rid, _) = t
            .find_by_value_visible(0, &Value::Int(id), &snap)
            .unwrap()
            .pop()
            .unwrap();
        let (_, new_rid) = t.update_txn(rid, &row(id, v), txn.id()).unwrap();
        txn.log_update_at(t, rid, new_rid);
        txn.commit();
    }

    #[test]
    fn update_churn_is_reclaimed_and_bounded() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        for v in 1..=500 {
            committed_update(&c, &t, 1, v);
        }
        let before = t.version_census().unwrap();
        assert_eq!(before.total_versions, 501, "one version per update + base");
        assert_eq!(c.txns().stamp_count(), 500);

        let report = c.vacuum(None).unwrap();
        assert_eq!(report.versions_reclaimed(), 500);
        assert!(report.stamps_pruned >= 499, "stamps drop with the garbage");

        let after = t.version_census().unwrap();
        assert_eq!(after.total_versions, 1, "only the live version survives");
        assert_eq!(after.frozen, 1, "survivor is frozen (no stamp dependence)");
        assert!(
            c.txns().stamp_count() <= 1,
            "stamp table bounded by live horizon, got {}",
            c.txns().stamp_count()
        );
        // The index holds exactly one posting again.
        assert_eq!(
            t.index_lookup("t_id", &vec![Value::Int(1)]).unwrap().len(),
            1
        );
        // And the survivor still reads correctly.
        let found = t.find_by_value(0, &Value::Int(1)).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, row(1, 500));
    }

    #[test]
    fn heap_space_is_reused_after_vacuum() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        // Interleave churn with vacuum: the page count must stay flat
        // instead of growing O(updates).
        for round in 0..20 {
            for v in 0..100 {
                committed_update(&c, &t, 1, round * 100 + v + 1);
            }
            c.vacuum(None).unwrap();
        }
        assert!(
            t.page_count() <= 2,
            "2000 single-row updates with vacuum must stay within a couple \
             of pages, got {}",
            t.page_count()
        );
        assert!(c.txns().stamp_count() <= 1);
    }

    #[test]
    fn snapshot_held_across_vacuum_keeps_its_version_set() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        committed_update(&c, &t, 1, 1);
        // Pin the state where v = "v1".
        let pinned = c.latest_snapshot();
        committed_update(&c, &t, 1, 2);
        committed_update(&c, &t, 1, 3);

        let report = c.vacuum(None).unwrap();
        // v0's deleter committed before the pinned snapshot: reclaimable.
        // v1 is what `pinned` reads, v2 was deleted after it, v3 is live —
        // all three must survive.
        assert_eq!(
            report.versions_reclaimed(),
            1,
            "only pre-snapshot garbage goes"
        );
        let seen = t.find_by_value_visible(0, &Value::Int(1), &pinned).unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, row(1, 1), "pinned snapshot still reads v1");

        // Dropping the snapshot releases the watermark; the rest reclaims.
        drop(pinned);
        let report = c.vacuum(None).unwrap();
        assert_eq!(report.versions_reclaimed(), 2);
        assert_eq!(t.version_census().unwrap().total_versions, 1);
        assert_eq!(t.find_by_value(0, &Value::Int(1)).unwrap()[0].1, row(1, 3));
    }

    #[test]
    fn rollback_then_vacuum_reclaims_aborted_versions_and_postings() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();

        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(2, 0), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        let snap = txn.write_snapshot();
        let (rid1, _) = t
            .find_by_value_visible(0, &Value::Int(1), &snap)
            .unwrap()
            .pop()
            .unwrap();
        t.mark_delete_txn(rid1, txn.id()).unwrap();
        txn.log_delete_at(&t, rid1);
        drop(snap);
        txn.abort().unwrap();

        // Rollback already removed the aborted insert and its posting…
        assert!(t
            .index_lookup("t_id", &vec![Value::Int(2)])
            .unwrap()
            .is_empty());
        // …and vacuum reclaims the tombstoned space (the aborted record's
        // bytes are dead page space, not a dead *version*, so the pass
        // must compact even with nothing version-reclaimable) and leaves
        // the survivor intact (its delete mark was cleared, not
        // committed).
        let report = c.vacuum(None).unwrap();
        assert_eq!(
            report.versions_reclaimed(),
            0,
            "nothing dead after rollback"
        );
        assert!(
            report.pages_compacted() >= 1,
            "the aborted record's tombstoned bytes must be compacted away"
        );
        let census = t.version_census().unwrap();
        assert_eq!(census.total_versions, 1);
        assert_eq!(census.frozen, 1);
        assert_eq!(t.find_by_value(0, &Value::Int(1)).unwrap()[0].1, row(1, 0));
    }

    #[test]
    fn abort_churn_stays_bounded_with_vacuum() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        // Insert-then-rollback cycles leave tombstoned slots whose record
        // bytes only compaction reclaims; interleaved vacuums must keep
        // the heap flat instead of growing O(aborts).
        for round in 0..20 {
            for v in 0..100 {
                let mut txn = Transaction::begin(c.txns());
                let rid = t.insert_txn(&row(1000 + v, round), txn.id()).unwrap();
                txn.log_insert(&t, rid);
                txn.abort().unwrap();
            }
            c.vacuum(None).unwrap();
        }
        assert!(
            t.page_count() <= 2,
            "2000 aborted inserts with vacuum must stay within a couple of \
             pages, got {}",
            t.page_count()
        );
        assert_eq!(t.version_census().unwrap().total_versions, 1);
    }

    #[test]
    fn vacuum_skips_uncommitted_work() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(2, 0), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        let snap = txn.write_snapshot();
        let (rid1, _) = t
            .find_by_value_visible(0, &Value::Int(1), &snap)
            .unwrap()
            .pop()
            .unwrap();
        t.mark_delete_txn(rid1, txn.id()).unwrap();
        txn.log_delete_at(&t, rid1);
        drop(snap);

        let report = c.vacuum(None).unwrap();
        assert_eq!(
            report.versions_reclaimed(),
            0,
            "uncommitted work is untouchable"
        );
        // The transaction still commits cleanly afterwards.
        txn.commit();
        assert_eq!(t.find_by_value(0, &Value::Int(2)).unwrap().len(), 1);
        assert!(t.find_by_value(0, &Value::Int(1)).unwrap().is_empty());
    }

    #[test]
    fn watermark_follows_live_snapshots() {
        let (c, t) = setup();
        let txns = c.txns();
        assert_eq!(txns.oldest_visible_stamp(), 0);
        t.insert(&row(1, 0)).unwrap();
        committed_update(&c, &t, 1, 1);
        let pin = c.latest_snapshot();
        assert_eq!(txns.oldest_visible_stamp(), pin.seq);
        committed_update(&c, &t, 1, 2);
        assert_eq!(
            txns.oldest_visible_stamp(),
            pin.seq,
            "watermark pinned by the live snapshot"
        );
        let seq = pin.seq;
        drop(pin);
        assert!(txns.oldest_visible_stamp() > seq, "watermark released");
        assert_eq!(txns.live_snapshot_count(), 0);
    }

    #[test]
    fn clean_tables_do_not_pin_the_stamp_table() {
        let (c, t) = setup();
        // A second table that only ever sees frozen loads.
        let bystander = c
            .create_table("B", Schema::from_pairs(&[("x", DataType::Int)]))
            .unwrap();
        bystander.insert(&Tuple::new(vec![Value::Int(1)])).unwrap();

        t.insert(&row(1, 0)).unwrap();
        for v in 1..=50 {
            committed_update(&c, &t, 1, v);
        }
        // Vacuum only the churned table: the untouched-but-clean bystander
        // must not hold the horizon down.
        c.vacuum(Some("T")).unwrap();
        assert!(
            c.txns().stamp_count() <= 1,
            "clean bystander table pinned the stamp table: {} entries",
            c.txns().stamp_count()
        );
    }

    #[test]
    fn pressure_trigger_waits_for_watermark_progress() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        committed_update(&c, &t, 1, 1);
        // Pin the watermark, then pile up garbage above it.
        let pin = c.latest_snapshot();
        for v in 2..=20 {
            committed_update(&c, &t, 1, v);
        }
        assert_eq!(c.gc_pressured_tables(10).len(), 1, "pressure seen");
        // A pass at the pinned watermark reclaims the one pre-pin version
        // and records the watermark it ran at…
        c.vacuum(None).unwrap();
        assert!(
            c.gc_pressured_tables(10).is_empty(),
            "no re-trigger while the watermark is pinned (futile scans)"
        );
        // …and once the pin drops, the trigger re-arms.
        drop(pin);
        assert_eq!(c.gc_pressured_tables(10).len(), 1);
        c.vacuum(None).unwrap();
        assert_eq!(t.version_census().unwrap().total_versions, 1);
    }

    #[test]
    fn unique_constraint_still_enforced_after_vacuum() {
        let (c, t) = setup();
        t.insert(&row(1, 0)).unwrap();
        committed_update(&c, &t, 1, 1);
        c.vacuum(None).unwrap();
        // The frozen survivor still blocks duplicates…
        assert!(t.insert(&row(1, 9)).is_err());
        // …and a fresh key inserts fine (reusing reclaimed space).
        t.insert(&row(2, 0)).unwrap();
        assert_eq!(t.row_count().unwrap(), 2);
    }
}
