//! Catalog: tables (heap + indexes + statistics) and view definitions.
//!
//! [`Table`] bundles a versioned heap file with its secondary indexes and
//! keeps them consistent across inserts, deletes and updates. Writers of a
//! table serialize on a short per-table latch (row conflicts are detected
//! at finer grain by the MVCC delete marks, see [`crate::txn`]); readers
//! never take it — index lookups go through reader-shared locks and heap
//! pages through per-frame locks, so concurrent sessions scan in parallel.
//! [`Catalog`] names tables and views and owns the database-wide
//! [`TxnManager`]; view *text* is stored here (the front-end re-parses it),
//! mirroring how Starburst kept view definitions in catalog relations.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::index::{BTreeIndex, Key};
use crate::schema::Schema;
use crate::stats::{StatsBuilder, TableStats};
use crate::tuple::{Rid, Tuple};
use crate::txn::{Snapshot, TxnId, TxnManager, FROZEN};
use crate::vacuum::{GcStats, GcTotals, TableGc, TableVacuumReport, VacuumReport, VersionCensus};
use crate::value::Value;
use crate::wal::{IndexSnap, TableSnap, ViewSnap, Wal, WalRecord};

/// Numeric table identifier.
pub type TableId = u32;

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    pub name: String,
    /// Ordinals of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    pub unique: bool,
}

struct IndexEntry {
    def: IndexDef,
    /// The tree itself stores postings for *every* version (old snapshots
    /// may still need superseded rows), so it is physically non-unique;
    /// uniqueness of `def.unique` indexes is enforced at the [`Table`]
    /// level against live versions.
    tree: RwLock<BTreeIndex>,
}

/// A stored table: schema + versioned heap + indexes + stats.
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    heap: HeapFile,
    /// Serializes writers of this table (readers never take it). Lock
    /// order: `write_latch` → `indexes` → tree lock → heap pages.
    write_latch: Mutex<()>,
    indexes: RwLock<Vec<IndexEntry>>,
    stats: RwLock<TableStats>,
    /// Garbage-collection state: reclaim pressure, unfrozen-header bound
    /// and the frozen-through stamp (see [`crate::vacuum`]).
    gc: TableGc,
    /// When set, this table's DDL (index creation) is logged here; heap
    /// mutations are logged by the heap itself.
    wal: Option<Arc<Wal>>,
}

impl Table {
    fn new(
        id: TableId,
        name: String,
        schema: Schema,
        pool: Arc<BufferPool>,
        txns: Arc<TxnManager>,
        wal: Option<Arc<Wal>>,
    ) -> Self {
        // A transaction writing this table necessarily commits after the
        // table exists, so no header can ever reference a stamp at or
        // below the current counter: start frozen-through there.
        let created_seq = txns.current_seq();
        Self::build(id, name, schema, pool, txns, wal, created_seq)
    }

    fn build(
        id: TableId,
        name: String,
        schema: Schema,
        pool: Arc<BufferPool>,
        txns: Arc<TxnManager>,
        wal: Option<Arc<Wal>>,
        created_seq: u64,
    ) -> Self {
        Table {
            id,
            name,
            schema,
            heap: HeapFile::create_logged(pool, txns, id, wal.clone()),
            write_latch: Mutex::new(()),
            indexes: RwLock::new(Vec::new()),
            stats: RwLock::new(TableStats::default()),
            gc: TableGc::new(created_seq),
            wal,
        }
    }

    /// Append a DDL record and force it to stable storage (DDL is rare and
    /// autocommitted, so it pays its own flush rather than riding group
    /// commit). No-op when unlogged or while recovery replays.
    fn log_ddl(wal: &Option<Arc<Wal>>, rec: WalRecord) -> Result<()> {
        if let Some(wal) = wal {
            if wal.logging() {
                wal.append(&rec);
                wal.flush_all()?;
            }
        }
        Ok(())
    }

    /// The transaction manager deciding visibility for this table.
    pub fn txns(&self) -> &Arc<TxnManager> {
        self.heap.txns()
    }

    fn key_of(def: &IndexDef, tuple: &Tuple) -> Key {
        def.columns
            .iter()
            .map(|&c| tuple.values[c].clone())
            .collect()
    }

    fn conflict(&self) -> StorageError {
        StorageError::WriteConflict {
            table: self.name.clone(),
        }
    }

    /// Check `tuple` against every unique index: a violation exists when
    /// another *live* version (not deleted by a committed transaction or by
    /// `xid` itself, and not the excluded `skip` version) already carries
    /// the key. Must be called with the write latch held — which also makes
    /// the header copies read here immune to the GC freeze/prune race
    /// (vacuum of this table takes the same latch, and stamps referenced by
    /// an unfrozen header are above the table's frozen-through horizon, so
    /// pruning never drops them).
    fn check_unique(&self, tuple: &Tuple, xid: TxnId, skip: Option<Rid>) -> Result<()> {
        let writer_view = self.txns().snapshot_for(xid);
        let indexes = self.indexes.read();
        for entry in indexes.iter().filter(|e| e.def.unique) {
            let key = Self::key_of(&entry.def, tuple);
            for rid in entry.tree.read().get(&key) {
                if skip == Some(rid) {
                    continue;
                }
                let (hdr, _) = self.heap.get_versioned(rid)?;
                if !writer_view.definitely_dead(&hdr) {
                    return Err(StorageError::UniqueViolation(format_key(&key)));
                }
            }
        }
        Ok(())
    }

    /// Add index entries for a stored version. Must be called with the
    /// write latch held.
    fn index_version(&self, tuple: &Tuple, rid: Rid) {
        let indexes = self.indexes.read();
        for entry in indexes.iter() {
            let key = Self::key_of(&entry.def, tuple);
            entry
                .tree
                .write()
                .insert(key, rid)
                .expect("non-unique tree insert cannot fail");
        }
    }

    /// Remove index entries for a stored version. Must be called with the
    /// write latch held.
    fn unindex_version(&self, tuple: &Tuple, rid: Rid) {
        let indexes = self.indexes.read();
        for entry in indexes.iter() {
            let key = Self::key_of(&entry.def, tuple);
            entry.tree.write().delete(&key, rid);
        }
    }

    // -- versioned (MVCC) writes ------------------------------------------

    /// Insert a tuple version created by transaction `xid`, maintaining all
    /// indexes. The version is invisible to other transactions until `xid`
    /// commits.
    pub fn insert_txn(&self, tuple: &Tuple, xid: TxnId) -> Result<Rid> {
        self.schema.validate(&tuple.values)?;
        let _w = self.write_latch.lock();
        self.check_unique(tuple, xid, None)?;
        let rid = self.heap.insert_version(tuple, xid)?;
        self.index_version(tuple, rid);
        if xid != FROZEN {
            self.gc.note_unfrozen(1);
        }
        Ok(rid)
    }

    /// Mark the version at `rid` deleted by `xid` (first-writer-wins:
    /// fails with [`StorageError::WriteConflict`] if any transaction
    /// already wrote it). Index entries remain for older snapshots.
    /// Returns the tuple image for undo/delta capture.
    pub fn mark_delete_txn(&self, rid: Rid, xid: TxnId) -> Result<Tuple> {
        let _w = self.write_latch.lock();
        let old = self.heap.mark_delete(rid, xid).map_err(|e| match e {
            StorageError::WriteConflict { .. } => self.conflict(),
            other => other,
        })?;
        self.gc.note_unfrozen(1);
        self.gc.note_dead(1);
        Ok(old)
    }

    /// MVCC update: mark the old version at `rid` dead and insert a new
    /// version carrying `new`. Returns `(old_tuple, new_rid)`. Fails with
    /// [`StorageError::WriteConflict`] when another transaction already
    /// wrote the row, leaving it untouched.
    pub fn update_txn(&self, rid: Rid, new: &Tuple, xid: TxnId) -> Result<(Tuple, Rid)> {
        self.schema.validate(&new.values)?;
        let _w = self.write_latch.lock();
        // Claim the row *before* the uniqueness check: a race with another
        // writer of the same row must surface as a write conflict, not as
        // a spurious unique violation against the rival's pending version.
        let old = self.heap.mark_delete(rid, xid).map_err(|e| match e {
            StorageError::WriteConflict { .. } => self.conflict(),
            other => other,
        })?;
        if let Err(e) = self.check_unique(new, xid, Some(rid)) {
            let _ = self.heap.clear_delete_mark(rid, xid);
            return Err(e);
        }
        let new_rid = self.heap.insert_version(new, xid)?;
        self.index_version(new, new_rid);
        // One superseded version (mark) + one versioned insert.
        self.gc.note_unfrozen(2);
        self.gc.note_dead(1);
        Ok((old, new_rid))
    }

    /// Physically remove the version at `rid` with its index entries
    /// (rollback of an insert, or garbage collection).
    pub fn remove_version(&self, rid: Rid) -> Result<Tuple> {
        let _w = self.write_latch.lock();
        let old = self.heap.delete(rid)?;
        self.unindex_version(&old, rid);
        // The tombstoned slot's record space awaits compaction.
        self.gc.note_dead(1);
        Ok(old)
    }

    /// Clear a delete mark set by `xid` (rollback of a delete/update).
    pub fn clear_delete_mark(&self, rid: Rid, xid: TxnId) -> Result<()> {
        let _w = self.write_latch.lock();
        self.heap.clear_delete_mark(rid, xid)
    }

    // -- frozen (unversioned) writes --------------------------------------

    /// Insert a frozen tuple: immediately visible to every snapshot and not
    /// subject to rollback. Fixture loads and materialized-view backing
    /// storage use this; transactional DML goes through
    /// [`Table::insert_txn`].
    pub fn insert(&self, tuple: &Tuple) -> Result<Rid> {
        self.insert_txn(tuple, FROZEN)
    }

    /// Physically delete by RID, maintaining indexes. Returns the removed
    /// tuple. Reserved for frozen storage (no snapshot can resurrect it).
    pub fn delete(&self, rid: Rid) -> Result<Tuple> {
        self.remove_version(rid)
    }

    /// Physically update by RID in place; relocation and key changes
    /// re-point indexes. Returns `(old_tuple, new_rid)`. Reserved for
    /// frozen storage.
    pub fn update(&self, rid: Rid, new: &Tuple) -> Result<(Tuple, Rid)> {
        self.schema.validate(&new.values)?;
        let _w = self.write_latch.lock();
        self.check_unique(new, FROZEN, Some(rid))?;
        let (old, new_rid) = self.heap.update(rid, new)?;
        if rid != new_rid {
            // The relocation tombstoned the old slot.
            self.gc.note_dead(1);
        }
        let indexes = self.indexes.read();
        for entry in indexes.iter() {
            let old_key = Self::key_of(&entry.def, &old);
            let new_key = Self::key_of(&entry.def, new);
            if old_key != new_key || rid != new_rid {
                let mut tree = entry.tree.write();
                tree.delete(&old_key, rid);
                tree.insert(new_key, new_rid)
                    .expect("non-unique tree insert cannot fail");
            }
        }
        Ok((old, new_rid))
    }

    // -- reads -------------------------------------------------------------

    /// Fetch one tuple, whatever its version state (raw read; snapshot
    /// readers use [`Table::get_snapshot`]).
    pub fn get(&self, rid: Rid) -> Result<Tuple> {
        self.heap.get(rid)
    }

    /// Fetch the tuple at `rid` if visible to `snap`.
    pub fn get_snapshot(&self, rid: Rid, snap: &Snapshot) -> Result<Option<Tuple>> {
        self.heap.get_snapshot(rid, snap)
    }

    /// Fetch the tuple at `rid` if visible to the latest-committed
    /// snapshot.
    pub fn get_latest(&self, rid: Rid) -> Result<Option<Tuple>> {
        self.heap.get_snapshot(rid, &self.txns().snapshot_latest())
    }

    /// Scan tuples visible to the latest-committed snapshot; see
    /// [`HeapFile::for_each`].
    pub fn for_each(&self, f: impl FnMut(Rid, Tuple) -> Result<bool>) -> Result<()> {
        self.heap.for_each(f)
    }

    /// Scan tuples visible to `snap`.
    pub fn for_each_visible(
        &self,
        snap: &Snapshot,
        f: impl FnMut(Rid, Tuple) -> Result<bool>,
    ) -> Result<()> {
        self.heap.for_each_snapshot(snap, f)
    }

    pub fn scan_all(&self) -> Result<Vec<(Rid, Tuple)>> {
        self.heap.scan_all()
    }

    /// Streaming scan unit (latest-committed visibility); see
    /// [`HeapFile::scan_page`].
    pub fn scan_page(&self, idx: usize) -> Result<Option<Vec<(Rid, Tuple)>>> {
        self.heap.scan_page(idx)
    }

    /// Streaming scan unit under an explicit snapshot; also returns how
    /// many versions the visibility check skipped.
    pub fn scan_page_snapshot(
        &self,
        idx: usize,
        snap: &Snapshot,
    ) -> Result<Option<crate::heap::VisiblePage>> {
        self.heap.scan_page_snapshot(idx, snap)
    }

    /// Number of rows visible to the latest-committed snapshot.
    pub fn row_count(&self) -> Result<usize> {
        self.heap.count()
    }

    /// Number of rows visible to `snap`.
    pub fn row_count_visible(&self, snap: &Snapshot) -> Result<usize> {
        self.heap.count_snapshot(snap)
    }

    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Add a secondary index over `columns`, building it from current data
    /// (every stored version gets an entry; uniqueness is checked over the
    /// currently-live versions only).
    pub fn create_index(&self, name: &str, columns: Vec<usize>, unique: bool) -> Result<()> {
        let _w = self.write_latch.lock();
        let mut indexes = self.indexes.write();
        if indexes
            .iter()
            .any(|e| e.def.name.eq_ignore_ascii_case(name))
        {
            return Err(StorageError::DuplicateIndex(name.to_string()));
        }
        let def = IndexDef {
            name: name.to_string(),
            columns,
            unique,
        };
        let mut tree = BTreeIndex::new(false);
        let latest = self.txns().snapshot_latest();
        let mut live_keys: HashSet<Key> = HashSet::new();
        let mut build_err = None;
        self.heap.for_each_version(|rid, hdr, t| {
            let key = Table::key_of(&def, &t);
            if unique && hdr.xmax == 0 && latest.sees(&hdr) && !live_keys.insert(key.clone()) {
                build_err = Some(StorageError::UniqueViolation(format_key(&key)));
                return Ok(false);
            }
            tree.insert(key, rid)?;
            Ok(true)
        })?;
        if let Some(e) = build_err {
            return Err(e);
        }
        Self::log_ddl(
            &self.wal,
            WalRecord::CreateIndex {
                table: self.id,
                index: IndexSnap {
                    name: def.name.clone(),
                    columns: def.columns.clone(),
                    unique: def.unique,
                },
            },
        )?;
        indexes.push(IndexEntry {
            def,
            tree: RwLock::new(tree),
        });
        Ok(())
    }

    /// The underlying heap (recovery's redo/undo target).
    pub(crate) fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Register an index definition with an empty tree (recovery only; the
    /// tree is filled by [`Table::rebuild_indexes`] once redo/undo settle
    /// the heap contents).
    pub(crate) fn restore_index_def(&self, def: IndexDef) {
        self.indexes.write().push(IndexEntry {
            def,
            tree: RwLock::new(BTreeIndex::new(false)),
        });
    }

    /// Rebuild every index tree from the heap (after recovery rewrote the
    /// pages underneath them). Every stored version gets a posting, as at
    /// runtime; uniqueness is not re-checked — the log replays only states
    /// the runtime already validated.
    pub fn rebuild_indexes(&self) -> Result<()> {
        let _w = self.write_latch.lock();
        let indexes = self.indexes.read();
        for entry in indexes.iter() {
            let mut tree = BTreeIndex::new(false);
            self.heap.for_each_version(|rid, _, t| {
                tree.insert(Table::key_of(&entry.def, &t), rid)?;
                Ok(true)
            })?;
            *entry.tree.write() = tree;
        }
        Ok(())
    }

    /// Names and definitions of all indexes.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.read().iter().map(|e| e.def.clone()).collect()
    }

    /// Definition of the named index, if it exists.
    pub fn index_def(&self, name: &str) -> Option<IndexDef> {
        self.indexes
            .read()
            .iter()
            .find(|e| e.def.name.eq_ignore_ascii_case(name))
            .map(|e| e.def.clone())
    }

    /// Resolve one index posting under `snap`: the tuple at `rid` if the
    /// slot still holds a version that is visible **and** still carries
    /// `key` in the index's columns. Postings are collected without any
    /// lock coupling to the heap, so by the time a reader dereferences one
    /// a concurrent rollback or vacuum may have physically reclaimed the
    /// slot — and a later insert may have reused it for an unrelated row.
    /// Both cases resolve to `None` (invisible), never to an error or a
    /// wrong row. The visibility check itself runs under the page latch
    /// (see [`HeapFile::scan_page_snapshot`] on the GC freeze/prune race).
    pub fn resolve_posting(
        &self,
        rid: Rid,
        snap: &Snapshot,
        def: &IndexDef,
        key: &Key,
    ) -> Result<Option<Tuple>> {
        let Some(tuple) = self.heap.try_get_visible(rid, snap)? else {
            return Ok(None);
        };
        let matches = def
            .columns
            .iter()
            .zip(key.iter())
            .all(|(&c, k)| tuple.values.get(c) == Some(k));
        Ok(if matches { Some(tuple) } else { None })
    }

    /// Find an index whose column list starts with exactly `columns` (we use
    /// exact-prefix match; the planner only asks for full-key equality).
    pub fn find_index(&self, columns: &[usize]) -> Option<IndexDef> {
        self.indexes
            .read()
            .iter()
            .find(|e| e.def.columns.len() == columns.len() && e.def.columns == columns)
            .map(|e| e.def.clone())
    }

    /// Point lookup through the named index. The postings cover every
    /// stored version; snapshot readers filter through
    /// [`Table::get_snapshot`] (the executor's `IndexEq` does this).
    pub fn index_lookup(&self, index_name: &str, key: &Key) -> Result<Vec<Rid>> {
        let indexes = self.indexes.read();
        let entry = indexes
            .iter()
            .find(|e| e.def.name.eq_ignore_ascii_case(index_name))
            .ok_or_else(|| StorageError::UnknownIndex(index_name.to_string()))?;
        let rids = entry.tree.read().get(key);
        Ok(rids)
    }

    /// Range scan through the named index (all versions; see
    /// [`Table::index_lookup`]).
    pub fn index_range(
        &self,
        index_name: &str,
        lo: std::ops::Bound<&Key>,
        hi: std::ops::Bound<&Key>,
    ) -> Result<Vec<(Key, Rid)>> {
        let indexes = self.indexes.read();
        let entry = indexes
            .iter()
            .find(|e| e.def.name.eq_ignore_ascii_case(index_name))
            .ok_or_else(|| StorageError::UnknownIndex(index_name.to_string()))?;
        let r = entry.tree.read().range(lo, hi);
        Ok(r)
    }

    /// Recompute statistics with a full scan (latest-committed visibility).
    pub fn analyze(&self) -> Result<TableStats> {
        let mut b = StatsBuilder::new(self.schema.len());
        self.heap.for_each(|_, t| {
            b.observe(&t.values);
            Ok(true)
        })?;
        let stats = b.finish(self.heap.page_count() as u64);
        *self.stats.write() = stats.clone();
        Ok(stats)
    }

    /// Current (possibly stale) statistics.
    pub fn stats(&self) -> TableStats {
        self.stats.read().clone()
    }

    /// Ordinal of a named column, with a table-aware error.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema.resolve(&self.name, name)
    }

    /// Convenience: fetch all tuples whose `col = value` that are visible
    /// to the latest-committed snapshot, using an index when one exists,
    /// else a scan (used by write-back, maintenance and tests, not the
    /// planner).
    pub fn find_by_value(&self, col: usize, value: &Value) -> Result<Vec<(Rid, Tuple)>> {
        self.find_by_value_visible(col, value, &self.txns().snapshot_latest())
    }

    /// [`Table::find_by_value`] under an explicit snapshot.
    pub fn find_by_value_visible(
        &self,
        col: usize,
        value: &Value,
        snap: &Snapshot,
    ) -> Result<Vec<(Rid, Tuple)>> {
        if let Some(def) = self.find_index(&[col]) {
            let key = vec![value.clone()];
            let rids = self.index_lookup(&def.name, &key)?;
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                if let Some(t) = self.resolve_posting(rid, snap, &def, &key)? {
                    out.push((rid, t));
                }
            }
            return Ok(out);
        }
        let mut out = Vec::new();
        self.for_each_visible(snap, |rid, t| {
            if t.values[col].sql_eq(value) == Some(true) {
                out.push((rid, t));
            }
            Ok(true)
        })?;
        Ok(out)
    }

    // -- garbage collection -------------------------------------------------

    /// One vacuum pass over this table against the GC low-watermark:
    /// reclaim every version no live or future snapshot can see (heap slot
    /// tombstoned for reuse, page compacted, index postings removed),
    /// freeze surviving versions of commits at or below the watermark, and
    /// advance the table's frozen-through stamp. Holds the write latch for
    /// the pass (readers are unaffected; writers wait briefly).
    pub fn vacuum(&self, watermark: u64) -> Result<TableVacuumReport> {
        let _w = self.write_latch.lock();
        let hv = self.heap.vacuum(watermark)?;
        // Postings are removed after the page pass (lock order forbids
        // tree locks inside page latches); the latch keeps writers out, and
        // a reader racing the window re-verifies via `resolve_posting`.
        for (rid, tuple) in &hv.removed {
            self.unindex_version(tuple, *rid);
        }
        self.gc
            .after_pass(watermark, hv.remaining_unfrozen, hv.remaining_dead);
        Ok(TableVacuumReport {
            table: self.name.clone(),
            versions_reclaimed: hv.removed.len() as u64,
            versions_frozen: hv.frozen,
            pages_compacted: hv.pages_compacted,
            remaining_dead: hv.remaining_dead,
        })
    }

    /// Advance the frozen-through stamp without a scan when no header
    /// references any transaction id (see [`TableGc::try_clean_bump`]).
    pub fn try_clean_bump(&self, watermark: u64) -> bool {
        let _w = self.write_latch.lock();
        self.gc.try_clean_bump(watermark)
    }

    /// This table's GC state (pressure counters + freeze horizon).
    pub fn gc(&self) -> &TableGc {
        &self.gc
    }

    /// Count every stored version by state (diagnostic full scan used by
    /// GC tests and benches).
    pub fn version_census(&self) -> Result<VersionCensus> {
        self.heap.version_census()
    }
}

fn format_key(key: &Key) -> String {
    let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(", "))
}

/// Kind of a stored view definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Plain relational (SQL) view.
    Sql,
    /// Composite-object (XNF) view.
    Xnf,
}

impl ViewKind {
    /// Stable on-log tag (see [`ViewSnap`]).
    pub fn tag(self) -> u8 {
        match self {
            ViewKind::Sql => 0,
            ViewKind::Xnf => 1,
        }
    }

    pub fn from_tag(tag: u8) -> ViewKind {
        if tag == 1 {
            ViewKind::Xnf
        } else {
            ViewKind::Sql
        }
    }
}

/// A stored view: name + definition text.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub kind: ViewKind,
    pub text: String,
    /// Whether this view is materialized (has backing storage; see
    /// [`Catalog::matview`]).
    pub materialized: bool,
}

/// One backing stream of a materialized view. A relational view has exactly
/// one stream; a materialized CO (XNF) view has one per output stream of
/// its query: node streams (with a leading `__coid` surrogate column) and
/// connection streams (surrogate pairs).
#[derive(Clone)]
pub struct MatViewStream {
    /// The stream name: the view name itself for relational views, the
    /// component/relationship name for CO streams.
    pub name: String,
    /// The backing heap table. Named `VIEW` (relational) or `VIEW$stream`
    /// (CO streams) — the `$` spelling cannot be produced by the SQL lexer,
    /// keeping CO backing tables out of reach of direct DML.
    pub table: Arc<Table>,
}

/// Backing storage of one materialized view: its stream tables, a
/// freshness epoch, and the surrogate-id allocator for CO node rows.
pub struct MatView {
    streams: RwLock<Vec<MatViewStream>>,
    /// Bumped on every maintenance action (incremental or full refresh);
    /// lets clients detect that stored contents moved.
    epoch: std::sync::atomic::AtomicU64,
    /// Next surrogate id for CO node rows (monotonic across refreshes so a
    /// stale reader can never confuse an old row with a new one).
    next_surrogate: std::sync::atomic::AtomicI64,
}

impl MatView {
    fn new(streams: Vec<MatViewStream>) -> Self {
        MatView {
            streams: RwLock::new(streams),
            epoch: std::sync::atomic::AtomicU64::new(0),
            next_surrogate: std::sync::atomic::AtomicI64::new(0),
        }
    }

    /// Snapshot of the current backing streams.
    pub fn streams(&self) -> Vec<MatViewStream> {
        self.streams.read().clone()
    }

    /// Backing table of the named stream.
    pub fn stream(&self, name: &str) -> Option<Arc<Table>> {
        self.streams
            .read()
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .map(|s| Arc::clone(&s.table))
    }

    /// Current maintenance epoch (0 = as populated at CREATE).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Record one maintenance action.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Allocate `n` fresh surrogate ids; returns the first.
    pub fn alloc_surrogates(&self, n: i64) -> i64 {
        self.next_surrogate
            .fetch_add(n, std::sync::atomic::Ordering::AcqRel)
    }
}

/// The catalog of a database instance.
pub struct Catalog {
    pool: Arc<BufferPool>,
    /// Database-wide transaction state (txn ids + commit stamps).
    txns: Arc<TxnManager>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    views: RwLock<HashMap<String, ViewDef>>,
    /// Backing storage of materialized views, keyed like `views`.
    matviews: RwLock<HashMap<String, Arc<MatView>>>,
    next_id: Mutex<TableId>,
    /// Monotonic DDL generation: bumped on every schema change so cached
    /// compiled plans can detect staleness without re-validating names.
    generation: std::sync::atomic::AtomicU64,
    /// Cumulative GC counters across all vacuum runs.
    gc_totals: GcTotals,
    /// When set, DDL and heap mutations of base tables are logged here.
    /// Materialized-view backing tables stay unlogged: only their
    /// definitions hit the log, and recovery rebuilds contents by REFRESH.
    wal: Option<Arc<Wal>>,
}

impl Catalog {
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self::new_logged(pool, None)
    }

    /// A catalog whose DDL, base-table mutations and commits are logged to
    /// `wal` (the durable construction path of `Database::open`).
    pub fn new_logged(pool: Arc<BufferPool>, wal: Option<Arc<Wal>>) -> Self {
        Catalog {
            pool,
            txns: Arc::new(TxnManager::new_logged(wal.clone())),
            tables: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            matviews: RwLock::new(HashMap::new()),
            next_id: Mutex::new(0),
            generation: std::sync::atomic::AtomicU64::new(0),
            gc_totals: GcTotals::default(),
            wal,
        }
    }

    /// The WAL this catalog logs to, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The database-wide transaction manager.
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// A snapshot of the latest committed state (what autocommit
    /// statements read).
    pub fn latest_snapshot(&self) -> Snapshot {
        self.txns.snapshot_latest()
    }

    /// Current DDL generation. Any CREATE/DROP of a table or view (and
    /// index creation / ANALYZE, which change plan choices) advances it.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Advance the DDL generation, invalidating all cached plans compiled
    /// against earlier generations.
    pub fn bump_generation(&self) {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn norm(name: &str) -> String {
        name.to_ascii_uppercase()
    }

    /// Create a table. Fails on duplicate names (tables and views share a
    /// namespace).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let key = Self::norm(name);
        if self.views.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut next = self.next_id.lock();
        let id = *next;
        *next += 1;
        let t = Arc::new(Table::new(
            id,
            name.to_string(),
            schema,
            Arc::clone(&self.pool),
            Arc::clone(&self.txns),
            self.wal.clone(),
        ));
        Table::log_ddl(
            &self.wal,
            WalRecord::CreateTable {
                id,
                name: t.name.clone(),
                schema: t.schema.clone(),
            },
        )?;
        tables.insert(key, Arc::clone(&t));
        self.bump_generation();
        Ok(t)
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let removed = self.tables.write().remove(&Self::norm(name));
        match removed {
            Some(t) => {
                Table::log_ddl(
                    &self.wal,
                    WalRecord::DropTable {
                        name: t.name.clone(),
                    },
                )?;
                self.bump_generation();
                Ok(())
            }
            None => Err(StorageError::UnknownTable(name.to_string())),
        }
    }

    /// Resolve a name to stored data: a base table, or — falling back — the
    /// backing table of a materialized view (`NAME` for relational views,
    /// `NAME$stream` for one stream of a materialized CO view). The fallback
    /// is what lets the planner and executor treat materialized-view scans
    /// exactly like base-table scans (index selection included).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        if let Some(t) = self.tables.read().get(&Self::norm(name)) {
            return Ok(Arc::clone(t));
        }
        let (view, stream) = match name.split_once('$') {
            Some((v, s)) => (v, Some(s)),
            None => (name, None),
        };
        if let Some(mv) = self.matviews.read().get(&Self::norm(view)) {
            let streams = mv.streams();
            let found = match stream {
                Some(s) => streams
                    .iter()
                    .find(|st| st.name.eq_ignore_ascii_case(s))
                    .map(|st| Arc::clone(&st.table)),
                // A bare view name resolves only for single-stream
                // (relational) materialized views.
                None if streams.len() == 1 => Some(Arc::clone(&streams[0].table)),
                None => None,
            };
            if let Some(t) = found {
                return Ok(t);
            }
        }
        Err(StorageError::UnknownTable(name.to_string()))
    }

    /// Is `name` (a `Table::name` as it appears in a plan) backed by a
    /// materialized view rather than a base table? Used by the planner to
    /// label such scans `matview scan` in EXPLAIN.
    pub fn is_matview_backing(&self, name: &str) -> bool {
        if self.tables.read().contains_key(&Self::norm(name)) {
            return false;
        }
        let view = name.split_once('$').map(|(v, _)| v).unwrap_or(name);
        self.matviews.read().contains_key(&Self::norm(view))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::norm(name))
    }

    /// Every page id reachable from a heap extent: base tables plus
    /// materialized-view backing tables. Recovery reconciles the page file
    /// against this set to find (and reclaim) stranded allocations.
    pub fn live_page_extents(&self) -> Vec<crate::disk::PageId> {
        let mut pages: Vec<crate::disk::PageId> = self
            .tables
            .read()
            .values()
            .flat_map(|t| t.heap.pages())
            .collect();
        for mv in self.matviews.read().values() {
            for s in mv.streams() {
                pages.extend(s.table.heap.pages());
            }
        }
        pages
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .tables
            .read()
            .values()
            .map(|t| t.name.clone())
            .collect();
        v.sort();
        v
    }

    /// Register a view definition (text is re-parsed by the front end).
    pub fn create_view(&self, name: &str, kind: ViewKind, text: &str) -> Result<()> {
        self.register_view(name, kind, text, false)?;
        Table::log_ddl(
            &self.wal,
            WalRecord::CreateView(ViewSnap {
                name: name.to_string(),
                kind: kind.tag(),
                text: text.to_string(),
                materialized: false,
                streams: Vec::new(),
            }),
        )
    }

    fn register_view(
        &self,
        name: &str,
        kind: ViewKind,
        text: &str,
        materialized: bool,
    ) -> Result<()> {
        let key = Self::norm(name);
        if self.tables.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut views = self.views.write();
        if views.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        views.insert(
            key,
            ViewDef {
                name: name.to_string(),
                kind,
                text: text.to_string(),
                materialized,
            },
        );
        self.bump_generation();
        Ok(())
    }

    /// Build one fresh backing table for a materialized-view stream.
    fn backing_table(
        &self,
        view: &str,
        stream: &str,
        single: bool,
        schema: Schema,
    ) -> MatViewStream {
        let table_name = if single {
            view.to_string()
        } else {
            format!("{view}${stream}")
        };
        let mut next = self.next_id.lock();
        let id = *next;
        *next += 1;
        MatViewStream {
            name: stream.to_string(),
            // Backing tables are unlogged: their contents are derived (a
            // REFRESH at restart reconstructs them), so logging every
            // maintenance write would only double the log volume.
            table: Arc::new(Table::new(
                id,
                table_name,
                schema,
                Arc::clone(&self.pool),
                Arc::clone(&self.txns),
                None,
            )),
        }
    }

    /// Register a materialized view: the definition plus empty backing
    /// tables, one per stream (relational views pass exactly one stream,
    /// conventionally named after the view). The caller (the `matview`
    /// module in `xnf-core`) populates the backing tables and creates their
    /// maintenance indexes.
    pub fn create_materialized_view(
        &self,
        name: &str,
        kind: ViewKind,
        text: &str,
        streams: Vec<(String, Schema)>,
    ) -> Result<Arc<MatView>> {
        self.register_view(name, kind, text, true)?;
        Table::log_ddl(
            &self.wal,
            WalRecord::CreateView(ViewSnap {
                name: name.to_string(),
                kind: kind.tag(),
                text: text.to_string(),
                materialized: true,
                streams: streams.clone(),
            }),
        )?;
        let single = streams.len() == 1;
        let built: Vec<MatViewStream> = streams
            .into_iter()
            .map(|(s, schema)| self.backing_table(name, &s, single, schema))
            .collect();
        let mv = Arc::new(MatView::new(built));
        self.matviews
            .write()
            .insert(Self::norm(name), Arc::clone(&mv));
        Ok(mv)
    }

    /// Replace a materialized view's backing tables with fresh empty ones
    /// (same names and schemas) — the truncate step of `REFRESH`. The
    /// epoch and surrogate allocator carry over.
    pub fn reset_matview_storage(&self, name: &str) -> Result<Arc<MatView>> {
        let mv = self
            .matview(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let old = mv.streams();
        let single = old.len() == 1;
        let fresh: Vec<MatViewStream> = old
            .iter()
            .map(|s| self.backing_table(name, &s.name, single, s.table.schema.clone()))
            .collect();
        *mv.streams.write() = fresh;
        Ok(mv)
    }

    /// Backing storage of a materialized view, if `name` names one.
    pub fn matview(&self, name: &str) -> Option<Arc<MatView>> {
        self.matviews.read().get(&Self::norm(name)).cloned()
    }

    /// Whether any materialized views exist (DML skips delta capture when
    /// none do).
    pub fn has_matviews(&self) -> bool {
        !self.matviews.read().is_empty()
    }

    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&Self::norm(name)).cloned()
    }

    pub fn drop_view(&self, name: &str) -> Result<()> {
        let removed = self.views.write().remove(&Self::norm(name));
        match removed {
            Some(def) => {
                self.matviews.write().remove(&Self::norm(name));
                Table::log_ddl(&self.wal, WalRecord::DropView { name: def.name })?;
                self.bump_generation();
                Ok(())
            }
            None => Err(StorageError::UnknownTable(name.to_string())),
        }
    }

    pub fn view_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().values().map(|d| d.name.clone()).collect();
        v.sort();
        v
    }

    // -- durability & recovery ----------------------------------------------

    /// Serializable catalog state for a checkpoint: base tables (schema,
    /// extent, index definitions) plus view definitions — materialized ones
    /// with the stream schemas their backing tables are recreated from.
    /// Backing-table contents are not captured (they are derived state;
    /// restart REFRESHes them).
    pub fn checkpoint_snapshot(&self) -> (TableId, Vec<TableSnap>, Vec<ViewSnap>) {
        let next = *self.next_id.lock();
        let mut tables: Vec<TableSnap> = self
            .tables
            .read()
            .values()
            .map(|t| TableSnap {
                id: t.id,
                name: t.name.clone(),
                schema: t.schema.clone(),
                pages: t.heap.pages(),
                indexes: t
                    .index_defs()
                    .into_iter()
                    .map(|d| IndexSnap {
                        name: d.name,
                        columns: d.columns,
                        unique: d.unique,
                    })
                    .collect(),
            })
            .collect();
        tables.sort_by_key(|t| t.id);
        let mut views: Vec<ViewSnap> = self
            .views
            .read()
            .values()
            .map(|d| self.view_snap(d))
            .collect();
        views.sort_by(|a, b| a.name.cmp(&b.name));
        (next, tables, views)
    }

    fn view_snap(&self, def: &ViewDef) -> ViewSnap {
        let streams = if def.materialized {
            self.matview(&def.name)
                .map(|mv| {
                    mv.streams()
                        .iter()
                        .map(|s| (s.name.clone(), s.table.schema.clone()))
                        .collect()
                })
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        ViewSnap {
            name: def.name.clone(),
            kind: def.kind.tag(),
            text: def.text.clone(),
            materialized: def.materialized,
            streams,
        }
    }

    /// Recreate one base table from a checkpoint snapshot (recovery only):
    /// forced id, recorded extent, index definitions with empty trees
    /// (rebuilt after redo/undo), and a GC horizon of zero — recovered
    /// headers may reference arbitrarily old commit stamps, so the
    /// frozen-through stamp must be re-earned by a vacuum scan.
    pub(crate) fn restore_table(&self, snap: TableSnap) {
        let t = Arc::new(Table::build(
            snap.id,
            snap.name.clone(),
            snap.schema,
            Arc::clone(&self.pool),
            Arc::clone(&self.txns),
            self.wal.clone(),
            0,
        ));
        t.heap.restore_pages(snap.pages);
        for idx in snap.indexes {
            t.restore_index_def(IndexDef {
                name: idx.name,
                columns: idx.columns,
                unique: idx.unique,
            });
        }
        self.tables.write().insert(Self::norm(&snap.name), t);
        self.set_next_table_id(snap.id + 1);
    }

    /// Base table carrying WAL table id `id`, if present. Matview backing
    /// tables are not searched: their ids never appear in a log we replay
    /// (they are unlogged), so redo skips records for unknown ids.
    pub(crate) fn table_by_id(&self, id: TableId) -> Option<Arc<Table>> {
        self.tables.read().values().find(|t| t.id == id).cloned()
    }

    /// Force the table-id allocator to at least `id` (recovery only).
    pub(crate) fn set_next_table_id(&self, id: TableId) {
        let mut next = self.next_id.lock();
        *next = (*next).max(id);
    }

    /// Redo of [`WalRecord::CreateTable`]: idempotent — a fuzzy checkpoint
    /// may already have captured the table.
    pub(crate) fn redo_create_table(&self, id: TableId, name: &str, schema: Schema) {
        let key = Self::norm(name);
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return;
        }
        let t = Arc::new(Table::build(
            id,
            name.to_string(),
            schema,
            Arc::clone(&self.pool),
            Arc::clone(&self.txns),
            self.wal.clone(),
            0,
        ));
        tables.insert(key, t);
        drop(tables);
        self.set_next_table_id(id + 1);
    }

    /// Redo of [`WalRecord::DropTable`] (idempotent).
    pub(crate) fn redo_drop_table(&self, name: &str) {
        self.tables.write().remove(&Self::norm(name));
    }

    /// Redo of [`WalRecord::CreateIndex`] (idempotent; tree stays empty
    /// until [`Table::rebuild_indexes`]).
    pub(crate) fn redo_create_index(&self, table: TableId, idx: &IndexSnap) {
        if let Some(t) = self.table_by_id(table) {
            if t.index_def(&idx.name).is_none() {
                t.restore_index_def(IndexDef {
                    name: idx.name.clone(),
                    columns: idx.columns.clone(),
                    unique: idx.unique,
                });
            }
        }
    }

    /// Redo of [`WalRecord::CreateView`] for a *plain* view (idempotent).
    /// Materialized views are recreated by recovery after redo, via
    /// [`Catalog::create_materialized_view`], so their backing tables get
    /// fresh ids that cannot collide with redone `CreateTable` ids.
    pub(crate) fn redo_register_view(&self, vs: &ViewSnap) {
        let _ = self.register_view(&vs.name, ViewKind::from_tag(vs.kind), &vs.text, false);
    }

    /// Redo of [`WalRecord::DropView`] (idempotent).
    pub(crate) fn redo_drop_view(&self, name: &str) {
        self.views.write().remove(&Self::norm(name));
        self.matviews.write().remove(&Self::norm(name));
    }

    // -- garbage collection -------------------------------------------------

    /// Every physical heap in this catalog: base tables plus every
    /// materialized-view backing stream. This is the set whose
    /// frozen-through stamps bound commit-stamp pruning.
    pub fn storage_tables(&self) -> Vec<Arc<Table>> {
        let mut out: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        for mv in self.matviews.read().values() {
            out.extend(mv.streams().into_iter().map(|s| s.table));
        }
        out
    }

    /// Run garbage collection: compute the live-snapshot low-watermark,
    /// vacuum `table` (every heap when `None`; all backing streams when it
    /// names a materialized view), clean-bump every fully-frozen heap, and
    /// prune commit-stamp entries no header can reference anymore.
    ///
    /// Tables with no reclaim pressure and no unfrozen headers are skipped
    /// (their horizon advances without a scan), so a targeted or
    /// opportunistic vacuum stays cheap while still letting the stamp
    /// table shrink.
    pub fn vacuum(&self, table: Option<&str>) -> Result<VacuumReport> {
        let targets: Vec<Arc<Table>> = match table {
            Some(name) => match self.matview(name) {
                Some(mv) => mv.streams().into_iter().map(|s| s.table).collect(),
                None => vec![self.table(name)?],
            },
            None => self.storage_tables(),
        };
        self.vacuum_tables(&targets)
    }

    /// Vacuum exactly `tables` (plus clean bumps and stamp pruning): the
    /// opportunistic path, fed by [`Catalog::gc_pressured_tables`].
    /// Fully-frozen, pressure-free heaps are skipped — their horizon
    /// advances without a scan.
    pub fn vacuum_tables(&self, tables: &[Arc<Table>]) -> Result<VacuumReport> {
        let watermark = self.txns.oldest_visible_stamp();
        let mut report = VacuumReport {
            watermark,
            ..VacuumReport::default()
        };
        for t in tables {
            if t.gc().unfrozen() == 0 && t.gc().dead_hint() == 0 {
                continue;
            }
            report.tables.push(t.vacuum(watermark)?);
        }
        // Untouched-but-clean heaps advance their horizon for free, so a
        // table that merely *existed* during a write storm never pins the
        // stamp table.
        let all = self.storage_tables();
        for t in &all {
            t.try_clean_bump(watermark);
        }
        let horizon = all
            .iter()
            .map(|t| t.gc().frozen_through())
            .min()
            .unwrap_or(watermark);
        report.stamps_pruned = self.txns.prune_stamps(horizon);
        report.stamps_remaining = self.txns.stamp_count() as u64;
        self.gc_totals.absorb(&report);
        Ok(report)
    }

    /// Cumulative GC counters (all vacuum runs since creation).
    pub fn gc_stats(&self) -> GcStats {
        self.gc_totals.snapshot()
    }

    /// Heaps whose reclaim pressure reached `threshold` — the candidates an
    /// opportunistic (post-commit) vacuum should scan. A table whose last
    /// pass already ran at the current watermark is excluded: re-scanning
    /// before the watermark moves (e.g. while a long transaction pins it)
    /// cannot reclaim anything new, and triggering it per commit would turn
    /// sustained writes quadratic.
    pub fn gc_pressured_tables(&self, threshold: u64) -> Vec<Arc<Table>> {
        let watermark = self.txns.oldest_visible_stamp();
        self.storage_tables()
            .into_iter()
            .filter(|t| t.gc().dead_hint() >= threshold && t.gc().last_pass_watermark() < watermark)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let disk = Arc::new(DiskManager::new());
        Catalog::new(Arc::new(BufferPool::new(disk, 64)))
    }

    fn emp_schema() -> Schema {
        Schema::from_pairs(&[
            ("eno", DataType::Int),
            ("ename", DataType::Str),
            ("edno", DataType::Int),
        ])
    }

    fn emp(i: i64, dno: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(i),
            Value::Str(format!("e{i}")),
            Value::Int(dno),
        ])
    }

    #[test]
    fn create_and_lookup_tables() {
        let c = catalog();
        c.create_table("EMP", emp_schema()).unwrap();
        assert!(c.table("emp").is_ok(), "names are case-insensitive");
        assert!(matches!(
            c.create_table("emp", emp_schema()),
            Err(StorageError::DuplicateTable(_))
        ));
        assert!(matches!(
            c.table("DEPT"),
            Err(StorageError::UnknownTable(_))
        ));
        c.drop_table("EMP").unwrap();
        assert!(!c.has_table("EMP"));
    }

    #[test]
    fn index_maintenance_on_insert_delete_update() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        t.create_index("emp_edno", vec![2], false).unwrap();

        let mut rids = vec![];
        for i in 0..50 {
            rids.push(t.insert(&emp(i, i % 5)).unwrap());
        }
        // Point lookup via unique index.
        assert_eq!(
            t.index_lookup("emp_eno", &vec![Value::Int(7)]).unwrap(),
            vec![rids[7]]
        );
        // Posting list via non-unique index.
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(3)])
                .unwrap()
                .len(),
            10
        );

        // Delete maintains both.
        t.delete(rids[7]).unwrap();
        assert!(t
            .index_lookup("emp_eno", &vec![Value::Int(7)])
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(2)])
                .unwrap()
                .len(),
            9
        );

        // Update that changes a key re-points the index.
        let (_, nrid) = t.update(rids[8], &emp(8, 99)).unwrap();
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(99)]).unwrap(),
            vec![nrid]
        );
    }

    #[test]
    fn unique_violation_rolls_back_heap_insert() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        t.insert(&emp(1, 1)).unwrap();
        let before = t.row_count().unwrap();
        assert!(t.insert(&emp(1, 2)).is_err());
        assert_eq!(
            t.row_count().unwrap(),
            before,
            "heap unchanged after failed insert"
        );
    }

    #[test]
    fn unique_key_reusable_after_mvcc_delete_commits() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        let rid = t.insert(&emp(1, 1)).unwrap();

        let a = t.txns().allocate();
        t.mark_delete_txn(rid, a).unwrap();
        // While A is uncommitted, the key is conservatively still taken for
        // everyone else…
        let b = t.txns().allocate();
        assert!(t.insert_txn(&emp(1, 5), b).is_err());
        // …but free for A itself and, after A commits, for everyone.
        t.txns().commit(a);
        let rid2 = t.insert_txn(&emp(1, 9), b).unwrap();
        t.txns().commit(b);
        let visible = t.find_by_value(0, &Value::Int(1)).unwrap();
        assert_eq!(visible, vec![(rid2, emp(1, 9))]);
    }

    #[test]
    fn versioned_update_keeps_old_version_for_old_snapshots() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        let rid = t.insert(&emp(1, 1)).unwrap();

        let before = c.latest_snapshot();
        let a = t.txns().allocate();
        t.update_txn(rid, &emp(1, 42), a).unwrap();
        t.txns().commit(a);

        // Old snapshot: original row, via scan and via index.
        assert_eq!(
            t.find_by_value_visible(0, &Value::Int(1), &before).unwrap()[0].1,
            emp(1, 1)
        );
        // Fresh snapshot: updated row only, even though the index holds
        // postings for both versions.
        let now = t.find_by_value(0, &Value::Int(1)).unwrap();
        assert_eq!(now.len(), 1);
        assert_eq!(now[0].1, emp(1, 42));
    }

    #[test]
    fn index_built_over_existing_data() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..20 {
            t.insert(&emp(i, i % 2)).unwrap();
        }
        t.create_index("emp_edno", vec![2], false).unwrap();
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(0)])
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn views_share_namespace_with_tables() {
        let c = catalog();
        c.create_table("EMP", emp_schema()).unwrap();
        assert!(c.create_view("EMP", ViewKind::Sql, "SELECT 1").is_err());
        c.create_view("V", ViewKind::Xnf, "OUT OF ... TAKE *")
            .unwrap();
        assert!(c.create_table("v", emp_schema()).is_err());
        assert_eq!(c.view("v").unwrap().kind, ViewKind::Xnf);
        c.drop_view("V").unwrap();
        assert!(c.view("V").is_none());
    }

    #[test]
    fn analyze_populates_stats() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..100 {
            t.insert(&emp(i, i % 4)).unwrap();
        }
        let s = t.analyze().unwrap();
        assert_eq!(s.row_count, 100);
        assert_eq!(s.columns[2].distinct, 4);
        assert_eq!(t.stats().row_count, 100);
    }

    #[test]
    fn find_by_value_with_and_without_index() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..30 {
            t.insert(&emp(i, i % 3)).unwrap();
        }
        let no_index = t.find_by_value(2, &Value::Int(1)).unwrap();
        t.create_index("emp_edno", vec![2], false).unwrap();
        let mut with_index = t.find_by_value(2, &Value::Int(1)).unwrap();
        with_index.sort_by_key(|(rid, _)| *rid);
        let mut expect = no_index;
        expect.sort_by_key(|(rid, _)| *rid);
        assert_eq!(with_index, expect);
    }
}
