//! Catalog: tables (heap + indexes + statistics) and view definitions.
//!
//! [`Table`] bundles a heap file with its secondary indexes and keeps them
//! consistent across inserts, deletes and (possibly relocating) updates.
//! [`Catalog`] names tables and views; view *text* is stored here (the
//! front-end re-parses it), mirroring how Starburst kept view definitions in
//! catalog relations.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::index::{BTreeIndex, Key};
use crate::schema::Schema;
use crate::stats::{StatsBuilder, TableStats};
use crate::tuple::{Rid, Tuple};
use crate::value::Value;

/// Numeric table identifier.
pub type TableId = u32;

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    pub name: String,
    /// Ordinals of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    pub unique: bool,
}

struct IndexEntry {
    def: IndexDef,
    tree: BTreeIndex,
}

/// A stored table: schema + heap + indexes + stats.
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    heap: HeapFile,
    indexes: Mutex<Vec<IndexEntry>>,
    stats: RwLock<TableStats>,
}

impl Table {
    fn new(id: TableId, name: String, schema: Schema, pool: Arc<BufferPool>) -> Self {
        Table {
            id,
            name,
            schema,
            heap: HeapFile::create(pool),
            indexes: Mutex::new(Vec::new()),
            stats: RwLock::new(TableStats::default()),
        }
    }

    fn key_of(def: &IndexDef, tuple: &Tuple) -> Key {
        def.columns
            .iter()
            .map(|&c| tuple.values[c].clone())
            .collect()
    }

    /// Insert a tuple, maintaining all indexes. On a unique violation the
    /// heap insert and any partial index inserts are rolled back.
    pub fn insert(&self, tuple: &Tuple) -> Result<Rid> {
        self.schema.validate(&tuple.values)?;
        let rid = self.heap.insert(tuple)?;
        let mut indexes = self.indexes.lock();
        for i in 0..indexes.len() {
            let key = Self::key_of(&indexes[i].def, tuple);
            if let Err(e) = indexes[i].tree.insert(key, rid) {
                // Roll back: remove entries added so far and the heap tuple.
                for entry in indexes.iter_mut().take(i) {
                    let key = Self::key_of(&entry.def, tuple);
                    entry.tree.delete(&key, rid);
                }
                drop(indexes);
                let _ = self.heap.delete(rid);
                return Err(e);
            }
        }
        Ok(rid)
    }

    /// Delete by RID, maintaining indexes. Returns the removed tuple.
    pub fn delete(&self, rid: Rid) -> Result<Tuple> {
        let old = self.heap.delete(rid)?;
        let mut indexes = self.indexes.lock();
        for entry in indexes.iter_mut() {
            let key = Self::key_of(&entry.def, &old);
            entry.tree.delete(&key, rid);
        }
        Ok(old)
    }

    /// Update by RID; relocation and key changes re-point indexes.
    /// Returns `(old_tuple, new_rid)`.
    pub fn update(&self, rid: Rid, new: &Tuple) -> Result<(Tuple, Rid)> {
        self.schema.validate(&new.values)?;
        let (old, new_rid) = self.heap.update(rid, new)?;
        let mut indexes = self.indexes.lock();
        for entry in indexes.iter_mut() {
            let old_key = Self::key_of(&entry.def, &old);
            let new_key = Self::key_of(&entry.def, new);
            if old_key != new_key || rid != new_rid {
                entry.tree.delete(&old_key, rid);
                // Unique violations on update surface to the caller; the heap
                // already holds the new image, so restore it on failure.
                if let Err(e) = entry.tree.insert(new_key, new_rid) {
                    drop(indexes);
                    let _ = self.heap.update(new_rid, &old);
                    return Err(e);
                }
            }
        }
        Ok((old, new_rid))
    }

    /// Fetch one tuple.
    pub fn get(&self, rid: Rid) -> Result<Tuple> {
        self.heap.get(rid)
    }

    /// Full scan; see [`HeapFile::for_each`].
    pub fn for_each(&self, f: impl FnMut(Rid, Tuple) -> Result<bool>) -> Result<()> {
        self.heap.for_each(f)
    }

    pub fn scan_all(&self) -> Result<Vec<(Rid, Tuple)>> {
        self.heap.scan_all()
    }

    /// Streaming scan unit; see [`HeapFile::scan_page`].
    pub fn scan_page(&self, idx: usize) -> Result<Option<Vec<(Rid, Tuple)>>> {
        self.heap.scan_page(idx)
    }

    pub fn row_count(&self) -> Result<usize> {
        self.heap.count()
    }

    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Add a secondary index over `columns`, building it from current data.
    pub fn create_index(&self, name: &str, columns: Vec<usize>, unique: bool) -> Result<()> {
        let mut indexes = self.indexes.lock();
        if indexes
            .iter()
            .any(|e| e.def.name.eq_ignore_ascii_case(name))
        {
            return Err(StorageError::DuplicateIndex(name.to_string()));
        }
        let def = IndexDef {
            name: name.to_string(),
            columns,
            unique,
        };
        let mut tree = BTreeIndex::new(unique);
        self.heap.for_each(|rid, t| {
            tree.insert(Table::key_of(&def, &t), rid)?;
            Ok(true)
        })?;
        indexes.push(IndexEntry { def, tree });
        Ok(())
    }

    /// Names and definitions of all indexes.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.lock().iter().map(|e| e.def.clone()).collect()
    }

    /// Find an index whose column list starts with exactly `columns` (we use
    /// exact-prefix match; the planner only asks for full-key equality).
    pub fn find_index(&self, columns: &[usize]) -> Option<IndexDef> {
        self.indexes
            .lock()
            .iter()
            .find(|e| e.def.columns.len() == columns.len() && e.def.columns == columns)
            .map(|e| e.def.clone())
    }

    /// Point lookup through the named index.
    pub fn index_lookup(&self, index_name: &str, key: &Key) -> Result<Vec<Rid>> {
        let indexes = self.indexes.lock();
        let entry = indexes
            .iter()
            .find(|e| e.def.name.eq_ignore_ascii_case(index_name))
            .ok_or_else(|| StorageError::UnknownIndex(index_name.to_string()))?;
        Ok(entry.tree.get(key))
    }

    /// Range scan through the named index.
    pub fn index_range(
        &self,
        index_name: &str,
        lo: std::ops::Bound<&Key>,
        hi: std::ops::Bound<&Key>,
    ) -> Result<Vec<(Key, Rid)>> {
        let indexes = self.indexes.lock();
        let entry = indexes
            .iter()
            .find(|e| e.def.name.eq_ignore_ascii_case(index_name))
            .ok_or_else(|| StorageError::UnknownIndex(index_name.to_string()))?;
        Ok(entry.tree.range(lo, hi))
    }

    /// Recompute statistics with a full scan.
    pub fn analyze(&self) -> Result<TableStats> {
        let mut b = StatsBuilder::new(self.schema.len());
        self.heap.for_each(|_, t| {
            b.observe(&t.values);
            Ok(true)
        })?;
        let stats = b.finish(self.heap.page_count() as u64);
        *self.stats.write() = stats.clone();
        Ok(stats)
    }

    /// Current (possibly stale) statistics.
    pub fn stats(&self) -> TableStats {
        self.stats.read().clone()
    }

    /// Ordinal of a named column, with a table-aware error.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema.resolve(&self.name, name)
    }

    /// Convenience: fetch all tuples whose `col = value` using an index when
    /// one exists, else a scan (used by write-back and tests, not the planner).
    pub fn find_by_value(&self, col: usize, value: &Value) -> Result<Vec<(Rid, Tuple)>> {
        if let Some(def) = self.find_index(&[col]) {
            let rids = self.index_lookup(&def.name, &vec![value.clone()])?;
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                out.push((rid, self.get(rid)?));
            }
            return Ok(out);
        }
        let mut out = Vec::new();
        self.for_each(|rid, t| {
            if t.values[col].sql_eq(value) == Some(true) {
                out.push((rid, t));
            }
            Ok(true)
        })?;
        Ok(out)
    }
}

/// Kind of a stored view definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Plain relational (SQL) view.
    Sql,
    /// Composite-object (XNF) view.
    Xnf,
}

/// A stored view: name + definition text.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub kind: ViewKind,
    pub text: String,
    /// Whether this view is materialized (has backing storage; see
    /// [`Catalog::matview`]).
    pub materialized: bool,
}

/// One backing stream of a materialized view. A relational view has exactly
/// one stream; a materialized CO (XNF) view has one per output stream of
/// its query: node streams (with a leading `__coid` surrogate column) and
/// connection streams (surrogate pairs).
#[derive(Clone)]
pub struct MatViewStream {
    /// The stream name: the view name itself for relational views, the
    /// component/relationship name for CO streams.
    pub name: String,
    /// The backing heap table. Named `VIEW` (relational) or `VIEW$stream`
    /// (CO streams) — the `$` spelling cannot be produced by the SQL lexer,
    /// keeping CO backing tables out of reach of direct DML.
    pub table: Arc<Table>,
}

/// Backing storage of one materialized view: its stream tables, a
/// freshness epoch, and the surrogate-id allocator for CO node rows.
pub struct MatView {
    streams: RwLock<Vec<MatViewStream>>,
    /// Bumped on every maintenance action (incremental or full refresh);
    /// lets clients detect that stored contents moved.
    epoch: std::sync::atomic::AtomicU64,
    /// Next surrogate id for CO node rows (monotonic across refreshes so a
    /// stale reader can never confuse an old row with a new one).
    next_surrogate: std::sync::atomic::AtomicI64,
}

impl MatView {
    fn new(streams: Vec<MatViewStream>) -> Self {
        MatView {
            streams: RwLock::new(streams),
            epoch: std::sync::atomic::AtomicU64::new(0),
            next_surrogate: std::sync::atomic::AtomicI64::new(0),
        }
    }

    /// Snapshot of the current backing streams.
    pub fn streams(&self) -> Vec<MatViewStream> {
        self.streams.read().clone()
    }

    /// Backing table of the named stream.
    pub fn stream(&self, name: &str) -> Option<Arc<Table>> {
        self.streams
            .read()
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .map(|s| Arc::clone(&s.table))
    }

    /// Current maintenance epoch (0 = as populated at CREATE).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Record one maintenance action.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Allocate `n` fresh surrogate ids; returns the first.
    pub fn alloc_surrogates(&self, n: i64) -> i64 {
        self.next_surrogate
            .fetch_add(n, std::sync::atomic::Ordering::AcqRel)
    }
}

/// The catalog of a database instance.
pub struct Catalog {
    pool: Arc<BufferPool>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    views: RwLock<HashMap<String, ViewDef>>,
    /// Backing storage of materialized views, keyed like `views`.
    matviews: RwLock<HashMap<String, Arc<MatView>>>,
    next_id: Mutex<TableId>,
    /// Monotonic DDL generation: bumped on every schema change so cached
    /// compiled plans can detect staleness without re-validating names.
    generation: std::sync::atomic::AtomicU64,
}

impl Catalog {
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Catalog {
            pool,
            tables: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            matviews: RwLock::new(HashMap::new()),
            next_id: Mutex::new(0),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Current DDL generation. Any CREATE/DROP of a table or view (and
    /// index creation / ANALYZE, which change plan choices) advances it.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Advance the DDL generation, invalidating all cached plans compiled
    /// against earlier generations.
    pub fn bump_generation(&self) {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn norm(name: &str) -> String {
        name.to_ascii_uppercase()
    }

    /// Create a table. Fails on duplicate names (tables and views share a
    /// namespace).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let key = Self::norm(name);
        if self.views.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut next = self.next_id.lock();
        let id = *next;
        *next += 1;
        let t = Arc::new(Table::new(
            id,
            name.to_string(),
            schema,
            Arc::clone(&self.pool),
        ));
        tables.insert(key, Arc::clone(&t));
        self.bump_generation();
        Ok(t)
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&Self::norm(name))
            .map(|_| self.bump_generation())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Resolve a name to stored data: a base table, or — falling back — the
    /// backing table of a materialized view (`NAME` for relational views,
    /// `NAME$stream` for one stream of a materialized CO view). The fallback
    /// is what lets the planner and executor treat materialized-view scans
    /// exactly like base-table scans (index selection included).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        if let Some(t) = self.tables.read().get(&Self::norm(name)) {
            return Ok(Arc::clone(t));
        }
        let (view, stream) = match name.split_once('$') {
            Some((v, s)) => (v, Some(s)),
            None => (name, None),
        };
        if let Some(mv) = self.matviews.read().get(&Self::norm(view)) {
            let streams = mv.streams();
            let found = match stream {
                Some(s) => streams
                    .iter()
                    .find(|st| st.name.eq_ignore_ascii_case(s))
                    .map(|st| Arc::clone(&st.table)),
                // A bare view name resolves only for single-stream
                // (relational) materialized views.
                None if streams.len() == 1 => Some(Arc::clone(&streams[0].table)),
                None => None,
            };
            if let Some(t) = found {
                return Ok(t);
            }
        }
        Err(StorageError::UnknownTable(name.to_string()))
    }

    /// Is `name` (a `Table::name` as it appears in a plan) backed by a
    /// materialized view rather than a base table? Used by the planner to
    /// label such scans `matview scan` in EXPLAIN.
    pub fn is_matview_backing(&self, name: &str) -> bool {
        if self.tables.read().contains_key(&Self::norm(name)) {
            return false;
        }
        let view = name.split_once('$').map(|(v, _)| v).unwrap_or(name);
        self.matviews.read().contains_key(&Self::norm(view))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::norm(name))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .tables
            .read()
            .values()
            .map(|t| t.name.clone())
            .collect();
        v.sort();
        v
    }

    /// Register a view definition (text is re-parsed by the front end).
    pub fn create_view(&self, name: &str, kind: ViewKind, text: &str) -> Result<()> {
        self.register_view(name, kind, text, false)
    }

    fn register_view(
        &self,
        name: &str,
        kind: ViewKind,
        text: &str,
        materialized: bool,
    ) -> Result<()> {
        let key = Self::norm(name);
        if self.tables.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut views = self.views.write();
        if views.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        views.insert(
            key,
            ViewDef {
                name: name.to_string(),
                kind,
                text: text.to_string(),
                materialized,
            },
        );
        self.bump_generation();
        Ok(())
    }

    /// Build one fresh backing table for a materialized-view stream.
    fn backing_table(
        &self,
        view: &str,
        stream: &str,
        single: bool,
        schema: Schema,
    ) -> MatViewStream {
        let table_name = if single {
            view.to_string()
        } else {
            format!("{view}${stream}")
        };
        let mut next = self.next_id.lock();
        let id = *next;
        *next += 1;
        MatViewStream {
            name: stream.to_string(),
            table: Arc::new(Table::new(id, table_name, schema, Arc::clone(&self.pool))),
        }
    }

    /// Register a materialized view: the definition plus empty backing
    /// tables, one per stream (relational views pass exactly one stream,
    /// conventionally named after the view). The caller (the `matview`
    /// module in `xnf-core`) populates the backing tables and creates their
    /// maintenance indexes.
    pub fn create_materialized_view(
        &self,
        name: &str,
        kind: ViewKind,
        text: &str,
        streams: Vec<(String, Schema)>,
    ) -> Result<Arc<MatView>> {
        self.register_view(name, kind, text, true)?;
        let single = streams.len() == 1;
        let built: Vec<MatViewStream> = streams
            .into_iter()
            .map(|(s, schema)| self.backing_table(name, &s, single, schema))
            .collect();
        let mv = Arc::new(MatView::new(built));
        self.matviews
            .write()
            .insert(Self::norm(name), Arc::clone(&mv));
        Ok(mv)
    }

    /// Replace a materialized view's backing tables with fresh empty ones
    /// (same names and schemas) — the truncate step of `REFRESH`. The
    /// epoch and surrogate allocator carry over.
    pub fn reset_matview_storage(&self, name: &str) -> Result<Arc<MatView>> {
        let mv = self
            .matview(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let old = mv.streams();
        let single = old.len() == 1;
        let fresh: Vec<MatViewStream> = old
            .iter()
            .map(|s| self.backing_table(name, &s.name, single, s.table.schema.clone()))
            .collect();
        *mv.streams.write() = fresh;
        Ok(mv)
    }

    /// Backing storage of a materialized view, if `name` names one.
    pub fn matview(&self, name: &str) -> Option<Arc<MatView>> {
        self.matviews.read().get(&Self::norm(name)).cloned()
    }

    /// Whether any materialized views exist (DML skips delta capture when
    /// none do).
    pub fn has_matviews(&self) -> bool {
        !self.matviews.read().is_empty()
    }

    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&Self::norm(name)).cloned()
    }

    pub fn drop_view(&self, name: &str) -> Result<()> {
        let removed = self.views.write().remove(&Self::norm(name));
        match removed {
            Some(_) => {
                self.matviews.write().remove(&Self::norm(name));
                self.bump_generation();
                Ok(())
            }
            None => Err(StorageError::UnknownTable(name.to_string())),
        }
    }

    pub fn view_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().values().map(|d| d.name.clone()).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let disk = Arc::new(DiskManager::new());
        Catalog::new(Arc::new(BufferPool::new(disk, 64)))
    }

    fn emp_schema() -> Schema {
        Schema::from_pairs(&[
            ("eno", DataType::Int),
            ("ename", DataType::Str),
            ("edno", DataType::Int),
        ])
    }

    fn emp(i: i64, dno: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(i),
            Value::Str(format!("e{i}")),
            Value::Int(dno),
        ])
    }

    #[test]
    fn create_and_lookup_tables() {
        let c = catalog();
        c.create_table("EMP", emp_schema()).unwrap();
        assert!(c.table("emp").is_ok(), "names are case-insensitive");
        assert!(matches!(
            c.create_table("emp", emp_schema()),
            Err(StorageError::DuplicateTable(_))
        ));
        assert!(matches!(
            c.table("DEPT"),
            Err(StorageError::UnknownTable(_))
        ));
        c.drop_table("EMP").unwrap();
        assert!(!c.has_table("EMP"));
    }

    #[test]
    fn index_maintenance_on_insert_delete_update() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        t.create_index("emp_edno", vec![2], false).unwrap();

        let mut rids = vec![];
        for i in 0..50 {
            rids.push(t.insert(&emp(i, i % 5)).unwrap());
        }
        // Point lookup via unique index.
        assert_eq!(
            t.index_lookup("emp_eno", &vec![Value::Int(7)]).unwrap(),
            vec![rids[7]]
        );
        // Posting list via non-unique index.
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(3)])
                .unwrap()
                .len(),
            10
        );

        // Delete maintains both.
        t.delete(rids[7]).unwrap();
        assert!(t
            .index_lookup("emp_eno", &vec![Value::Int(7)])
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(2)])
                .unwrap()
                .len(),
            9
        );

        // Update that changes a key re-points the index.
        let (_, nrid) = t.update(rids[8], &emp(8, 99)).unwrap();
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(99)]).unwrap(),
            vec![nrid]
        );
    }

    #[test]
    fn unique_violation_rolls_back_heap_insert() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        t.create_index("emp_eno", vec![0], true).unwrap();
        t.insert(&emp(1, 1)).unwrap();
        let before = t.row_count().unwrap();
        assert!(t.insert(&emp(1, 2)).is_err());
        assert_eq!(
            t.row_count().unwrap(),
            before,
            "heap unchanged after failed insert"
        );
    }

    #[test]
    fn index_built_over_existing_data() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..20 {
            t.insert(&emp(i, i % 2)).unwrap();
        }
        t.create_index("emp_edno", vec![2], false).unwrap();
        assert_eq!(
            t.index_lookup("emp_edno", &vec![Value::Int(0)])
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn views_share_namespace_with_tables() {
        let c = catalog();
        c.create_table("EMP", emp_schema()).unwrap();
        assert!(c.create_view("EMP", ViewKind::Sql, "SELECT 1").is_err());
        c.create_view("V", ViewKind::Xnf, "OUT OF ... TAKE *")
            .unwrap();
        assert!(c.create_table("v", emp_schema()).is_err());
        assert_eq!(c.view("v").unwrap().kind, ViewKind::Xnf);
        c.drop_view("V").unwrap();
        assert!(c.view("V").is_none());
    }

    #[test]
    fn analyze_populates_stats() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..100 {
            t.insert(&emp(i, i % 4)).unwrap();
        }
        let s = t.analyze().unwrap();
        assert_eq!(s.row_count, 100);
        assert_eq!(s.columns[2].distinct, 4);
        assert_eq!(t.stats().row_count, 100);
    }

    #[test]
    fn find_by_value_with_and_without_index() {
        let c = catalog();
        let t = c.create_table("EMP", emp_schema()).unwrap();
        for i in 0..30 {
            t.insert(&emp(i, i % 3)).unwrap();
        }
        let no_index = t.find_by_value(2, &Value::Int(1)).unwrap();
        t.create_index("emp_edno", vec![2], false).unwrap();
        let mut with_index = t.find_by_value(2, &Value::Int(1)).unwrap();
        with_index.sort_by_key(|(rid, _)| *rid);
        let mut expect = no_index;
        expect.sort_by_key(|(rid, _)| *rid);
        assert_eq!(with_index, expect);
    }
}
