//! Write-ahead log: LSN-stamped physiological records with group commit.
//!
//! # Log format
//!
//! The log is a single append-only file (`wal.log` under the data
//! directory). It opens with a 16-byte header:
//!
//! ```text
//! 0..4    magic  b"XWAL"
//! 4..8    format version (u32, currently 1)
//! 8..16   base LSN (u64)
//! ```
//!
//! followed by framed records:
//!
//! ```text
//! [payload len: u32][crc32(payload): u32][payload: tag byte + fields]
//! ```
//!
//! An **LSN** is a virtual byte position: the header's *base LSN* plus the
//! number of record bytes appended since. A record's LSN is its *end*
//! position, so "durable up to LSN `l`" means every byte of every record
//! ending at or before `l` has reached the file (and, with `fsync`
//! enabled, the platters). The base survives log rotation at
//! `Database::open`-time recovery: the fresh log starts where the old one
//! ended, keeping LSNs monotonic across restarts so `page_lsn` stamps on
//! flushed pages stay comparable (`Database` is in `xnf-core`).
//!
//! # Record vocabulary
//!
//! Page mutations are *physiological* — addressed by RID, absolute in
//! content ([`WalRecord::Install`] carries the full record image), so redo
//! is idempotent and undo needs no before-image beyond what the MVCC
//! version headers already encode. Transaction records ([`WalRecord::Commit`]
//! is appended *inside* the commit-stamp lock) keep log order identical to
//! commit-stamp order, so recovery always restores a prefix of the commit
//! history. DDL records and periodic [`WalRecord::Checkpoint`] snapshots
//! make the catalog recoverable; materialized-view *backing* storage is
//! deliberately unlogged — definitions are logged, contents are rebuilt by
//! `REFRESH` after restart (see `docs/DURABILITY.md`).
//!
//! # Group commit
//!
//! [`Wal::flush_for_commit`] batches fsyncs across concurrently committing
//! sessions: the first committer becomes the *leader* and syncs everything
//! buffered (including records appended after it took the role); the
//! others wait on a condvar and find their LSN already durable when the
//! leader finishes. One fsync then covers the whole batch.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::catalog::TableId;
use crate::codec::{self, Reader};
use crate::disk::PageId;
use crate::error::{Result, StorageError};
use crate::schema::{Column, Schema};
use crate::tuple::Rid;
use crate::txn::TxnId;
use crate::value::DataType;

const MAGIC: &[u8; 4] = b"XWAL";
const FORMAT: u32 = 1;
const HEADER_LEN: u64 = 16;
/// Sanity bound used when scanning frames: no payload is remotely this big
/// (the largest are checkpoints; page records are bounded by PAGE_SIZE).
const MAX_PAYLOAD: u32 = 64 << 20;

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// record types
// ---------------------------------------------------------------------------

/// A snapshot of one index definition (checkpoint / CreateIndex payload).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnap {
    pub name: String,
    pub columns: Vec<usize>,
    pub unique: bool,
}

/// A snapshot of one table: identity, schema and heap extent. Index
/// *contents* are not logged — trees are rebuilt from definitions during
/// recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnap {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    pub pages: Vec<PageId>,
    pub indexes: Vec<IndexSnap>,
}

/// A snapshot of one view definition. `streams` is non-empty only for
/// materialized views: the `(stream name, schema)` pairs needed to recreate
/// backing tables (fresh and empty — contents come from `REFRESH`).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSnap {
    pub name: String,
    /// 0 = SQL, 1 = XNF (kept as a raw tag to avoid a catalog dependency).
    pub kind: u8,
    pub text: String,
    pub materialized: bool,
    pub streams: Vec<(String, Schema)>,
}

/// Commit-stamp machinery snapshot: enough to answer visibility for every
/// version header that can still be on disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TxnSnap {
    pub next_txn: u64,
    pub commit_seq: u64,
    pub stamps: Vec<(TxnId, u64)>,
}

/// A fuzzy checkpoint: where redo must start, plus catalog + txn snapshots
/// as of the checkpoint. Records between `redo_lsn` and the checkpoint's
/// own position replay idempotently against the snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointSnap {
    pub redo_lsn: u64,
    pub next_table_id: TableId,
    pub txn: TxnSnap,
    pub tables: Vec<TableSnap>,
    pub views: Vec<ViewSnap>,
}

/// One log record. Page mutations carry the table id and RID; `Install`
/// carries the absolute record image (version header + tuple bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Write a full record image at an exact RID (insert, relocation, or
    /// in-place rewrite). The image embeds the `VersionHdr`, so the writing
    /// transaction is recoverable from `xmin`.
    Install {
        table: TableId,
        rid: Rid,
        record: Vec<u8>,
    },
    /// Set `xmax = xid` on the version at `rid` (delete / update mark).
    Mark {
        xid: TxnId,
        table: TableId,
        rid: Rid,
    },
    /// Clear `xmax` at `rid` (rollback of a mark — our CLR analog).
    Unmark {
        table: TableId,
        rid: Rid,
    },
    /// Vacuum froze the version at `rid` (`xmin = FROZEN`).
    Freeze {
        table: TableId,
        rid: Rid,
    },
    /// Physically remove the version at `rid` (rollback, vacuum reclaim, or
    /// frozen-path delete).
    Tombstone {
        table: TableId,
        rid: Rid,
    },
    /// The heap grew by page `page` (appended to the table's extent).
    HeapPage {
        table: TableId,
        page: PageId,
    },
    /// Transaction `xid` committed with this commit stamp. Appended inside
    /// the stamp lock: log order == stamp order.
    Commit {
        xid: TxnId,
        stamp: u64,
    },
    /// Transaction `xid` rolled back (its undo was already logged as
    /// Tombstone/Unmark records).
    Abort {
        xid: TxnId,
    },
    CreateTable {
        id: TableId,
        name: String,
        schema: Schema,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        table: TableId,
        index: IndexSnap,
    },
    CreateView(ViewSnap),
    DropView {
        name: String,
    },
    Checkpoint(Box<CheckpointSnap>),
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

fn write_rid(out: &mut Vec<u8>, rid: Rid) {
    codec::write_u64(out, rid.page);
    codec::write_u16(out, rid.slot);
}

fn read_rid(r: &mut Reader<'_>) -> Result<Rid> {
    Ok(Rid::new(r.u64()?, r.u16()?))
}

fn write_schema(out: &mut Vec<u8>, schema: &Schema) {
    codec::write_u16(out, schema.len() as u16);
    for col in schema.columns() {
        codec::write_str(out, &col.name);
        out.push(match col.ty {
            DataType::Int => 0,
            DataType::Double => 1,
            DataType::Str => 2,
            DataType::Bool => 3,
            DataType::Any => 4,
        });
        out.push(col.nullable as u8);
    }
}

fn read_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let n = r.u16()?;
    let mut cols = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = r.str()?;
        let ty = match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Double,
            2 => DataType::Str,
            3 => DataType::Bool,
            4 => DataType::Any,
            _ => return Err(StorageError::Corrupt("unknown data type tag")),
        };
        let nullable = r.u8()? != 0;
        cols.push(Column { name, ty, nullable });
    }
    Ok(Schema::new(cols))
}

fn write_index(out: &mut Vec<u8>, ix: &IndexSnap) {
    codec::write_str(out, &ix.name);
    codec::write_u16(out, ix.columns.len() as u16);
    for &c in &ix.columns {
        codec::write_u16(out, c as u16);
    }
    out.push(ix.unique as u8);
}

fn read_index(r: &mut Reader<'_>) -> Result<IndexSnap> {
    let name = r.str()?;
    let n = r.u16()?;
    let mut columns = Vec::with_capacity(n as usize);
    for _ in 0..n {
        columns.push(r.u16()? as usize);
    }
    let unique = r.u8()? != 0;
    Ok(IndexSnap {
        name,
        columns,
        unique,
    })
}

fn write_view(out: &mut Vec<u8>, v: &ViewSnap) {
    codec::write_str(out, &v.name);
    out.push(v.kind);
    codec::write_str(out, &v.text);
    out.push(v.materialized as u8);
    codec::write_u16(out, v.streams.len() as u16);
    for (name, schema) in &v.streams {
        codec::write_str(out, name);
        write_schema(out, schema);
    }
}

fn read_view(r: &mut Reader<'_>) -> Result<ViewSnap> {
    let name = r.str()?;
    let kind = r.u8()?;
    let text = r.str()?;
    let materialized = r.u8()? != 0;
    let n = r.u16()?;
    let mut streams = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let s = r.str()?;
        streams.push((s, read_schema(r)?));
    }
    Ok(ViewSnap {
        name,
        kind,
        text,
        materialized,
        streams,
    })
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Install { table, rid, record } => {
                out.push(1);
                codec::write_u32(&mut out, *table);
                write_rid(&mut out, *rid);
                codec::write_bytes(&mut out, record);
            }
            WalRecord::Mark { xid, table, rid } => {
                out.push(2);
                codec::write_u64(&mut out, *xid);
                codec::write_u32(&mut out, *table);
                write_rid(&mut out, *rid);
            }
            WalRecord::Unmark { table, rid } => {
                out.push(3);
                codec::write_u32(&mut out, *table);
                write_rid(&mut out, *rid);
            }
            WalRecord::Freeze { table, rid } => {
                out.push(4);
                codec::write_u32(&mut out, *table);
                write_rid(&mut out, *rid);
            }
            WalRecord::Tombstone { table, rid } => {
                out.push(5);
                codec::write_u32(&mut out, *table);
                write_rid(&mut out, *rid);
            }
            WalRecord::HeapPage { table, page } => {
                out.push(6);
                codec::write_u32(&mut out, *table);
                codec::write_u64(&mut out, *page);
            }
            WalRecord::Commit { xid, stamp } => {
                out.push(7);
                codec::write_u64(&mut out, *xid);
                codec::write_u64(&mut out, *stamp);
            }
            WalRecord::Abort { xid } => {
                out.push(8);
                codec::write_u64(&mut out, *xid);
            }
            WalRecord::CreateTable { id, name, schema } => {
                out.push(9);
                codec::write_u32(&mut out, *id);
                codec::write_str(&mut out, name);
                write_schema(&mut out, schema);
            }
            WalRecord::DropTable { name } => {
                out.push(10);
                codec::write_str(&mut out, name);
            }
            WalRecord::CreateIndex { table, index } => {
                out.push(11);
                codec::write_u32(&mut out, *table);
                write_index(&mut out, index);
            }
            WalRecord::CreateView(v) => {
                out.push(12);
                write_view(&mut out, v);
            }
            WalRecord::DropView { name } => {
                out.push(13);
                codec::write_str(&mut out, name);
            }
            WalRecord::Checkpoint(ck) => {
                out.push(14);
                codec::write_u64(&mut out, ck.redo_lsn);
                codec::write_u32(&mut out, ck.next_table_id);
                codec::write_u64(&mut out, ck.txn.next_txn);
                codec::write_u64(&mut out, ck.txn.commit_seq);
                codec::write_u32(&mut out, ck.txn.stamps.len() as u32);
                for (xid, stamp) in &ck.txn.stamps {
                    codec::write_u64(&mut out, *xid);
                    codec::write_u64(&mut out, *stamp);
                }
                codec::write_u32(&mut out, ck.tables.len() as u32);
                for t in &ck.tables {
                    codec::write_u32(&mut out, t.id);
                    codec::write_str(&mut out, &t.name);
                    write_schema(&mut out, &t.schema);
                    codec::write_u32(&mut out, t.pages.len() as u32);
                    for &p in &t.pages {
                        codec::write_u64(&mut out, p);
                    }
                    codec::write_u16(&mut out, t.indexes.len() as u16);
                    for ix in &t.indexes {
                        write_index(&mut out, ix);
                    }
                }
                codec::write_u32(&mut out, ck.views.len() as u32);
                for v in &ck.views {
                    write_view(&mut out, v);
                }
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            1 => WalRecord::Install {
                table: r.u32()?,
                rid: read_rid(&mut r)?,
                record: r.bytes()?,
            },
            2 => WalRecord::Mark {
                xid: r.u64()?,
                table: r.u32()?,
                rid: read_rid(&mut r)?,
            },
            3 => WalRecord::Unmark {
                table: r.u32()?,
                rid: read_rid(&mut r)?,
            },
            4 => WalRecord::Freeze {
                table: r.u32()?,
                rid: read_rid(&mut r)?,
            },
            5 => WalRecord::Tombstone {
                table: r.u32()?,
                rid: read_rid(&mut r)?,
            },
            6 => WalRecord::HeapPage {
                table: r.u32()?,
                page: r.u64()?,
            },
            7 => WalRecord::Commit {
                xid: r.u64()?,
                stamp: r.u64()?,
            },
            8 => WalRecord::Abort { xid: r.u64()? },
            9 => WalRecord::CreateTable {
                id: r.u32()?,
                name: r.str()?,
                schema: read_schema(&mut r)?,
            },
            10 => WalRecord::DropTable { name: r.str()? },
            11 => WalRecord::CreateIndex {
                table: r.u32()?,
                index: read_index(&mut r)?,
            },
            12 => WalRecord::CreateView(read_view(&mut r)?),
            13 => WalRecord::DropView { name: r.str()? },
            14 => {
                let redo_lsn = r.u64()?;
                let next_table_id = r.u32()?;
                let next_txn = r.u64()?;
                let commit_seq = r.u64()?;
                let n = r.u32()?;
                let mut stamps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    stamps.push((r.u64()?, r.u64()?));
                }
                let n = r.u32()?;
                let mut tables = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = r.u32()?;
                    let name = r.str()?;
                    let schema = read_schema(&mut r)?;
                    let np = r.u32()?;
                    let mut pages = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        pages.push(r.u64()?);
                    }
                    let ni = r.u16()?;
                    let mut indexes = Vec::with_capacity(ni as usize);
                    for _ in 0..ni {
                        indexes.push(read_index(&mut r)?);
                    }
                    tables.push(TableSnap {
                        id,
                        name,
                        schema,
                        pages,
                        indexes,
                    });
                }
                let n = r.u32()?;
                let mut views = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    views.push(read_view(&mut r)?);
                }
                WalRecord::Checkpoint(Box::new(CheckpointSnap {
                    redo_lsn,
                    next_table_id,
                    txn: TxnSnap {
                        next_txn,
                        commit_seq,
                        stamps,
                    },
                    tables,
                    views,
                }))
            }
            _ => return Err(StorageError::Corrupt("unknown wal record tag")),
        };
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// the log itself
// ---------------------------------------------------------------------------

/// Counters exposed by [`Wal::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended this session.
    pub records: u64,
    /// Framed bytes appended this session.
    pub bytes_logged: u64,
    /// `fsync` calls issued (0 when `wal_fsync` is off).
    pub fsyncs: u64,
    /// Buffer flushes to the OS (each covers ≥ 1 record).
    pub flushes: u64,
    /// Group-commit rounds led by some session.
    pub group_commit_batches: u64,
    /// Commits absorbed by those rounds (≥ batches; the surplus rode along
    /// on another session's flush).
    pub group_commit_commits: u64,
    /// Checkpoint records written this session.
    pub checkpoints: u64,
    /// Current end of the log (virtual bytes).
    pub last_lsn: u64,
    /// Everything at or below this LSN is durable.
    pub durable_lsn: u64,
}

struct WalFile {
    file: File,
    /// Virtual LSN of the log body start (from the header).
    base: u64,
    /// Virtual LSN up to which bytes have been written to the OS.
    written: u64,
    /// Appended but not yet written: `[written .. written + buf.len())`.
    buf: Vec<u8>,
}

#[derive(Default)]
struct GroupState {
    flushing: bool,
    waiting: u64,
}

/// The write-ahead log. Appends are buffered; [`Wal::flush_to`] makes a
/// prefix durable (WAL-before-data), [`Wal::flush_for_commit`] group-commits.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalFile>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    fsync: bool,
    logging: AtomicBool,
    last_lsn: AtomicU64,
    durable_lsn: AtomicU64,
    since_checkpoint: AtomicU64,
    records: AtomicU64,
    bytes_logged: AtomicU64,
    fsyncs: AtomicU64,
    flushes: AtomicU64,
    group_batches: AtomicU64,
    group_commits: AtomicU64,
    checkpoints: AtomicU64,
}

impl Wal {
    /// Open (or create) the log at `path`, scan it, and return the log
    /// positioned for appending plus every valid record with its LSN.
    ///
    /// The scan stops at the first torn or corrupt frame (bad length,
    /// short read, CRC mismatch) and truncates the file there: an
    /// interrupted append never poisons the log, it just loses the tail
    /// that was never acknowledged as durable.
    pub fn open(path: &Path, fsync: bool) -> Result<(Wal, Vec<(u64, WalRecord)>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();

        let base;
        let mut records = Vec::new();
        let mut end_off = HEADER_LEN;
        if len < HEADER_LEN {
            // Fresh (or torn-before-header) log: write a clean header.
            base = HEADER_LEN;
            file.set_len(0).map_err(io_err)?;
            let mut hdr = Vec::with_capacity(HEADER_LEN as usize);
            hdr.extend_from_slice(MAGIC);
            hdr.extend_from_slice(&FORMAT.to_le_bytes());
            hdr.extend_from_slice(&base.to_le_bytes());
            file.seek(SeekFrom::Start(0)).map_err(io_err)?;
            file.write_all(&hdr).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
        } else {
            let mut bytes = Vec::with_capacity(len as usize);
            file.seek(SeekFrom::Start(0)).map_err(io_err)?;
            file.read_to_end(&mut bytes).map_err(io_err)?;
            if &bytes[0..4] != MAGIC {
                return Err(StorageError::Corrupt("wal: bad magic"));
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            if version != FORMAT {
                return Err(StorageError::Corrupt("wal: unsupported format version"));
            }
            base = u64::from_le_bytes(bytes[8..16].try_into().unwrap());

            // Scan frames until the first invalid one.
            let mut off = HEADER_LEN as usize;
            while off + 8 <= bytes.len() {
                let plen = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
                if plen == 0 || plen > MAX_PAYLOAD {
                    break;
                }
                let data_end = off + 8 + plen as usize;
                if data_end > bytes.len() {
                    break;
                }
                let payload = &bytes[off + 8..data_end];
                if codec::crc32(payload) != crc {
                    break;
                }
                let Ok(rec) = WalRecord::decode(payload) else {
                    break;
                };
                off = data_end;
                let lsn = base + (off as u64 - HEADER_LEN);
                records.push((lsn, rec));
            }
            end_off = off as u64;
            if end_off < len {
                // Drop the torn tail.
                file.set_len(end_off).map_err(io_err)?;
                file.sync_data().map_err(io_err)?;
            }
        }

        let end_lsn = base + (end_off - HEADER_LEN);
        file.seek(SeekFrom::Start(end_off)).map_err(io_err)?;
        let wal = Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalFile {
                file,
                base,
                written: end_lsn,
                buf: Vec::new(),
            }),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            fsync,
            logging: AtomicBool::new(true),
            last_lsn: AtomicU64::new(end_lsn),
            durable_lsn: AtomicU64::new(end_lsn),
            since_checkpoint: AtomicU64::new(0),
            records: AtomicU64::new(0),
            bytes_logged: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            group_batches: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        };
        Ok((wal, records))
    }

    /// Is runtime logging enabled? Recovery replay turns it off so redo and
    /// undo don't re-log what the log already says.
    pub fn logging(&self) -> bool {
        self.logging.load(Ordering::Acquire)
    }

    pub fn set_logging(&self, on: bool) {
        self.logging.store(on, Ordering::Release);
    }

    /// Current end of the log (the LSN the *next* record will end past).
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::Acquire)
    }

    /// Everything at or below this LSN is durable.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn.load(Ordering::Acquire)
    }

    /// Append a record to the in-memory log buffer, returning its LSN. No
    /// I/O happens here; durability comes from [`Wal::flush_to`] /
    /// [`Wal::flush_for_commit`]. When logging is disabled (recovery
    /// replay) this is a no-op returning the current end LSN.
    pub fn append(&self, rec: &WalRecord) -> u64 {
        if !self.logging() {
            return self.last_lsn();
        }
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut inner = self.inner.lock().unwrap();
        inner.buf.extend_from_slice(&frame);
        let lsn = inner.written + inner.buf.len() as u64;
        self.last_lsn.store(lsn, Ordering::Release);
        drop(inner);

        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes_logged
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.since_checkpoint
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        lsn
    }

    /// Make the log durable up to (at least) `lsn`: write the buffer to the
    /// OS and, when `fsync` is enabled, sync it. The buffer pool calls this
    /// with a page's `page_lsn` before writing the page to disk — the
    /// WAL-before-data rule.
    pub fn flush_to(&self, lsn: u64) -> Result<()> {
        if self.durable_lsn() >= lsn {
            return Ok(());
        }
        let mut inner = self.inner.lock().unwrap();
        self.flush_locked(&mut inner)
    }

    /// Flush everything buffered (plus fsync when enabled).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut WalFile) -> Result<()> {
        if !inner.buf.is_empty() {
            inner.file.write_all(&inner.buf).map_err(io_err)?;
            inner.written += inner.buf.len() as u64;
            inner.buf.clear();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        if self.durable_lsn() < inner.written {
            if self.fsync {
                inner.file.sync_data().map_err(io_err)?;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            self.durable_lsn.store(inner.written, Ordering::Release);
        }
        Ok(())
    }

    /// Group commit: make everything appended so far durable, batching the
    /// fsync with other sessions committing concurrently. The first caller
    /// in becomes the leader and flushes for everyone; later callers wait
    /// and usually find their commit record already durable.
    pub fn flush_for_commit(&self) -> Result<()> {
        let target = self.last_lsn();
        let mut st = self.group.lock().unwrap();
        loop {
            if self.durable_lsn() >= target {
                return Ok(());
            }
            if !st.flushing {
                st.flushing = true;
                let followers = st.waiting;
                drop(st);
                let res = self.flush_to(self.last_lsn());
                self.group_batches.fetch_add(1, Ordering::Relaxed);
                self.group_commits
                    .fetch_add(followers + 1, Ordering::Relaxed);
                let mut st = self.group.lock().unwrap();
                st.flushing = false;
                self.group_cv.notify_all();
                return res;
            }
            st.waiting += 1;
            st = self.group_cv.wait(st).unwrap();
            st.waiting -= 1;
        }
    }

    /// Bytes appended since the last checkpoint (drives the
    /// `checkpoint_interval` trigger).
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.since_checkpoint.load(Ordering::Relaxed)
    }

    /// Append a checkpoint record and force it durable (checkpoints always
    /// fsync — they are rare and bound redo).
    pub fn append_checkpoint(&self, snap: CheckpointSnap) -> Result<u64> {
        let lsn = self.append(&WalRecord::Checkpoint(Box::new(snap)));
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        if !inner.buf.is_empty() {
            inner.file.write_all(&inner.buf).map_err(io_err)?;
            inner.written += inner.buf.len() as u64;
            inner.buf.clear();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        inner.file.sync_data().map_err(io_err)?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.durable_lsn.store(inner.written, Ordering::Release);
        drop(guard);
        self.since_checkpoint.store(0, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Rotate the log: atomically replace it with a fresh one whose only
    /// record is `snap` (write `wal.log.tmp`, fsync, rename). Called at
    /// `Database::open` after recovery, once all pages are flushed and
    /// synced — a crash before the rename leaves the old log valid; after,
    /// the new one. The new base LSN continues where the old log ended, so
    /// `page_lsn` stamps from past sessions stay comparable.
    pub fn rotate(&self, snap: CheckpointSnap) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        // Anything still buffered is superseded by the checkpoint snapshot.
        let new_base = inner.written + inner.buf.len() as u64;
        inner.buf.clear();

        let payload = WalRecord::Checkpoint(Box::new(snap)).encode();
        let mut contents = Vec::with_capacity(HEADER_LEN as usize + payload.len() + 8);
        contents.extend_from_slice(MAGIC);
        contents.extend_from_slice(&FORMAT.to_le_bytes());
        contents.extend_from_slice(&new_base.to_le_bytes());
        contents.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        contents.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        contents.extend_from_slice(&payload);

        let tmp = self.path.with_extension("log.tmp");
        let mut f = File::create(&tmp).map_err(io_err)?;
        f.write_all(&contents).map_err(io_err)?;
        f.sync_data().map_err(io_err)?;
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        // Best effort: make the rename itself durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io_err)?;
        let end = file.metadata().map_err(io_err)?.len();
        file.seek(SeekFrom::Start(end)).map_err(io_err)?;
        let end_lsn = new_base + (end - HEADER_LEN);
        inner.file = file;
        inner.base = new_base;
        inner.written = end_lsn;
        self.last_lsn.store(end_lsn, Ordering::Release);
        self.durable_lsn.store(end_lsn, Ordering::Release);
        drop(inner);
        self.since_checkpoint.store(0, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            bytes_logged: self.bytes_logged.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            group_commit_batches: self.group_batches.load(Ordering::Relaxed),
            group_commit_commits: self.group_commits.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_lsn: self.last_lsn(),
            durable_lsn: self.durable_lsn(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                id: 7,
                name: "T".into(),
                schema: Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]),
            },
            WalRecord::Install {
                table: 7,
                rid: Rid::new(3, 2),
                record: vec![1, 2, 3, 4],
            },
            WalRecord::Mark {
                xid: 42,
                table: 7,
                rid: Rid::new(3, 2),
            },
            WalRecord::Commit { xid: 42, stamp: 9 },
            WalRecord::Abort { xid: 43 },
            WalRecord::Checkpoint(Box::new(CheckpointSnap {
                redo_lsn: 16,
                next_table_id: 8,
                txn: TxnSnap {
                    next_txn: 44,
                    commit_seq: 9,
                    stamps: vec![(42, 9)],
                },
                tables: vec![TableSnap {
                    id: 7,
                    name: "T".into(),
                    schema: Schema::from_pairs(&[("a", DataType::Int)]),
                    pages: vec![0, 4],
                    indexes: vec![IndexSnap {
                        name: "t_a".into(),
                        columns: vec![0],
                        unique: true,
                    }],
                }],
                views: vec![ViewSnap {
                    name: "V".into(),
                    kind: 0,
                    text: "SELECT a FROM T".into(),
                    materialized: true,
                    streams: vec![("V".into(), Schema::from_pairs(&[("a", DataType::Int)]))],
                }],
            })),
        ]
    }

    #[test]
    fn records_roundtrip_through_encoding() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn append_flush_reopen_replays_records() {
        let dir = TempDir::new("wal");
        let path = dir.path().join("wal.log");
        let recs = sample_records();
        {
            let (wal, existing) = Wal::open(&path, true).unwrap();
            assert!(existing.is_empty());
            for r in &recs {
                wal.append(r);
            }
            wal.flush_all().unwrap();
        }
        let (wal, back) = Wal::open(&path, true).unwrap();
        assert_eq!(back.len(), recs.len());
        for ((lsn, got), want) in back.iter().zip(&recs) {
            assert_eq!(got, want);
            assert!(*lsn > HEADER_LEN);
        }
        assert_eq!(wal.last_lsn(), back.last().unwrap().0);
    }

    #[test]
    fn torn_tail_truncated_at_every_offset() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let recs = sample_records();
        {
            let (wal, _) = Wal::open(&path, false).unwrap();
            for r in &recs {
                wal.append(r);
            }
            wal.flush_all().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // How many records survive when the file is cut at each length?
        let mut survivors_at = Vec::new();
        for cut in (HEADER_LEN as usize)..=full.len() {
            let tpath = dir.path().join(format!("torn-{cut}.log"));
            std::fs::write(&tpath, &full[..cut]).unwrap();
            let (_, back) = Wal::open(&tpath, false).unwrap();
            assert!(back.len() <= recs.len());
            for (got, want) in back.iter().zip(&recs) {
                assert_eq!(&got.1, want, "prefix must decode to original records");
            }
            survivors_at.push(back.len());
            std::fs::remove_file(&tpath).unwrap();
        }
        // Monotone: longer prefixes never lose records; the full file keeps
        // all of them.
        assert!(survivors_at.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*survivors_at.last().unwrap(), recs.len());
        assert_eq!(survivors_at[0], 0);
    }

    #[test]
    fn corrupt_middle_record_drops_the_rest() {
        let dir = TempDir::new("wal-crc");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = Wal::open(&path, false).unwrap();
            for r in sample_records() {
                wal.append(&r);
            }
            wal.flush_all().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let first_len = u32::from_le_bytes(
            bytes[HEADER_LEN as usize..HEADER_LEN as usize + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let second = HEADER_LEN as usize + 8 + first_len + 10;
        bytes[second] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, back) = Wal::open(&path, false).unwrap();
        assert_eq!(back.len(), 1, "scan stops at the corrupt frame");
    }

    #[test]
    fn rotation_resets_contents_and_keeps_lsns_monotonic() {
        let dir = TempDir::new("wal-rot");
        let path = dir.path().join("wal.log");
        let (wal, _) = Wal::open(&path, false).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.flush_all().unwrap();
        let before = wal.last_lsn();

        wal.rotate(CheckpointSnap::default()).unwrap();
        assert!(wal.last_lsn() >= before, "LSNs must stay monotonic");
        let after_rotate = wal.last_lsn();

        // Appends continue on the new file.
        wal.append(&WalRecord::Abort { xid: 1 });
        wal.flush_all().unwrap();
        assert!(wal.last_lsn() > after_rotate);

        let (_, back) = Wal::open(&path, false).unwrap();
        assert_eq!(back.len(), 2);
        assert!(matches!(back[0].1, WalRecord::Checkpoint(_)));
        assert!(matches!(back[1].1, WalRecord::Abort { xid: 1 }));
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        use std::sync::Arc;
        let dir = TempDir::new("wal-group");
        let path = dir.path().join("wal.log");
        let (wal, _) = Wal::open(&path, true).unwrap();
        let wal = Arc::new(wal);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for n in 0..20 {
                        wal.append(&WalRecord::Commit {
                            xid: i * 1000 + n,
                            stamp: n,
                        });
                        wal.flush_for_commit().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.records, 160);
        assert!(s.group_commit_commits >= s.group_commit_batches);
        assert_eq!(s.durable_lsn, s.last_lsn);
        // All records intact on disk.
        let (_, back) = Wal::open(&path, true).unwrap();
        assert_eq!(back.len(), 160);
    }

    #[test]
    fn disabled_logging_appends_nothing() {
        let dir = TempDir::new("wal-off");
        let (wal, _) = Wal::open(&dir.path().join("wal.log"), false).unwrap();
        wal.set_logging(false);
        let before = wal.last_lsn();
        assert_eq!(wal.append(&WalRecord::Abort { xid: 5 }), before);
        wal.set_logging(true);
        assert!(wal.append(&WalRecord::Abort { xid: 5 }) > before);
    }
}
