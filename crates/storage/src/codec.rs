//! Shared binary codec primitives for on-disk formats.
//!
//! The write-ahead log ([`crate::wal`]), checkpoint snapshots and the
//! workspace persistence layer in `xnf-core` all frame their payloads with
//! the same little-endian primitives defined here, so every durable format
//! in the engine shares one vocabulary: length-prefixed strings, fixed-width
//! integers, and CRC-32 record checksums.

use std::io::{self, Read, Write};

use crate::error::{Result, StorageError};

// ---------------------------------------------------------------------------
// little-endian primitives
// ---------------------------------------------------------------------------

pub fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed (u32) UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Length-prefixed (u32) byte blob.
pub fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A cursor over a byte slice with checked little-endian reads. All reads
/// fail with [`StorageError::Corrupt`] instead of panicking, so torn or
/// damaged log records surface as recoverable errors.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt("truncated record"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| StorageError::Corrupt("invalid utf-8 string"))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// io::Read / io::Write adapters (used by core/persist.rs)
// ---------------------------------------------------------------------------

pub fn io_write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn io_write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    io_write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

pub fn io_read_exact<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

pub fn io_read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let b = io_read_exact(r, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub fn io_read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let n = io_read_u32(r)? as usize;
    let b = io_read_exact(r, n)?;
    String::from_utf8(b).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid utf-8"))
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table-driven, no dependencies
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        table
    })
}

/// CRC-32 checksum of `data` (the common IEEE polynomial, as used by zip,
/// PNG and Ethernet). Used to validate WAL record frames on recovery.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        write_u16(&mut buf, 7);
        write_u32(&mut buf, 40_000);
        write_u64(&mut buf, u64::MAX - 3);
        write_i64(&mut buf, -99);
        write_str(&mut buf, "héllo");
        write_bytes(&mut buf, &[1, 2, 3]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u16().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 40_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -99);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 100); // claims a 100-byte string follows
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());

        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitivity: a single flipped bit changes the checksum.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }
}
