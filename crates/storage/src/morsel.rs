//! Morsel dispenser: work distribution for parallel scans.
//!
//! A *morsel* is one heap page — the natural unit `HeapFile::
//! scan_page_snapshot` already reads under a single page latch. A
//! [`MorselDispenser`] is a shared atomic cursor over a table's page
//! directory: every worker of a parallel scan claims the next unclaimed
//! page index, scans it, and comes back for more. Fast workers therefore
//! steal work from slow ones automatically (the morsel-driven scheduling
//! of Leis et al.), and because claims are handed out in strictly
//! increasing page order, each worker's claimed indices are monotonically
//! increasing — the property the executor's ordered gather relies on to
//! reassemble output in serial page order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared atomic page cursor for one parallel scan.
///
/// Workers call [`claim`](MorselDispenser::claim) until the scan reports
/// the index is past the end of the page directory; claims past the end
/// are harmless (the scan returns `None` and the worker stops).
#[derive(Debug, Default)]
pub struct MorselDispenser {
    next: AtomicUsize,
}

impl MorselDispenser {
    pub fn new() -> MorselDispenser {
        MorselDispenser::default()
    }

    /// Claim the next page index. Each index is handed out exactly once
    /// across all workers sharing this dispenser.
    pub fn claim(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of claims handed out so far (including past-the-end probes).
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claims_are_disjoint_and_complete_across_threads() {
        let d = Arc::new(MorselDispenser::new());
        let per_thread: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let d = Arc::clone(&d);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let idx = d.claim();
                            if idx >= 1000 {
                                break;
                            }
                            mine.push(idx);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = per_thread.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
        // Each worker's claims come out in increasing order — the gather
        // merge depends on this.
        for mine in &per_thread {
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
