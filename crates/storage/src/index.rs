//! B+-tree indexes mapping (composite) key values to RID postings.
//!
//! The tree is an in-memory node-based B+-tree (fixed fan-out) over
//! [`Value`] keys, supporting duplicates (a posting list per key), unique
//! constraints, point lookups and range scans. Starburst-era links (direct
//! tuple pointers) correspond to the RID postings here.
//!
//! Deletion is *lazy*: removing the last RID of a key removes the key from
//! its leaf but does not rebalance the tree; empty leaves are skipped by
//! scans. This is a standard engineering trade-off (many production systems
//! defer structural deletion) and bounded here because workloads rebuild
//! indexes on bulk reorganisation.

use std::ops::Bound;

use crate::error::{Result, StorageError};
use crate::tuple::Rid;
use crate::value::Value;

/// Maximum keys per node; nodes split at `ORDER` keys.
const ORDER: usize = 32;

/// A composite index key.
pub type Key = Vec<Value>;

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<Key>,
        postings: Vec<Vec<Rid>>,
    },
    Internal {
        keys: Vec<Key>,
        children: Vec<Node>,
    },
}

impl Node {
    fn new_leaf() -> Node {
        Node::Leaf {
            keys: Vec::new(),
            postings: Vec::new(),
        }
    }
}

/// Result of inserting into a subtree: possibly a split (separator + right).
enum InsertResult {
    Done,
    Split(Key, Box<Node>),
}

/// An ordered secondary index.
pub struct BTreeIndex {
    root: Box<Node>,
    unique: bool,
    len: usize,
}

impl BTreeIndex {
    /// Create an empty index; `unique` enforces one RID per key.
    pub fn new(unique: bool) -> Self {
        BTreeIndex {
            root: Box::new(Node::new_leaf()),
            unique,
            len: 0,
        }
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. Fails with [`StorageError::UniqueViolation`] if the
    /// index is unique and the key is already present.
    pub fn insert(&mut self, key: Key, rid: Rid) -> Result<()> {
        match Self::insert_rec(&mut self.root, key, rid, self.unique)? {
            InsertResult::Done => {}
            InsertResult::Split(sep, right) => {
                // Grow the tree: new root with two children.
                let old_root = std::mem::replace(&mut self.root, Box::new(Node::new_leaf()));
                *self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![*old_root, *right],
                };
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(node: &mut Node, key: Key, rid: Rid, unique: bool) -> Result<InsertResult> {
        match node {
            Node::Leaf { keys, postings } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        if unique {
                            return Err(StorageError::UniqueViolation(format_key(&key)));
                        }
                        postings[i].push(rid);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        postings.insert(i, vec![rid]);
                    }
                }
                if keys.len() > ORDER {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_postings = postings.split_off(mid);
                    let sep = right_keys[0].clone();
                    Ok(InsertResult::Split(
                        sep,
                        Box::new(Node::Leaf {
                            keys: right_keys,
                            postings: right_postings,
                        }),
                    ))
                } else {
                    Ok(InsertResult::Done)
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut children[idx], key, rid, unique)? {
                    InsertResult::Done => Ok(InsertResult::Done),
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, *right);
                        if keys.len() > ORDER {
                            let mid = keys.len() / 2;
                            // Separator moves up; right node gets keys after mid.
                            let sep_up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove sep_up from left
                            let right_children = children.split_off(mid + 1);
                            Ok(InsertResult::Split(
                                sep_up,
                                Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            ))
                        } else {
                            Ok(InsertResult::Done)
                        }
                    }
                }
            }
        }
    }

    /// Remove one (key, rid) entry. Returns whether it existed.
    pub fn delete(&mut self, key: &Key, rid: Rid) -> bool {
        let removed = Self::delete_rec(&mut self.root, key, rid);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn delete_rec(node: &mut Node, key: &Key, rid: Rid) -> bool {
        match node {
            Node::Leaf { keys, postings } => match keys.binary_search(key) {
                Ok(i) => {
                    let p = &mut postings[i];
                    if let Some(pos) = p.iter().position(|r| *r == rid) {
                        p.swap_remove(pos);
                        if p.is_empty() {
                            keys.remove(i);
                            postings.remove(i);
                        }
                        true
                    } else {
                        false
                    }
                }
                Err(_) => false,
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Self::delete_rec(&mut children[idx], key, rid)
            }
        }
    }

    /// Exact-match lookup: all RIDs for `key`.
    pub fn get(&self, key: &Key) -> Vec<Rid> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, postings } => {
                    return match keys.binary_search(key) {
                        Ok(i) => postings[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Range scan over keys with standard bounds; yields `(key, rid)` in key
    /// order (RIDs within a key in insertion order).
    pub fn range(&self, lo: Bound<&Key>, hi: Bound<&Key>) -> Vec<(Key, Rid)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn within_lo(key: &Key, lo: Bound<&Key>) -> bool {
        match lo {
            Bound::Unbounded => true,
            Bound::Included(k) => key >= k,
            Bound::Excluded(k) => key > k,
        }
    }

    fn within_hi(key: &Key, hi: Bound<&Key>) -> bool {
        match hi {
            Bound::Unbounded => true,
            Bound::Included(k) => key <= k,
            Bound::Excluded(k) => key < k,
        }
    }

    fn range_rec(node: &Node, lo: Bound<&Key>, hi: Bound<&Key>, out: &mut Vec<(Key, Rid)>) {
        match node {
            Node::Leaf { keys, postings } => {
                for (k, p) in keys.iter().zip(postings) {
                    if !Self::within_lo(k, lo) {
                        continue;
                    }
                    if !Self::within_hi(k, hi) {
                        break;
                    }
                    for rid in p {
                        out.push((k.clone(), *rid));
                    }
                }
            }
            Node::Internal { keys, children } => {
                // Child i holds keys in [keys[i-1], keys[i]); visit it only
                // if that interval can intersect [lo, hi].
                for (i, child) in children.iter().enumerate() {
                    // Skip if everything in the child is below `lo`:
                    // child keys < keys[i], so child is useless when
                    // keys[i] <= lo (for both Included and Excluded lo).
                    if i < keys.len() {
                        let below_lo = match lo {
                            Bound::Unbounded => false,
                            Bound::Included(l) | Bound::Excluded(l) => &keys[i] <= l,
                        };
                        if below_lo {
                            continue;
                        }
                    }
                    // Skip if everything in the child is above `hi`:
                    // child keys >= keys[i-1], so child is useless when
                    // keys[i-1] > hi (Included) or >= hi (Excluded).
                    if i > 0 {
                        let above_hi = match hi {
                            Bound::Unbounded => false,
                            Bound::Included(h) => &keys[i - 1] > h,
                            Bound::Excluded(h) => &keys[i - 1] >= h,
                        };
                        if above_hi {
                            break;
                        }
                    }
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    /// Number of distinct keys (full traversal; used for ANALYZE).
    pub fn distinct_keys(&self) -> usize {
        fn rec(node: &Node) -> usize {
            match node {
                Node::Leaf { keys, .. } => keys.len(),
                Node::Internal { children, .. } => children.iter().map(rec).sum(),
            }
        }
        rec(&self.root)
    }

    /// Tree height (1 = just a leaf). Exposed for tests and cost modelling.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &*self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }
}

fn format_key(key: &Key) -> String {
    let parts: Vec<String> = key.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Key {
        vec![Value::Int(i)]
    }

    fn rid(i: u64) -> Rid {
        Rid::new(i, 0)
    }

    #[test]
    fn insert_and_lookup_small() {
        let mut idx = BTreeIndex::new(false);
        for i in 0..10 {
            idx.insert(k(i), rid(i as u64)).unwrap();
        }
        assert_eq!(idx.get(&k(5)), vec![rid(5)]);
        assert_eq!(idx.get(&k(99)), vec![]);
    }

    #[test]
    fn splits_maintain_order_large() {
        let mut idx = BTreeIndex::new(false);
        // Insert shuffled to force interior splits.
        let mut keys: Vec<i64> = (0..5000).collect();
        // Deterministic shuffle.
        let mut s = 12345u64;
        for i in (1..keys.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s % (i as u64 + 1)) as usize;
            keys.swap(i, j);
        }
        for &i in &keys {
            idx.insert(k(i), rid(i as u64)).unwrap();
        }
        assert!(idx.height() > 1, "5000 keys should split the root");
        for i in 0..5000 {
            assert_eq!(idx.get(&k(i)), vec![rid(i as u64)], "key {i}");
        }
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 5000);
        assert!(
            all.windows(2).all(|w| w[0].0 <= w[1].0),
            "range scan sorted"
        );
    }

    #[test]
    fn duplicates_accumulate_postings() {
        let mut idx = BTreeIndex::new(false);
        idx.insert(k(1), rid(1)).unwrap();
        idx.insert(k(1), rid(2)).unwrap();
        idx.insert(k(1), rid(3)).unwrap();
        let mut rids = idx.get(&k(1));
        rids.sort();
        assert_eq!(rids, vec![rid(1), rid(2), rid(3)]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = BTreeIndex::new(true);
        idx.insert(k(1), rid(1)).unwrap();
        assert!(matches!(
            idx.insert(k(1), rid(2)),
            Err(StorageError::UniqueViolation(_))
        ));
    }

    #[test]
    fn delete_entries() {
        let mut idx = BTreeIndex::new(false);
        for i in 0..100 {
            idx.insert(k(i % 10), rid(i as u64)).unwrap();
        }
        assert!(idx.delete(&k(3), rid(3)));
        assert!(!idx.delete(&k(3), rid(3)), "double delete");
        assert!(!idx.delete(&k(55), rid(1)), "missing key");
        assert_eq!(idx.len(), 99);
        // Deleting all rids of key 4 removes the key.
        for i in 0..100u64 {
            if i % 10 == 4 {
                assert!(idx.delete(&k(4), rid(i)));
            }
        }
        assert_eq!(idx.get(&k(4)), vec![]);
    }

    #[test]
    fn range_bounds() {
        let mut idx = BTreeIndex::new(false);
        for i in 0..100 {
            idx.insert(k(i), rid(i as u64)).unwrap();
        }
        let r = idx.range(Bound::Included(&k(10)), Bound::Excluded(&k(20)));
        let got: Vec<i64> = r.iter().map(|(key, _)| key[0].as_int().unwrap()).collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        let r = idx.range(Bound::Excluded(&k(95)), Bound::Unbounded);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let mut idx = BTreeIndex::new(false);
        idx.insert(vec![Value::Int(1), Value::Str("b".into())], rid(1))
            .unwrap();
        idx.insert(vec![Value::Int(1), Value::Str("a".into())], rid(2))
            .unwrap();
        idx.insert(vec![Value::Int(0), Value::Str("z".into())], rid(3))
            .unwrap();
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        let rids: Vec<Rid> = all.iter().map(|(_, r)| *r).collect();
        assert_eq!(rids, vec![rid(3), rid(2), rid(1)]);
    }

    #[test]
    fn string_keys() {
        let mut idx = BTreeIndex::new(false);
        for (i, name) in ["ARC", "HDC", "YKT", "ALM"].iter().enumerate() {
            idx.insert(vec![Value::Str(name.to_string())], rid(i as u64))
                .unwrap();
        }
        assert_eq!(idx.get(&vec![Value::Str("ARC".into())]), vec![rid(0)]);
        assert_eq!(idx.get(&vec![Value::Str("SJC".into())]), vec![]);
    }
}
