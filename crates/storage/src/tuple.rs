//! Tuples (rows) and their binary on-page encoding.
//!
//! The codec is a simple self-describing format: a one-byte tag per value
//! followed by a fixed or length-prefixed payload. It is compact enough for
//! realistic page-occupancy experiments and fully round-trips every [`Value`].

use crate::error::{Result, StorageError};
use crate::value::Value;

/// Record id: physical address of a stored tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: u64,
    pub slot: u16,
}

impl Rid {
    pub fn new(page: u64, slot: u16) -> Self {
        Rid { page, slot }
    }
}

/// A row of values. `Tuple` is deliberately a thin wrapper over `Vec<Value>`
/// so the executor can treat rows as slices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tuple {
    pub values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Approximate byte footprint (used by the shipping simulation).
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }

    /// Encode this tuple to bytes, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_values(&self.values, out);
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size() + self.len() + 2);
        self.encode_into(&mut out);
        out
    }

    /// Decode a tuple previously produced by [`Tuple::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Tuple> {
        let (values, rest) = decode_values(bytes)?;
        if !rest.is_empty() {
            return Err(StorageError::Corrupt("trailing bytes after tuple"));
        }
        Ok(Tuple::new(values))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Encode a slice of values: u16 count, then tagged payloads.
pub fn encode_values(values: &[Value], out: &mut Vec<u8>) {
    debug_assert!(values.len() <= u16::MAX as usize);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                out.push(TAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(false) => out.push(TAG_BOOL_FALSE),
            Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        }
    }
}

/// Decode values; returns the values and the remaining bytes.
pub fn decode_values(bytes: &[u8]) -> Result<(Vec<Value>, &[u8])> {
    let corrupt = || StorageError::Corrupt("truncated tuple");
    if bytes.len() < 2 {
        return Err(corrupt());
    }
    let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut rest = &bytes[2..];
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let (tag, r) = rest.split_first().ok_or_else(corrupt)?;
        rest = r;
        let v = match *tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                if rest.len() < 8 {
                    return Err(corrupt());
                }
                let (b, r) = rest.split_at(8);
                rest = r;
                Value::Int(i64::from_le_bytes(b.try_into().unwrap()))
            }
            TAG_DOUBLE => {
                if rest.len() < 8 {
                    return Err(corrupt());
                }
                let (b, r) = rest.split_at(8);
                rest = r;
                Value::Double(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
            }
            TAG_STR => {
                if rest.len() < 4 {
                    return Err(corrupt());
                }
                let (lb, r) = rest.split_at(4);
                let len = u32::from_le_bytes(lb.try_into().unwrap()) as usize;
                if r.len() < len {
                    return Err(corrupt());
                }
                let (sb, r2) = r.split_at(len);
                rest = r2;
                let s = std::str::from_utf8(sb)
                    .map_err(|_| StorageError::Corrupt("invalid utf-8 in string value"))?;
                Value::Str(s.to_string())
            }
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            _ => return Err(StorageError::Corrupt("unknown value tag")),
        };
        values.push(v);
    }
    Ok((values, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tuple) {
        let enc = t.encode();
        let dec = Tuple::decode(&enc).unwrap();
        assert_eq!(t, &dec);
    }

    #[test]
    fn codec_roundtrips_all_types() {
        roundtrip(&Tuple::new(vec![
            Value::Null,
            Value::Int(-42),
            Value::Double(3.5),
            Value::Str("hello, wörld".into()),
            Value::Bool(true),
            Value::Bool(false),
        ]));
        roundtrip(&Tuple::new(vec![]));
        roundtrip(&Tuple::new(vec![Value::Str(String::new())]));
    }

    #[test]
    fn codec_rejects_truncation() {
        let t = Tuple::new(vec![Value::Int(7), Value::Str("abc".into())]);
        let enc = t.encode();
        for cut in 0..enc.len() {
            assert!(
                Tuple::decode(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn codec_rejects_trailing_garbage() {
        let mut enc = Tuple::new(vec![Value::Int(7)]).encode();
        enc.push(0xAB);
        assert!(Tuple::decode(&enc).is_err());
    }

    #[test]
    fn nan_and_negative_zero_roundtrip() {
        roundtrip(&Tuple::new(vec![Value::Double(f64::NAN)]));
        roundtrip(&Tuple::new(vec![Value::Double(-0.0)]));
    }
}
