//! Slotted pages: the unit of disk transfer and buffering.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0..2    slot_count: u16
//! 2..4    free_space_offset: u16   (end of the record area, grows downward)
//! 4..6    tombstone_count: u16     (deleted directory entries awaiting reuse)
//! 6..8    reserved
//! 8..16   page_lsn: u64            (LSN of the last logged mutation)
//! 16..    slot directory: slot_count entries of (offset: u16, len: u16)
//! ...     free space
//! ...     record data (packed from the end of the page toward the front)
//! ```
//!
//! A slot with `offset == TOMBSTONE` is deleted; its record space is
//! reclaimed by [`Page::compact`] and its directory entry is reused by a
//! later [`Page::insert`]. RIDs are stable for the lifetime of a *version*:
//! once a slot is tombstoned (physical delete, rollback, vacuum) its RID may
//! come back holding an unrelated tuple, which is why stale RID holders
//! (index postings collected before a reclaim) must re-verify key and
//! visibility on dereference (`Table::resolve_posting`).
//!
//! `page_lsn` records the WAL position of the last logged mutation to this
//! page. It travels with the page to disk, so ARIES redo can skip records a
//! flushed page already reflects, and the buffer pool flushes the log up to
//! it before eviction (WAL-before-data).

use crate::error::{Result, StorageError};

/// Page size in bytes. 8 KiB, the classic DB page size.
pub const PAGE_SIZE: usize = 8192;
const HEADER: usize = 16;
const SLOT_ENTRY: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Size of the torn-page trailer reserved at the end of every page:
/// an LSN echo (8 bytes) followed by a CRC32 (4 bytes) over everything
/// before the checksum field. The record area packs down to
/// `PAGE_SIZE - PAGE_TRAILER`, so the trailer is never clobbered by data.
pub const PAGE_TRAILER: usize = 12;
const TRAILER_LSN: usize = PAGE_SIZE - PAGE_TRAILER;
const TRAILER_CRC: usize = PAGE_SIZE - 4;

/// Stamp the trailer of a raw page image: echo the page's header LSN and
/// write the CRC32 of everything before the checksum field. Called by the
/// file-backed [`crate::disk::DiskManager`] on every write-back.
pub fn stamp_trailer(buf: &mut [u8; PAGE_SIZE]) {
    let lsn = buf[8..16].to_vec();
    buf[TRAILER_LSN..TRAILER_LSN + 8].copy_from_slice(&lsn);
    let crc = crate::codec::crc32(&buf[..TRAILER_CRC]);
    buf[TRAILER_CRC..].copy_from_slice(&crc.to_le_bytes());
}

/// Verify the trailer of a raw page image. An all-zero image is accepted:
/// it is a freshly allocated page that was extended (`set_len`) but never
/// written back, which is a legitimate old-image state.
pub fn trailer_matches(buf: &[u8; PAGE_SIZE]) -> bool {
    let stored = u32::from_le_bytes([
        buf[TRAILER_CRC],
        buf[TRAILER_CRC + 1],
        buf[TRAILER_CRC + 2],
        buf[TRAILER_CRC + 3],
    ]);
    if crate::codec::crc32(&buf[..TRAILER_CRC]) == stored
        && buf[TRAILER_LSN..TRAILER_LSN + 8] == buf[8..16]
    {
        return true;
    }
    buf.iter().all(|&b| b == 0)
}

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_free_offset((PAGE_SIZE - PAGE_TRAILER) as u16);
        p
    }

    /// Wrap raw bytes read from disk.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt("page has wrong size"));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_offset(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_free_offset(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    /// LSN of the last logged mutation to this page (0 = never logged).
    pub fn lsn(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[8..16]);
        u64::from_le_bytes(b)
    }

    /// Stamp the last-mutation LSN (called with the WAL append offset).
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[8..16].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of tombstoned directory entries (reusable by `insert`).
    fn tombstones(&self) -> u16 {
        self.read_u16(4)
    }

    fn set_tombstones(&mut self, v: u16) {
        self.write_u16(4, v);
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let at = HEADER + idx as usize * SLOT_ENTRY;
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot(&mut self, idx: u16, offset: u16, len: u16) {
        let at = HEADER + idx as usize * SLOT_ENTRY;
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Bytes available for a new record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT_ENTRY;
        (self.free_offset() as usize).saturating_sub(dir_end)
    }

    /// Maximum record payload a fresh page can hold.
    pub fn max_record_size() -> usize {
        PAGE_SIZE - PAGE_TRAILER - HEADER - SLOT_ENTRY
    }

    /// Can a record of `len` bytes be inserted without compaction?
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_ENTRY
    }

    /// Count of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        (0..self.slot_count())
            .filter(|&i| self.slot(i).0 != TOMBSTONE)
            .count()
    }

    /// The lowest tombstoned slot, if any (candidate for directory reuse).
    /// The tombstone counter gates the directory scan, so append-mostly
    /// pages (no deletes yet) pay nothing on the insert hot path.
    fn free_slot(&self) -> Option<u16> {
        if self.tombstones() == 0 {
            return None;
        }
        (0..self.slot_count()).find(|&i| self.slot(i).0 == TOMBSTONE)
    }

    /// Dead bytes in the record area: space held by deleted or superseded
    /// record images that only [`Page::compact`] can reclaim. (Tombstoned
    /// directory *entries* are not counted — they are reusable as-is.)
    pub fn dead_space(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .filter_map(|i| {
                let (off, len) = self.slot(i);
                (off != TOMBSTONE).then_some(len as usize)
            })
            .sum();
        (PAGE_SIZE - PAGE_TRAILER - self.free_offset() as usize).saturating_sub(live)
    }

    /// Insert a record, returning its slot number. Reuses the lowest
    /// tombstoned directory slot when one exists (keeping the directory —
    /// and with it long-lived pages under churn — bounded); otherwise
    /// appends a fresh slot entry.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > Self::max_record_size() {
            return Err(StorageError::TupleTooLarge(record.len()));
        }
        let reuse = self.free_slot();
        // A reused slot needs no new directory entry, only record space.
        let need = record.len() + if reuse.is_some() { 0 } else { SLOT_ENTRY };
        if self.free_space() < need {
            return Err(StorageError::TupleTooLarge(record.len()));
        }
        let new_free = self.free_offset() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_offset(new_free as u16);
        let slot = match reuse {
            Some(slot) => {
                self.set_tombstones(self.tombstones() - 1);
                slot
            }
            None => {
                let slot = self.slot_count();
                self.set_slot_count(slot + 1);
                slot
            }
        };
        self.set_slot(slot, new_free as u16, record.len() as u16);
        Ok(slot)
    }

    /// Read a record by slot.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Delete a record (tombstones the slot). Returns whether it was live.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, _) = self.slot(slot);
        if off == TOMBSTONE {
            return false;
        }
        self.set_slot(slot, TOMBSTONE, 0);
        self.set_tombstones(self.tombstones() + 1);
        true
    }

    /// Update a record in place if the new payload fits in the old space or
    /// in current free space (after tombstoning the old copy). Returns
    /// `true` on success; `false` means the caller must relocate the tuple.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Result<bool> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidRid { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return Err(StorageError::InvalidRid { page: 0, slot });
        }
        if record.len() <= len as usize {
            // Shrinking or same-size: overwrite in place.
            let start = off as usize;
            self.data[start..start + record.len()].copy_from_slice(record);
            self.set_slot(slot, off, record.len() as u16);
            return Ok(true);
        }
        // Try to place the longer record in free space, reusing the slot.
        if self.free_space() >= record.len() {
            let new_free = self.free_offset() as usize - record.len();
            self.data[new_free..new_free + record.len()].copy_from_slice(record);
            self.set_free_offset(new_free as u16);
            self.set_slot(slot, new_free as u16, record.len() as u16);
            return Ok(true);
        }
        // Compact and retry once: reclaims space of deleted/moved records.
        self.compact();
        let (off, len) = self.slot(slot);
        debug_assert_ne!(off, TOMBSTONE);
        if record.len() <= len as usize || self.free_space() >= record.len() {
            return self.update(slot, record);
        }
        Ok(false)
    }

    /// Install a record at an *exact* slot, regardless of the slot's current
    /// state — the redo primitive. Recovery replays `Install` log records
    /// whose slot was chosen at run time, so unlike [`Page::insert`] this
    /// does not pick a slot: it overwrites a live slot, revives a tombstoned
    /// one, and extends the directory (padding intermediate slots as
    /// tombstones) when the slot is beyond `slot_count`. Compacts when
    /// fragmented. Because redo skips records the page already reflects
    /// (`page_lsn`), replay sees exactly the historical page states, where
    /// the record fit by construction.
    pub fn install(&mut self, slot: u16, record: &[u8]) -> Result<()> {
        if record.len() > Self::max_record_size() {
            return Err(StorageError::TupleTooLarge(record.len()));
        }
        // Extend the directory up to `slot`, padding with tombstones.
        while self.slot_count() <= slot {
            if self.free_space() < SLOT_ENTRY {
                self.compact();
                if self.free_space() < SLOT_ENTRY {
                    return Err(StorageError::Corrupt("install: directory overflow"));
                }
            }
            let next = self.slot_count();
            self.set_slot(next, TOMBSTONE, 0);
            self.set_slot_count(next + 1);
            self.set_tombstones(self.tombstones() + 1);
        }
        let (off, _) = self.slot(slot);
        if off != TOMBSTONE {
            // Live slot: in-place/grow update (compacts internally).
            if self.update(slot, record)? {
                return Ok(());
            }
            return Err(StorageError::Corrupt("install: record does not fit"));
        }
        // Tombstoned slot: revive it with fresh record space.
        if self.free_space() < record.len() {
            self.compact();
            if self.free_space() < record.len() {
                return Err(StorageError::Corrupt("install: record does not fit"));
            }
        }
        let new_free = self.free_offset() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_offset(new_free as u16);
        self.set_slot(slot, new_free as u16, record.len() as u16);
        self.set_tombstones(self.tombstones() - 1);
        Ok(())
    }

    /// Reclaim dead record space by repacking live records at the page end.
    /// Slot numbers (and therefore RIDs) are preserved.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(count as usize);
        for i in 0..count {
            let (off, len) = self.slot(i);
            if off != TOMBSTONE {
                live.push((i, self.data[off as usize..(off + len) as usize].to_vec()));
            }
        }
        let mut free = PAGE_SIZE - PAGE_TRAILER;
        for (slot, rec) in live {
            free -= rec.len();
            self.data[free..free + rec.len()].copy_from_slice(&rec);
            self.set_slot(slot, free as u16, rec.len() as u16);
        }
        self.set_free_offset(free as u16);
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("live", &self.live_records())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"abc").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert!(p.get(a).is_none());
        assert_eq!(p.live_records(), 0);
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(
            n >= 70,
            "8K page should hold at least 70 x 104B records, got {n}"
        );
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(b"aaaa").unwrap();
        assert!(p.update(s, b"bb").unwrap());
        assert_eq!(p.get(s).unwrap(), b"bb");
        assert!(p.update(s, b"cccccccc").unwrap());
        assert_eq!(p.get(s).unwrap(), b"cccccccc");
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = Page::new();
        let rec = [1u8; 512];
        let mut slots = vec![];
        while p.fits(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        // Delete every other record, then compaction should allow reinsert.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        assert!(!p.fits(2048));
        p.compact();
        assert!(p.fits(2048));
        // Surviving records intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn update_triggers_compaction_when_fragmented() {
        let mut p = Page::new();
        let filler = vec![0u8; 3000];
        let a = p.insert(&filler).unwrap();
        let b = p.insert(&filler).unwrap();
        let c = p.insert(b"tiny").unwrap();
        p.delete(a);
        p.delete(b);
        // Free space is fragmented behind the live "tiny" record; growing it
        // to 6000 bytes requires compaction.
        assert!(p.update(c, &vec![9u8; 6000]).unwrap());
        assert_eq!(p.get(c).unwrap().len(), 6000);
    }

    #[test]
    fn page_roundtrips_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.get(0).unwrap(), b"persist me");
    }

    #[test]
    fn lsn_roundtrips_and_survives_serialization() {
        let mut p = Page::new();
        assert_eq!(p.lsn(), 0);
        p.insert(b"rec").unwrap();
        p.set_lsn(0xDEAD_BEEF_0042);
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.lsn(), 0xDEAD_BEEF_0042);
        assert_eq!(q.get(0).unwrap(), b"rec");
    }

    #[test]
    fn install_overwrites_revives_and_extends() {
        let mut p = Page::new();
        let a = p.insert(b"old").unwrap();
        // Overwrite a live slot (grow).
        p.install(a, b"replacement").unwrap();
        assert_eq!(p.get(a).unwrap(), b"replacement");
        // Revive a tombstoned slot.
        p.delete(a);
        p.install(a, b"revived").unwrap();
        assert_eq!(p.get(a).unwrap(), b"revived");
        // Extend the directory: slot 5 does not exist yet.
        p.install(5, b"far").unwrap();
        assert_eq!(p.get(5).unwrap(), b"far");
        assert_eq!(p.slot_count(), 6);
        // Intermediate slots padded as tombstones, reusable by insert.
        assert!(p.get(3).is_none());
        let reused = p.insert(b"fill").unwrap();
        assert!(reused < 5, "insert should reuse a padded tombstone slot");
    }

    #[test]
    fn install_compacts_fragmented_page() {
        let mut p = Page::new();
        let filler = vec![1u8; 3000];
        let a = p.insert(&filler).unwrap();
        let b = p.insert(&filler).unwrap();
        p.insert(b"keep").unwrap();
        p.delete(a);
        p.delete(b);
        // Dead space dominates; install of a large record must compact.
        p.install(a, &vec![2u8; 6000]).unwrap();
        assert_eq!(p.get(a).unwrap().len(), 6000);
        assert_eq!(p.get(2).unwrap(), b"keep");
    }

    #[test]
    fn trailer_stamp_and_verify_roundtrip() {
        let mut p = Page::new();
        p.insert(b"checksummed").unwrap();
        p.set_lsn(42);
        let mut buf = [0u8; PAGE_SIZE];
        buf.copy_from_slice(p.as_bytes());
        stamp_trailer(&mut buf);
        assert!(trailer_matches(&buf));
        // A torn write (any corrupted byte) must fail verification.
        buf[100] ^= 0xFF;
        assert!(!trailer_matches(&buf));
        buf[100] ^= 0xFF;
        assert!(trailer_matches(&buf));
        // Corrupting the trailer itself fails too.
        buf[PAGE_SIZE - 1] ^= 0x01;
        assert!(!trailer_matches(&buf));
    }

    #[test]
    fn all_zero_page_passes_trailer_check() {
        // A page extended by set_len but never written reads back zeroed;
        // that is a legitimate never-written state, not a torn page.
        let buf = [0u8; PAGE_SIZE];
        assert!(trailer_matches(&buf));
    }

    #[test]
    fn records_never_reach_the_trailer() {
        let mut p = Page::new();
        let rec = [3u8; 256];
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
        }
        p.compact();
        assert!(p.free_offset() as usize <= PAGE_SIZE - PAGE_TRAILER);
        assert_eq!(&p.as_bytes()[PAGE_SIZE - PAGE_TRAILER..], &[0u8; 12][..]);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(matches!(
            p.insert(&vec![0u8; PAGE_SIZE]),
            Err(StorageError::TupleTooLarge(_))
        ));
    }
}
