//! Heap files: unordered collections of versioned tuples addressed by
//! [`Rid`].
//!
//! A heap file owns a list of page ids plus a coarse free-space map. Every
//! stored record is a [`VersionHdr`] (the creating/deleting transaction
//! ids, see [`crate::txn`]) followed by the encoded tuple. RIDs are stable
//! for the lifetime of a version: MVCC writers never overwrite a version in
//! place — an update marks the old version dead and inserts a new one —
//! so concurrent readers at older snapshots keep resolving their RIDs.
//!
//! Reads come in two flavours: *snapshot* reads (`*_snapshot`) filter
//! versions through an explicit [`Snapshot`], and plain reads filter
//! through a fresh latest-committed snapshot (what autocommit statements
//! and maintenance code see). Physical `delete`/`update` bypass versioning
//! and are reserved for unversioned ("frozen") storage such as
//! materialized-view backing tables and rollback's undo.
//!
//! Durability: a heap created with [`HeapFile::create_logged`] appends a
//! WAL record for every page mutation *inside* the `with_page_mut` closure
//! (the frame is pinned there, so the page cannot be evicted between the
//! append and the `page_lsn` stamp), then stamps the page with the
//! record's LSN. The `redo_*` / `undo_*` methods are the recovery
//! primitives: idempotent absolute operations, LSN-guarded for redo and
//! slot-tolerant for undo.

use parking_lot::RwLock;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::catalog::TableId;
use crate::disk::PageId;
use crate::error::{Result, StorageError};
use crate::page::Page;
use crate::tuple::{Rid, Tuple};
use crate::txn::{Snapshot, TxnId, TxnManager, VersionHdr};
use crate::wal::{Wal, WalRecord};

/// One page's worth of snapshot-visible rows plus the number of tuple
/// versions the visibility check skipped.
pub type VisiblePage = (Vec<(Rid, Tuple)>, u64);

/// A heap file of encoded, versioned tuples.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    txns: Arc<TxnManager>,
    /// All pages of this heap, in allocation order.
    pages: RwLock<Vec<PageId>>,
    /// Approximate free bytes per page (parallel to `pages`).
    free: RwLock<Vec<u16>>,
    /// Identity of the owning table in WAL records.
    table_id: TableId,
    /// When set, every page mutation is logged (see module docs).
    wal: Option<Arc<Wal>>,
}

/// Encode a version header + tuple into one heap record.
fn encode_record(hdr: VersionHdr, tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(VersionHdr::SIZE + tuple.byte_size() + tuple.len() + 2);
    hdr.encode(&mut out);
    tuple.encode_into(&mut out);
    out
}

/// Decode one heap record into its header and tuple.
fn decode_record(bytes: &[u8]) -> Result<(VersionHdr, Tuple)> {
    let (hdr, rest) =
        VersionHdr::decode(bytes).ok_or(StorageError::Corrupt("truncated version header"))?;
    Ok((hdr, Tuple::decode(rest)?))
}

impl HeapFile {
    /// Create an empty heap file backed by `pool`, with visibility decided
    /// through `txns`. Mutations are not logged (volatile storage,
    /// materialized-view backing tables).
    pub fn create(pool: Arc<BufferPool>, txns: Arc<TxnManager>) -> Self {
        Self::create_logged(pool, txns, 0, None)
    }

    /// Create an empty heap file whose page mutations are logged to `wal`
    /// under `table_id` (pass `None` to keep it unlogged).
    pub fn create_logged(
        pool: Arc<BufferPool>,
        txns: Arc<TxnManager>,
        table_id: TableId,
        wal: Option<Arc<Wal>>,
    ) -> Self {
        HeapFile {
            pool,
            txns,
            pages: RwLock::new(Vec::new()),
            free: RwLock::new(Vec::new()),
            table_id,
            wal,
        }
    }

    /// Append a WAL record for a mutation of `page` and stamp the page
    /// with the record's LSN. Must be called while the page's frame lock is
    /// held (inside `with_page_mut` / `new_page` closures).
    fn log(&self, page: &mut Page, rec: WalRecord) {
        if let Some(wal) = &self.wal {
            if wal.logging() {
                let lsn = wal.append(&rec);
                page.set_lsn(lsn);
            }
        }
    }

    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    pub fn pages(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    /// The transaction manager deciding visibility for this heap.
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// Insert a frozen (always-visible) tuple, returning its new RID.
    pub fn insert(&self, tuple: &Tuple) -> Result<Rid> {
        self.insert_version(tuple, crate::txn::FROZEN)
    }

    /// Insert a tuple version created by transaction `xmin`.
    pub fn insert_version(&self, tuple: &Tuple, xmin: TxnId) -> Result<Rid> {
        let record = encode_record(VersionHdr { xmin, xmax: 0 }, tuple);
        if record.len() > Page::max_record_size() {
            return Err(StorageError::TupleTooLarge(record.len()));
        }
        // Fast path: try the last page with enough estimated space.
        let candidate = {
            let pages = self.pages.read();
            let free = self.free.read();
            free.iter()
                .enumerate()
                .rev()
                .find(|(_, f)| **f as usize >= record.len() + 8)
                .map(|(i, _)| (i, pages[i]))
        };
        if let Some((idx, pid)) = candidate {
            let slot = self.pool.with_page_mut(pid, |p| {
                let r = if p.fits(record.len()) {
                    match p.insert(&record) {
                        Ok(slot) => {
                            self.log(
                                p,
                                WalRecord::Install {
                                    table: self.table_id,
                                    rid: Rid::new(pid, slot),
                                    record: record.clone(),
                                },
                            );
                            Ok(Some(slot))
                        }
                        Err(e) => Err(e),
                    }
                } else {
                    Ok(None)
                };
                (r, p.free_space() as u16)
            })?;
            let (res, new_free) = slot;
            self.free.write()[idx] = new_free;
            if let Some(slot) = res? {
                return Ok(Rid::new(pid, slot));
            }
        }
        // Slow path: allocate a new page.
        let (pid, slot) = self.pool.new_page(|pid, p| {
            self.log(
                p,
                WalRecord::HeapPage {
                    table: self.table_id,
                    page: pid,
                },
            );
            let slot = p.insert(&record)?;
            self.log(
                p,
                WalRecord::Install {
                    table: self.table_id,
                    rid: Rid::new(pid, slot),
                    record: record.clone(),
                },
            );
            Ok::<u16, StorageError>(slot)
        })?;
        let slot = slot?;
        let free_now = self.pool.with_page(pid, |p| p.free_space() as u16)?;
        self.pages.write().push(pid);
        self.free.write().push(free_now);
        Ok(Rid::new(pid, slot))
    }

    /// Fetch the raw tuple at `rid`, whatever its version state. Callers
    /// that care about visibility use [`HeapFile::get_snapshot`].
    pub fn get(&self, rid: Rid) -> Result<Tuple> {
        Ok(self.get_versioned(rid)?.1)
    }

    /// Fetch the version header and tuple at `rid`.
    pub fn get_versioned(&self, rid: Rid) -> Result<(VersionHdr, Tuple)> {
        self.try_get_versioned(rid)?
            .ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Fetch the version header and tuple at `rid`, or `None` when the
    /// slot holds no record (e.g. a rollback physically reclaimed the
    /// version after the caller obtained the RID from an index posting).
    pub fn try_get_versioned(&self, rid: Rid) -> Result<Option<(VersionHdr, Tuple)>> {
        self.pool
            .with_page(rid.page, |p| p.get(rid.slot).map(decode_record).transpose())?
    }

    /// Fetch the tuple at `rid` if it is visible to `snap`. The visibility
    /// check runs while the page latch is held (see
    /// [`HeapFile::scan_page_snapshot`] for why that ordering matters to
    /// GC); errors if the slot holds no record at all.
    pub fn get_snapshot(&self, rid: Rid, snap: &Snapshot) -> Result<Option<Tuple>> {
        self.pool.with_page(rid.page, |p| {
            let bytes = p.get(rid.slot).ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
            let (hdr, tuple) = decode_record(bytes)?;
            Ok(if snap.sees(&hdr) { Some(tuple) } else { None })
        })?
    }

    /// Fetch the tuple at `rid` if the slot still holds a record *and* it
    /// is visible to `snap` — the stale-RID-tolerant read used to resolve
    /// index postings. Visibility is checked under the page latch.
    pub fn try_get_visible(&self, rid: Rid, snap: &Snapshot) -> Result<Option<Tuple>> {
        self.pool.with_page(rid.page, |p| match p.get(rid.slot) {
            None => Ok(None),
            Some(bytes) => {
                let (hdr, tuple) = decode_record(bytes)?;
                Ok(if snap.sees(&hdr) { Some(tuple) } else { None })
            }
        })?
    }

    /// Set the delete mark (`xmax = xid`) on the version at `rid`.
    /// First-writer-wins: fails with [`StorageError::WriteConflict`] when
    /// another transaction (committed or in flight) already marked it.
    /// Returns the tuple image for undo/delta capture.
    pub fn mark_delete(&self, rid: Rid, xid: TxnId) -> Result<Tuple> {
        self.pool.with_page_mut(rid.page, |p| {
            let bytes = p.get(rid.slot).ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
            let (hdr, tuple) = decode_record(bytes)?;
            if hdr.xmax != 0 {
                return Err(StorageError::WriteConflict {
                    table: String::new(),
                });
            }
            let record = encode_record(
                VersionHdr {
                    xmin: hdr.xmin,
                    xmax: xid,
                },
                &tuple,
            );
            // Same record size: the in-place update cannot fail to fit.
            if !p.update(rid.slot, &record)? {
                return Err(StorageError::Corrupt("same-size header update did not fit"));
            }
            self.log(
                p,
                WalRecord::Mark {
                    xid,
                    table: self.table_id,
                    rid,
                },
            );
            Ok(tuple)
        })?
    }

    /// Clear a delete mark set by `xid` (rollback). A mark set by a
    /// different transaction is left alone.
    pub fn clear_delete_mark(&self, rid: Rid, xid: TxnId) -> Result<()> {
        self.pool.with_page_mut(rid.page, |p| {
            let bytes = p.get(rid.slot).ok_or(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            })?;
            let (hdr, tuple) = decode_record(bytes)?;
            if hdr.xmax != xid {
                return Ok(());
            }
            let record = encode_record(
                VersionHdr {
                    xmin: hdr.xmin,
                    xmax: 0,
                },
                &tuple,
            );
            if !p.update(rid.slot, &record)? {
                return Err(StorageError::Corrupt("same-size header update did not fit"));
            }
            self.log(
                p,
                WalRecord::Unmark {
                    table: self.table_id,
                    rid,
                },
            );
            Ok(())
        })?
    }

    /// Physically delete a record. Returns the old tuple (for index
    /// maintenance). Reserved for frozen storage and rollback.
    pub fn delete(&self, rid: Rid) -> Result<Tuple> {
        let old = self.get(rid)?;
        let freed = self.pool.with_page_mut(rid.page, |p| {
            let ok = p.delete(rid.slot);
            if ok {
                self.log(
                    p,
                    WalRecord::Tombstone {
                        table: self.table_id,
                        rid,
                    },
                );
            }
            (ok, p.free_space() as u16)
        })?;
        let (ok, _free) = freed;
        if !ok {
            return Err(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            });
        }
        Ok(old)
    }

    /// Physically update a tuple in place when possible (preserving its
    /// version header); relocates otherwise. Reserved for frozen storage.
    ///
    /// Returns `(old_tuple, new_rid)`; `new_rid == rid` unless relocated.
    pub fn update(&self, rid: Rid, new: &Tuple) -> Result<(Tuple, Rid)> {
        let (hdr, old) = self.get_versioned(rid)?;
        let record = encode_record(hdr, new);
        let updated = self.pool.with_page_mut(rid.page, |p| {
            let updated = p.update(rid.slot, &record)?;
            if updated {
                self.log(
                    p,
                    WalRecord::Install {
                        table: self.table_id,
                        rid,
                        record: record.clone(),
                    },
                );
            }
            Ok::<bool, StorageError>(updated)
        })??;
        if updated {
            return Ok((old, rid));
        }
        // Relocate: delete here, insert elsewhere.
        self.pool.with_page_mut(rid.page, |p| {
            if p.delete(rid.slot) {
                self.log(
                    p,
                    WalRecord::Tombstone {
                        table: self.table_id,
                        rid,
                    },
                );
            }
        })?;
        let new_rid = self.insert_version(new, hdr.xmin)?;
        Ok((old, new_rid))
    }

    /// Scan every tuple visible to the latest-committed snapshot. The
    /// closure receives `(rid, tuple)` and may return `false` to stop early.
    pub fn for_each(&self, f: impl FnMut(Rid, Tuple) -> Result<bool>) -> Result<()> {
        self.for_each_snapshot(&self.txns.snapshot_latest(), f)
    }

    /// Scan every tuple visible to `snap`.
    pub fn for_each_snapshot(
        &self,
        snap: &Snapshot,
        mut f: impl FnMut(Rid, Tuple) -> Result<bool>,
    ) -> Result<()> {
        let mut idx = 0;
        while let Some((batch, _skipped)) = self.scan_page_snapshot(idx, snap)? {
            for (rid, t) in batch {
                if !f(rid, t)? {
                    return Ok(());
                }
            }
            idx += 1;
        }
        Ok(())
    }

    /// Scan every stored version, including dead and uncommitted ones
    /// (index backfill needs entries for all versions old snapshots may
    /// still read).
    pub fn for_each_version(
        &self,
        mut f: impl FnMut(Rid, VersionHdr, Tuple) -> Result<bool>,
    ) -> Result<()> {
        let pages = self.pages.read().clone();
        for pid in pages {
            let batch: Vec<(u16, VersionHdr, Tuple)> = self.pool.with_page(pid, |p| {
                p.iter()
                    .map(|(slot, rec)| decode_record(rec).map(|(h, t)| (slot, h, t)))
                    .collect::<Result<Vec<_>>>()
            })??;
            for (slot, h, t) in batch {
                if !f(Rid::new(pid, slot), h, t)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Decode the `idx`-th page's tuples that are visible to the
    /// latest-committed snapshot; see [`HeapFile::scan_page_snapshot`].
    pub fn scan_page(&self, idx: usize) -> Result<Option<Vec<(Rid, Tuple)>>> {
        Ok(self
            .scan_page_snapshot(idx, &self.txns.snapshot_latest())?
            .map(|(rows, _)| rows))
    }

    /// Decode the live tuples of the `idx`-th page of this heap (by
    /// position in the allocation-ordered page list) that are visible to
    /// `snap`, plus the number of versions the visibility check skipped.
    /// Returns `None` once `idx` runs past the end. This is the streaming
    /// unit batch scans pull on demand, so a scan holds at most one page's
    /// tuples at a time.
    ///
    /// Visibility is checked *while the page latch is held*. That ordering
    /// is what makes GC freezing sound: vacuum rewrites a header to the
    /// frozen sentinel under the page's write latch and only prunes the
    /// commit stamp afterwards, so a reader that saw the pre-freeze header
    /// is guaranteed to still find the stamp — a header copy checked after
    /// releasing the latch could race the freeze-then-prune sequence and
    /// wrongly read "uncommitted". Stamp-table lookups nest a read lock
    /// inside the page latch; nothing takes page latches while holding the
    /// stamp lock, so the order is deadlock-free.
    pub fn scan_page_snapshot(&self, idx: usize, snap: &Snapshot) -> Result<Option<VisiblePage>> {
        let pid = match self.pages.read().get(idx) {
            Some(pid) => *pid,
            None => return Ok(None),
        };
        let page: VisiblePage = self.pool.with_page(pid, |p| {
            let mut rows = Vec::with_capacity(p.live_records());
            let mut skipped = 0u64;
            for (slot, rec) in p.iter() {
                let (hdr, t) = decode_record(rec)?;
                if snap.sees(&hdr) {
                    rows.push((Rid::new(pid, slot), t));
                } else {
                    skipped += 1;
                }
            }
            Ok::<VisiblePage, StorageError>((rows, skipped))
        })??;
        Ok(Some(page))
    }

    /// Collect every visible `(rid, tuple)` pair (latest-committed
    /// snapshot). Convenience for small scans.
    pub fn scan_all(&self) -> Result<Vec<(Rid, Tuple)>> {
        let mut out = Vec::new();
        self.for_each(|rid, t| {
            out.push((rid, t));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of visible tuples under the latest-committed snapshot (full
    /// scan; used by ANALYZE).
    pub fn count(&self) -> Result<usize> {
        self.count_snapshot(&self.txns.snapshot_latest())
    }

    /// Number of tuples visible to `snap`.
    pub fn count_snapshot(&self, snap: &Snapshot) -> Result<usize> {
        let mut n = 0;
        self.for_each_snapshot(snap, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    // -- recovery primitives ------------------------------------------------
    //
    // Redo ops are absolute and LSN-guarded: a page whose `page_lsn` is at
    // or past the record's LSN already reflects it (it was flushed later)
    // and is skipped; otherwise the page is exactly at the historical state
    // the record was logged against, so the operation applies verbatim.
    // Undo ops are slot-tolerant (a runtime rollback may have already
    // reverted the op before the crash) and never LSN-guarded — they run
    // after redo, against the reconstructed end-of-log state.

    /// Restore the page list (and a fresh free-space map) from a checkpoint
    /// snapshot. The free estimates are refreshed by
    /// [`HeapFile::refresh_free_map`] once redo completes.
    pub fn restore_pages(&self, pages: Vec<PageId>) {
        let mut free = self.free.write();
        let mut my_pages = self.pages.write();
        free.clear();
        free.resize(pages.len(), 0);
        *my_pages = pages;
    }

    /// Redo of [`WalRecord::HeapPage`]: make sure `pid` is allocated on
    /// disk and part of this heap's extent. Idempotent.
    pub fn redo_add_page(&self, pid: PageId) -> Result<()> {
        self.pool.disk().ensure_allocated(pid)?;
        let mut pages = self.pages.write();
        if !pages.contains(&pid) {
            pages.push(pid);
            self.free.write().push(0);
        }
        Ok(())
    }

    /// Apply `f` to the page at `rid` unless the page already reflects the
    /// record (`page_lsn >= lsn`); stamps the page on application. Returns
    /// whether the record was applied.
    fn redo_page(
        &self,
        pid: PageId,
        lsn: u64,
        f: impl FnOnce(&mut Page) -> Result<()>,
    ) -> Result<bool> {
        self.pool.with_page_mut(pid, |p| {
            if p.lsn() >= lsn {
                return Ok(false);
            }
            f(p)?;
            p.set_lsn(lsn);
            Ok(true)
        })?
    }

    /// Redo of [`WalRecord::Install`].
    pub fn redo_install(&self, rid: Rid, record: &[u8], lsn: u64) -> Result<bool> {
        self.redo_page(rid.page, lsn, |p| p.install(rid.slot, record))
    }

    /// Redo of [`WalRecord::Mark`] (absolute: sets `xmax = xid`).
    pub fn redo_mark(&self, rid: Rid, xid: TxnId, lsn: u64) -> Result<bool> {
        self.redo_set_hdr(rid, lsn, |hdr| hdr.xmax = xid)
    }

    /// Redo of [`WalRecord::Unmark`] (absolute: clears `xmax`).
    pub fn redo_unmark(&self, rid: Rid, lsn: u64) -> Result<bool> {
        self.redo_set_hdr(rid, lsn, |hdr| hdr.xmax = 0)
    }

    /// Redo of [`WalRecord::Freeze`] (absolute: `xmin = FROZEN`).
    pub fn redo_freeze(&self, rid: Rid, lsn: u64) -> Result<bool> {
        self.redo_set_hdr(rid, lsn, |hdr| hdr.xmin = crate::txn::FROZEN)
    }

    fn redo_set_hdr(&self, rid: Rid, lsn: u64, f: impl FnOnce(&mut VersionHdr)) -> Result<bool> {
        self.redo_page(rid.page, lsn, |p| {
            let Some(bytes) = p.get(rid.slot) else {
                // The slot is gone (e.g. a later vacuum reclaim was flushed
                // but this page image predates the version): nothing to do.
                return Ok(());
            };
            let (mut hdr, tuple) = decode_record(bytes)?;
            f(&mut hdr);
            let record = encode_record(hdr, &tuple);
            if !p.update(rid.slot, &record)? {
                return Err(StorageError::Corrupt("same-size redo update did not fit"));
            }
            Ok(())
        })
    }

    /// Redo of [`WalRecord::Tombstone`].
    pub fn redo_tombstone(&self, rid: Rid, lsn: u64) -> Result<bool> {
        self.redo_page(rid.page, lsn, |p| {
            p.delete(rid.slot);
            Ok(())
        })
    }

    /// Undo of a loser's [`WalRecord::Install`]: physically reclaim the
    /// version — but only if the slot still holds the loser's version
    /// (`xmin == xid`). A runtime rollback may already have tombstoned it,
    /// and a *later* insert may then have legally reused the slot for a
    /// committed row; deleting blindly would destroy that row.
    pub fn undo_install(&self, rid: Rid, xid: TxnId) -> Result<()> {
        self.pool.with_page_mut(rid.page, |p| {
            let Some(bytes) = p.get(rid.slot) else {
                return Ok(());
            };
            let (hdr, _) = decode_record(bytes)?;
            if hdr.xmin == xid {
                p.delete(rid.slot);
            }
            Ok(())
        })?
    }

    /// Undo of a loser's [`WalRecord::Mark`]: clear the delete mark if it
    /// is still the loser's. Tolerates missing slots and foreign marks.
    pub fn undo_mark(&self, rid: Rid, xid: TxnId) -> Result<()> {
        self.pool.with_page_mut(rid.page, |p| {
            let Some(bytes) = p.get(rid.slot) else {
                return Ok(());
            };
            let (hdr, tuple) = decode_record(bytes)?;
            if hdr.xmax != xid {
                return Ok(());
            }
            let record = encode_record(
                VersionHdr {
                    xmin: hdr.xmin,
                    xmax: 0,
                },
                &tuple,
            );
            if !p.update(rid.slot, &record)? {
                return Err(StorageError::Corrupt("same-size undo update did not fit"));
            }
            Ok(())
        })?
    }

    /// Recompute the free-space map from the pages themselves (after redo
    /// and undo rewrote them).
    pub fn refresh_free_map(&self) -> Result<()> {
        let pages = self.pages.read().clone();
        let mut free = Vec::with_capacity(pages.len());
        for pid in pages {
            free.push(self.pool.with_page(pid, |p| p.free_space() as u16)?);
        }
        *self.free.write() = free;
        Ok(())
    }

    // -- garbage collection -------------------------------------------------

    /// One vacuum pass over this heap against the GC low-watermark (see
    /// [`crate::vacuum`]). Reclaims every version whose deleter committed
    /// at or below `watermark` (tombstoning its slot for reuse and
    /// compacting the page), freezes surviving versions whose creator
    /// committed at or below it, and refreshes the free-space map so the
    /// reclaimed space is found by later inserts.
    ///
    /// The caller must hold the owning table's write latch: the pass reads
    /// headers, classifies them against the commit-stamp table outside the
    /// page locks, then applies — which is only race-free because writers
    /// (the only mutators of headers) are excluded for the duration.
    /// Readers are unaffected: they either scan pages (one page lock at a
    /// time, reclaimed versions were invisible to every live snapshot by
    /// the watermark's definition) or re-verify stale index postings via
    /// `resolve_posting`.
    pub fn vacuum(&self, watermark: u64) -> Result<HeapVacuum> {
        let mut out = HeapVacuum::default();
        let pages = self.pages.read().clone();
        for (idx, &pid) in pages.iter().enumerate() {
            // `dead_bytes` covers space reclaimable only by compaction that
            // no version classification will find: records tombstoned by
            // rollback or physical deletes, and slack from shrunken
            // in-place updates.
            let (records, dead_bytes): (Vec<(u16, VersionHdr, Tuple)>, usize) =
                self.pool.with_page(pid, |p| {
                    let records = p
                        .iter()
                        .map(|(slot, rec)| decode_record(rec).map(|(h, t)| (slot, h, t)))
                        .collect::<Result<Vec<_>>>()?;
                    Ok::<_, StorageError>((records, p.dead_space()))
                })??;

            // Classify outside the page lock (stamp lookups never nest
            // inside a page latch).
            let mut remove: Vec<(u16, Tuple)> = Vec::new();
            let mut freeze: Vec<(u16, VersionHdr, Tuple)> = Vec::new();
            for (slot, hdr, tuple) in records {
                let ended = hdr.xmax != 0
                    && self
                        .txns
                        .commit_stamp(hdr.xmax)
                        .map(|d| d <= watermark)
                        .unwrap_or(false);
                if ended {
                    // Dead to every live and future snapshot: reclaim.
                    remove.push((slot, tuple));
                    continue;
                }
                let xmin_frozen = match hdr.xmin {
                    crate::txn::FROZEN => true,
                    x => match self.txns.commit_stamp(x) {
                        Some(c) if c <= watermark => {
                            freeze.push((slot, hdr, tuple));
                            true
                        }
                        // Uncommitted, or committed above the watermark:
                        // some snapshot may still need the stamp lookup.
                        _ => false,
                    },
                };
                if !xmin_frozen || hdr.xmax != 0 {
                    out.remaining_unfrozen += 1;
                }
                if hdr.xmax != 0 {
                    out.remaining_dead += 1;
                }
            }

            let compact = !remove.is_empty() || dead_bytes > 0;
            if !compact && freeze.is_empty() {
                continue;
            }
            out.frozen += freeze.len() as u64;
            let new_free = self.pool.with_page_mut(pid, |p| {
                for (slot, _) in &remove {
                    if p.delete(*slot) {
                        self.log(
                            p,
                            WalRecord::Tombstone {
                                table: self.table_id,
                                rid: Rid::new(pid, *slot),
                            },
                        );
                    }
                }
                for (slot, hdr, tuple) in &freeze {
                    let rec = encode_record(
                        VersionHdr {
                            xmin: crate::txn::FROZEN,
                            xmax: hdr.xmax,
                        },
                        tuple,
                    );
                    // Same record size (the header is fixed-width): the
                    // in-place rewrite cannot fail to fit.
                    if !p.update(*slot, &rec)? {
                        return Err(StorageError::Corrupt("same-size freeze did not fit"));
                    }
                    self.log(
                        p,
                        WalRecord::Freeze {
                            table: self.table_id,
                            rid: Rid::new(pid, *slot),
                        },
                    );
                }
                if compact {
                    p.compact();
                }
                Ok(p.free_space() as u16)
            })??;
            if compact {
                out.pages_compacted += 1;
                self.free.write()[idx] = new_free;
            }
            out.removed
                .extend(remove.into_iter().map(|(slot, t)| (Rid::new(pid, slot), t)));
        }
        Ok(out)
    }

    /// Count every stored version by state (diagnostic full scan).
    pub fn version_census(&self) -> Result<crate::vacuum::VersionCensus> {
        let mut census = crate::vacuum::VersionCensus::default();
        self.for_each_version(|_, hdr, _| {
            census.total_versions += 1;
            if hdr.xmax == 0 {
                census.live += 1;
                if hdr.xmin == crate::txn::FROZEN {
                    census.frozen += 1;
                }
            } else {
                census.dead += 1;
            }
            Ok(true)
        })?;
        Ok(census)
    }
}

/// Outcome of one [`HeapFile::vacuum`] pass.
#[derive(Debug, Default)]
pub struct HeapVacuum {
    /// The reclaimed versions, for index-posting removal by the caller.
    pub removed: Vec<(Rid, Tuple)>,
    /// Versions whose header was rewritten to the frozen sentinel.
    pub frozen: u64,
    /// Pages compacted after reclaiming.
    pub pages_compacted: u64,
    /// Headers left that still reference a transaction id (unfrozen
    /// `xmin`, or any set `xmax`).
    pub remaining_unfrozen: u64,
    /// Versions left carrying a delete mark the pass could not reclaim.
    pub remaining_dead: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::value::Value;

    fn heap() -> HeapFile {
        let disk = Arc::new(DiskManager::new());
        HeapFile::create(
            Arc::new(BufferPool::new(disk, 8)),
            Arc::new(TxnManager::new()),
        )
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("name-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(rid).unwrap(), row(1));
        let (hdr, _) = h.get_versioned(rid).unwrap();
        assert_eq!(hdr, VersionHdr::frozen());
    }

    #[test]
    fn spans_multiple_pages() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..2000 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        assert!(h.page_count() > 1, "2000 rows should span pages");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.count().unwrap(), 2000);
    }

    #[test]
    fn delete_then_get_fails() {
        let h = heap();
        let rid = h.insert(&row(5)).unwrap();
        let old = h.delete(rid).unwrap();
        assert_eq!(old, row(5));
        assert!(h.get(rid).is_err());
        assert_eq!(h.count().unwrap(), 0);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = heap();
        let rid = h.insert(&row(5)).unwrap();
        let (_, new_rid) = h.update(rid, &row(6)).unwrap();
        assert_eq!(rid, new_rid);
        assert_eq!(h.get(rid).unwrap(), row(6));
    }

    #[test]
    fn update_relocates_when_grown_past_page() {
        let h = heap();
        // Fill a page almost exactly.
        let mut rids = vec![];
        for i in 0..70 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        // Grow one tuple to 6KB: it may relocate; value must survive.
        let big = Tuple::new(vec![Value::Int(0), Value::Str("x".repeat(6000))]);
        let (_, new_rid) = h.update(rids[0], &big).unwrap();
        assert_eq!(h.get(new_rid).unwrap(), big);
    }

    #[test]
    fn scan_sees_all_live_tuples() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..100 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        h.delete(rids[10]).unwrap();
        h.delete(rids[20]).unwrap();
        let all = h.scan_all().unwrap();
        assert_eq!(all.len(), 98);
        assert!(all
            .iter()
            .all(|(rid, _)| *rid != rids[10] && *rid != rids[20]));
    }

    #[test]
    fn early_scan_termination() {
        let h = heap();
        for i in 0..50 {
            h.insert(&row(i)).unwrap();
        }
        let mut seen = 0;
        h.for_each(|_, _| {
            seen += 1;
            Ok(seen < 10)
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn scan_page_streams_page_at_a_time() {
        let h = heap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let mut total = 0;
        let mut idx = 0;
        while let Some(batch) = h.scan_page(idx).unwrap() {
            assert!(!batch.is_empty() || h.count().unwrap() == 0);
            total += batch.len();
            idx += 1;
        }
        assert_eq!(idx, h.page_count());
        assert_eq!(total, 2000);
        assert!(h.scan_page(idx).unwrap().is_none());
    }

    #[test]
    fn reuses_freed_space() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..500 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        let pages_before = h.page_count();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        // Freed slots are tombstoned; inserts go to pages with estimated
        // space (estimates only shrink), so new pages may be needed, but the
        // heap must still function.
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        assert_eq!(h.count().unwrap(), 500);
        assert!(h.page_count() >= pages_before);
    }

    #[test]
    fn uncommitted_versions_hidden_from_plain_scans() {
        let h = heap();
        h.insert(&row(1)).unwrap();
        let txn = h.txns().allocate();
        let rid = h.insert_version(&row(2), txn).unwrap();
        // Plain scan: latest-committed only.
        assert_eq!(h.count().unwrap(), 1);
        // The writer's own snapshot sees it.
        let own = h.txns().snapshot_for(txn);
        assert_eq!(h.count_snapshot(&own).unwrap(), 2);
        // Mark-delete the frozen row: hidden from the writer, visible to
        // latest until commit.
        let frozen_rid = h.scan_all().unwrap()[0].0;
        h.mark_delete(frozen_rid, txn).unwrap();
        assert_eq!(h.count_snapshot(&own).unwrap(), 1);
        assert_eq!(h.count().unwrap(), 1, "uncommitted delete invisible");
        h.txns().commit(txn);
        assert_eq!(h.count().unwrap(), 1, "now only the committed insert");
        assert_eq!(h.scan_all().unwrap()[0].1, row(2));
        let _ = rid;
    }

    #[test]
    fn mark_delete_conflicts_on_marked_row() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        let a = h.txns().allocate();
        let b = h.txns().allocate();
        h.mark_delete(rid, a).unwrap();
        assert!(matches!(
            h.mark_delete(rid, b),
            Err(StorageError::WriteConflict { .. })
        ));
        // Rollback of A clears the mark; B can then write.
        h.clear_delete_mark(rid, a).unwrap();
        h.mark_delete(rid, b).unwrap();
    }
}
