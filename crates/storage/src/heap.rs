//! Heap files: unordered collections of tuples addressed by [`Rid`].
//!
//! A heap file owns a list of page ids plus a coarse free-space map. Tuples
//! are stored encoded (see [`crate::tuple`]); RIDs stay stable across
//! in-page updates; an update that no longer fits its page relocates the
//! tuple and returns the new RID (callers — the index maintenance layer —
//! must re-point indexes, which [`crate::catalog::Catalog`] does).

use parking_lot::RwLock;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::PageId;
use crate::error::{Result, StorageError};
use crate::page::Page;
use crate::tuple::{Rid, Tuple};

/// A heap file of encoded tuples.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// All pages of this heap, in allocation order.
    pages: RwLock<Vec<PageId>>,
    /// Approximate free bytes per page (parallel to `pages`).
    free: RwLock<Vec<u16>>,
}

impl HeapFile {
    /// Create an empty heap file backed by `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: RwLock::new(Vec::new()),
            free: RwLock::new(Vec::new()),
        }
    }

    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    pub fn pages(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    /// Insert a tuple, returning its new RID.
    pub fn insert(&self, tuple: &Tuple) -> Result<Rid> {
        let record = tuple.encode();
        if record.len() > Page::max_record_size() {
            return Err(StorageError::TupleTooLarge(record.len()));
        }
        // Fast path: try the last page with enough estimated space.
        let candidate = {
            let pages = self.pages.read();
            let free = self.free.read();
            free.iter()
                .enumerate()
                .rev()
                .find(|(_, f)| **f as usize >= record.len() + 8)
                .map(|(i, _)| (i, pages[i]))
        };
        if let Some((idx, pid)) = candidate {
            let slot = self.pool.with_page_mut(pid, |p| {
                let r = if p.fits(record.len()) {
                    p.insert(&record).map(Some)
                } else {
                    Ok(None)
                };
                (r, p.free_space() as u16)
            })?;
            let (res, new_free) = slot;
            self.free.write()[idx] = new_free;
            if let Some(slot) = res? {
                return Ok(Rid::new(pid, slot));
            }
        }
        // Slow path: allocate a new page.
        let (pid, slot) = self.pool.new_page(|p| p.insert(&record))?;
        let slot = slot?;
        let free_now = self.pool.with_page(pid, |p| p.free_space() as u16)?;
        self.pages.write().push(pid);
        self.free.write().push(free_now);
        Ok(Rid::new(pid, slot))
    }

    /// Fetch a tuple by RID.
    pub fn get(&self, rid: Rid) -> Result<Tuple> {
        self.pool.with_page(rid.page, |p| {
            p.get(rid.slot)
                .map(Tuple::decode)
                .ok_or(StorageError::InvalidRid {
                    page: rid.page,
                    slot: rid.slot,
                })
        })??
    }

    /// Delete a tuple. Returns the old tuple (for undo logging / index
    /// maintenance).
    pub fn delete(&self, rid: Rid) -> Result<Tuple> {
        let old = self.get(rid)?;
        let freed = self.pool.with_page_mut(rid.page, |p| {
            let ok = p.delete(rid.slot);
            (ok, p.free_space() as u16)
        })?;
        let (ok, _free) = freed;
        if !ok {
            return Err(StorageError::InvalidRid {
                page: rid.page,
                slot: rid.slot,
            });
        }
        Ok(old)
    }

    /// Update a tuple in place when possible; relocates otherwise.
    ///
    /// Returns `(old_tuple, new_rid)`; `new_rid == rid` unless relocated.
    pub fn update(&self, rid: Rid, new: &Tuple) -> Result<(Tuple, Rid)> {
        let old = self.get(rid)?;
        let record = new.encode();
        let updated = self
            .pool
            .with_page_mut(rid.page, |p| p.update(rid.slot, &record))??;
        if updated {
            return Ok((old, rid));
        }
        // Relocate: delete here, insert elsewhere.
        self.pool.with_page_mut(rid.page, |p| p.delete(rid.slot))?;
        let new_rid = self.insert(new)?;
        Ok((old, new_rid))
    }

    /// Scan every live tuple. The closure receives `(rid, tuple)` and may
    /// return `false` to stop early.
    pub fn for_each(&self, mut f: impl FnMut(Rid, Tuple) -> Result<bool>) -> Result<()> {
        let pages = self.pages.read().clone();
        for pid in pages {
            // Decode the page's tuples while pinned, then release.
            let batch: Vec<(u16, Tuple)> = self.pool.with_page(pid, |p| {
                p.iter()
                    .map(|(slot, rec)| Tuple::decode(rec).map(|t| (slot, t)))
                    .collect::<Result<Vec<_>>>()
            })??;
            for (slot, t) in batch {
                if !f(Rid::new(pid, slot), t)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Decode the live tuples of the `idx`-th page of this heap (by
    /// position in the allocation-ordered page list). Returns `None` once
    /// `idx` runs past the end. This is the streaming unit batch scans pull
    /// on demand, so a scan holds at most one page's tuples at a time.
    pub fn scan_page(&self, idx: usize) -> Result<Option<Vec<(Rid, Tuple)>>> {
        let pid = match self.pages.read().get(idx) {
            Some(pid) => *pid,
            None => return Ok(None),
        };
        let batch: Vec<(Rid, Tuple)> = self.pool.with_page(pid, |p| {
            p.iter()
                .map(|(slot, rec)| Tuple::decode(rec).map(|t| (Rid::new(pid, slot), t)))
                .collect::<Result<Vec<_>>>()
        })??;
        Ok(Some(batch))
    }

    /// Collect every live `(rid, tuple)` pair. Convenience for small scans.
    pub fn scan_all(&self) -> Result<Vec<(Rid, Tuple)>> {
        let mut out = Vec::new();
        self.for_each(|rid, t| {
            out.push((rid, t));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of live tuples (full scan; used by ANALYZE).
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        let pages = self.pages.read().clone();
        for pid in pages {
            n += self.pool.with_page(pid, |p| p.live_records())?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::value::Value;

    fn heap() -> HeapFile {
        let disk = Arc::new(DiskManager::new());
        HeapFile::create(Arc::new(BufferPool::new(disk, 8)))
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("name-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(rid).unwrap(), row(1));
    }

    #[test]
    fn spans_multiple_pages() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..2000 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        assert!(h.page_count() > 1, "2000 rows should span pages");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap()[0], Value::Int(i as i64));
        }
        assert_eq!(h.count().unwrap(), 2000);
    }

    #[test]
    fn delete_then_get_fails() {
        let h = heap();
        let rid = h.insert(&row(5)).unwrap();
        let old = h.delete(rid).unwrap();
        assert_eq!(old, row(5));
        assert!(h.get(rid).is_err());
        assert_eq!(h.count().unwrap(), 0);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = heap();
        let rid = h.insert(&row(5)).unwrap();
        let (_, new_rid) = h.update(rid, &row(6)).unwrap();
        assert_eq!(rid, new_rid);
        assert_eq!(h.get(rid).unwrap(), row(6));
    }

    #[test]
    fn update_relocates_when_grown_past_page() {
        let h = heap();
        // Fill a page almost exactly.
        let mut rids = vec![];
        for i in 0..70 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        // Grow one tuple to 6KB: it may relocate; value must survive.
        let big = Tuple::new(vec![Value::Int(0), Value::Str("x".repeat(6000))]);
        let (_, new_rid) = h.update(rids[0], &big).unwrap();
        assert_eq!(h.get(new_rid).unwrap(), big);
    }

    #[test]
    fn scan_sees_all_live_tuples() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..100 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        h.delete(rids[10]).unwrap();
        h.delete(rids[20]).unwrap();
        let all = h.scan_all().unwrap();
        assert_eq!(all.len(), 98);
        assert!(all
            .iter()
            .all(|(rid, _)| *rid != rids[10] && *rid != rids[20]));
    }

    #[test]
    fn early_scan_termination() {
        let h = heap();
        for i in 0..50 {
            h.insert(&row(i)).unwrap();
        }
        let mut seen = 0;
        h.for_each(|_, _| {
            seen += 1;
            Ok(seen < 10)
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn scan_page_streams_page_at_a_time() {
        let h = heap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let mut total = 0;
        let mut idx = 0;
        while let Some(batch) = h.scan_page(idx).unwrap() {
            assert!(!batch.is_empty() || h.count().unwrap() == 0);
            total += batch.len();
            idx += 1;
        }
        assert_eq!(idx, h.page_count());
        assert_eq!(total, 2000);
        assert!(h.scan_page(idx).unwrap().is_none());
    }

    #[test]
    fn reuses_freed_space() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..500 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        let pages_before = h.page_count();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        // Freed slots are tombstoned; inserts go to pages with estimated
        // space (estimates only shrink), so new pages may be needed, but the
        // heap must still function.
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        assert_eq!(h.count().unwrap(), 500);
        assert!(h.page_count() >= pages_before);
    }
}
