//! ARIES-style restart recovery: analysis → redo → undo.
//!
//! [`recover`] takes the records scanned from the write-ahead log at open
//! (see [`crate::wal::Wal::open`]) and reconstructs the catalog:
//!
//! 1. **Analysis** scans the *full* log (bounded, because the log is
//!    rotated at every clean open): it finds the last fuzzy checkpoint,
//!    classifies every transaction as winner (a `Commit` record or a
//!    checkpoint stamp exists) or loser, and collects each transaction's
//!    undoable page operations in log order. The scan is full rather than
//!    checkpoint-bounded because a loser may have written *before* the
//!    checkpoint — the checkpoint's `flush_all` pushed those effects to
//!    disk, so undo must know about them.
//! 2. **Restore** rebuilds the checkpoint image: transaction counters and
//!    commit stamps (merged with commits found in the log), base tables
//!    with their page extents and index definitions, and plain view
//!    definitions. Materialized views are *stashed*: their backing tables
//!    are recreated only after redo so their fresh table ids cannot
//!    collide with ids claimed by redone `CreateTable` records.
//! 3. **Redo** replays history from the checkpoint's `redo_lsn`. Page
//!    operations are LSN-guarded (a page flushed with `page_lsn ≥` the
//!    record's LSN already reflects it); DDL redo is idempotent (create
//!    skips existing names, drop skips missing ones), which is what makes
//!    the fuzzy checkpoint safe. Records for unknown table ids — unlogged
//!    materialized-view backing tables — are skipped.
//! 4. **Undo** rolls back the losers in reverse log order with tolerant
//!    physical operations: an `Install` is reclaimed only while the slot
//!    still holds the loser's version (`xmin == xid`), a `Mark` is cleared
//!    only while `xmax == xid`. Tolerance makes undo idempotent across
//!    repeated crashes during recovery and immune to slot reuse by later
//!    committed inserts.
//! 5. **Finish**: recreate materialized-view backing tables (empty; the
//!    caller REFRESHes them), rebuild every index from the recovered heap
//!    contents, refresh free-space maps, and recalibrate GC pressure
//!    counters (recovered headers may reference arbitrarily old stamps, so
//!    each table's freeze horizon restarts at zero and is re-earned by
//!    vacuum).
//!
//! WAL logging must stay off for the duration ([`recover`] turns it off);
//! the caller re-enables it after writing a fresh post-recovery checkpoint.

use std::collections::{HashMap, HashSet};

use crate::catalog::{Catalog, ViewKind};
use crate::error::Result;
use crate::tuple::Rid;
use crate::txn::{TxnId, VersionHdr, FROZEN};
use crate::wal::{CheckpointSnap, TxnSnap, WalRecord};

/// What recovery found and did (surfaced by `Database::open`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    pub records_scanned: u64,
    pub redo_applied: u64,
    pub redo_skipped: u64,
    pub winners: u64,
    pub losers: u64,
    pub undo_applied: u64,
    /// Torn in-place pages restored from the double-write buffer before
    /// this recovery began (copied from the disk manager's open-time scan).
    pub torn_pages_repaired: u64,
    /// Stranded pages (allocated before the crash but reachable from no
    /// heap extent) returned to the disk's free list.
    pub pages_reclaimed: u64,
}

/// One undoable operation attributed to a transaction during analysis.
enum LoserOp {
    Install { table: u32, rid: Rid },
    Mark { table: u32, rid: Rid },
}

/// Replay `records` (the scanned log, in order) into `catalog`.
pub fn recover(catalog: &Catalog, records: Vec<(u64, WalRecord)>) -> Result<RecoveryReport> {
    if let Some(wal) = catalog.wal() {
        wal.set_logging(false);
    }
    let mut report = RecoveryReport {
        records_scanned: records.len() as u64,
        ..RecoveryReport::default()
    };

    // -- 1. analysis ---------------------------------------------------------
    let mut checkpoint: Option<CheckpointSnap> = None;
    let mut committed: HashMap<TxnId, u64> = HashMap::new();
    let mut ops: Vec<(TxnId, LoserOp)> = Vec::new();
    let mut max_txn: TxnId = 0;
    for (_, rec) in &records {
        match rec {
            WalRecord::Checkpoint(snap) => checkpoint = Some((**snap).clone()),
            WalRecord::Commit { xid, stamp } => {
                committed.insert(*xid, *stamp);
                max_txn = max_txn.max(*xid);
            }
            WalRecord::Abort { xid } => max_txn = max_txn.max(*xid),
            WalRecord::Install { table, rid, record } => {
                // The writer's identity rides in the version header the
                // record installs.
                if let Some((hdr, _)) = VersionHdr::decode(record) {
                    max_txn = max_txn.max(hdr.xmin);
                    if hdr.xmin != FROZEN {
                        ops.push((
                            hdr.xmin,
                            LoserOp::Install {
                                table: *table,
                                rid: *rid,
                            },
                        ));
                    }
                }
            }
            WalRecord::Mark { xid, table, rid } => {
                max_txn = max_txn.max(*xid);
                if *xid != FROZEN {
                    ops.push((
                        *xid,
                        LoserOp::Mark {
                            table: *table,
                            rid: *rid,
                        },
                    ));
                }
            }
            _ => {}
        }
    }
    let snap = checkpoint.unwrap_or_default();
    for (xid, stamp) in &snap.txn.stamps {
        committed.entry(*xid).or_insert(*stamp);
        max_txn = max_txn.max(*xid);
    }
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut losers: HashSet<TxnId> = HashSet::new();
    for (xid, _) in &ops {
        if committed.contains_key(xid) {
            winners.insert(*xid);
        } else {
            losers.insert(*xid);
        }
    }
    report.winners = winners.len() as u64;
    report.losers = losers.len() as u64;

    // -- 2. restore the checkpoint image ------------------------------------
    let max_stamp = committed.values().copied().max().unwrap_or(0);
    catalog.txns().restore(&TxnSnap {
        next_txn: snap.txn.next_txn.max(max_txn + 1),
        commit_seq: snap.txn.commit_seq.max(max_stamp),
        stamps: committed.into_iter().collect(),
    });
    catalog.set_next_table_id(snap.next_table_id);
    // Materialized views wait until after redo (fresh backing-table ids
    // must not collide with redone CreateTable ids); keep log order via a
    // name-keyed stash.
    let mut matviews: HashMap<String, crate::wal::ViewSnap> = HashMap::new();
    for table in snap.tables {
        catalog.restore_table(table);
    }
    for view in snap.views {
        if view.materialized {
            matviews.insert(view.name.to_ascii_uppercase(), view);
        } else {
            catalog.redo_register_view(&view);
        }
    }

    // -- 3. redo from the checkpoint's redo point ---------------------------
    for (lsn, rec) in &records {
        if *lsn <= snap.redo_lsn {
            continue;
        }
        let applied = match rec {
            WalRecord::Install { table, rid, record } => match catalog.table_by_id(*table) {
                Some(t) => t.heap().redo_install(*rid, record, *lsn)?,
                None => false,
            },
            WalRecord::Mark { xid, table, rid } => match catalog.table_by_id(*table) {
                Some(t) => t.heap().redo_mark(*rid, *xid, *lsn)?,
                None => false,
            },
            WalRecord::Unmark { table, rid } => match catalog.table_by_id(*table) {
                Some(t) => t.heap().redo_unmark(*rid, *lsn)?,
                None => false,
            },
            WalRecord::Freeze { table, rid } => match catalog.table_by_id(*table) {
                Some(t) => t.heap().redo_freeze(*rid, *lsn)?,
                None => false,
            },
            WalRecord::Tombstone { table, rid } => match catalog.table_by_id(*table) {
                Some(t) => t.heap().redo_tombstone(*rid, *lsn)?,
                None => false,
            },
            WalRecord::HeapPage { table, page } => match catalog.table_by_id(*table) {
                Some(t) => {
                    t.heap().redo_add_page(*page)?;
                    true
                }
                None => false,
            },
            WalRecord::CreateTable { id, name, schema } => {
                catalog.redo_create_table(*id, name, schema.clone());
                true
            }
            WalRecord::DropTable { name } => {
                catalog.redo_drop_table(name);
                true
            }
            WalRecord::CreateIndex { table, index } => {
                catalog.redo_create_index(*table, index);
                true
            }
            WalRecord::CreateView(vs) => {
                if vs.materialized {
                    matviews.insert(vs.name.to_ascii_uppercase(), vs.clone());
                } else {
                    catalog.redo_register_view(vs);
                }
                true
            }
            WalRecord::DropView { name } => {
                catalog.redo_drop_view(name);
                matviews.remove(&name.to_ascii_uppercase());
                true
            }
            WalRecord::Commit { .. } | WalRecord::Abort { .. } | WalRecord::Checkpoint(_) => {
                continue;
            }
        };
        if applied {
            report.redo_applied += 1;
        } else {
            report.redo_skipped += 1;
        }
    }

    // -- 4. undo the losers, newest first -----------------------------------
    for (xid, op) in ops.iter().rev() {
        if !losers.contains(xid) {
            continue;
        }
        match op {
            LoserOp::Install { table, rid } => {
                if let Some(t) = catalog.table_by_id(*table) {
                    t.heap().undo_install(*rid, *xid)?;
                    report.undo_applied += 1;
                }
            }
            LoserOp::Mark { table, rid } => {
                if let Some(t) = catalog.table_by_id(*table) {
                    t.heap().undo_mark(*rid, *xid)?;
                    report.undo_applied += 1;
                }
            }
        }
    }

    // -- 5. finish: matview backing, indexes, free maps, GC calibration -----
    let mut stashed: Vec<crate::wal::ViewSnap> = matviews.into_values().collect();
    stashed.sort_by(|a, b| a.name.cmp(&b.name));
    for vs in stashed {
        catalog.create_materialized_view(
            &vs.name,
            ViewKind::from_tag(vs.kind),
            &vs.text,
            vs.streams.clone(),
        )?;
    }
    for name in catalog.table_names() {
        let t = catalog.table(&name)?;
        t.heap().refresh_free_map()?;
        t.rebuild_indexes()?;
        let census = t.version_census()?;
        // Recovered headers may reference any historical stamp: pressure
        // counters start from a census so vacuum knows to scan, and the
        // freeze horizon (zero) is re-earned by that scan.
        t.gc()
            .note_unfrozen(census.total_versions.saturating_sub(census.frozen));
        t.gc().note_dead(census.dead);
    }

    // Reconcile the page file against logged extents: a crash between a
    // heap extension and its `HeapPage` record strands the allocated page
    // forever (no table reaches it, no record replays it). Return stranded
    // pages to the disk's free list so later allocations reuse them
    // instead of growing the file. Pre-crash matview backing pages are
    // stranded by construction (backing tables are recreated empty and
    // REFRESHed by the caller), so they recycle here too.
    let disk = catalog.buffer_pool().disk();
    let used: HashSet<crate::disk::PageId> = catalog.live_page_extents().into_iter().collect();
    let stranded: Vec<crate::disk::PageId> = (0..disk.page_count())
        .filter(|id| !used.contains(id))
        .collect();
    report.pages_reclaimed = stranded.len() as u64;
    report.torn_pages_repaired = disk.stats().torn_pages_repaired;
    disk.reclaim(&stranded);

    catalog.bump_generation();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::DiskManager;
    use crate::schema::Schema;
    use crate::tempdir::TempDir;
    use crate::tuple::Tuple;
    use crate::txn::Transaction;
    use crate::value::{DataType, Value};
    use crate::wal::Wal;
    use std::path::Path;
    use std::sync::Arc;

    /// Open the full durable stack at `dir`: file-backed disk, WAL, pool
    /// with WAL-before-data, logged catalog. Returns the scanned log too.
    fn open_stack(dir: &Path) -> (Arc<Wal>, Catalog, Vec<(u64, WalRecord)>) {
        let disk = Arc::new(DiskManager::open_file(&dir.join("pages.db")).unwrap());
        let (wal, records) = Wal::open(&dir.join("wal.log"), false).unwrap();
        let wal = Arc::new(wal);
        let pool = Arc::new(BufferPool::with_wal(disk, 64, Arc::clone(&wal)));
        let catalog = Catalog::new_logged(pool, Some(Arc::clone(&wal)));
        (wal, catalog, records)
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Str)])
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("v{i}"))])
    }

    #[test]
    fn recovers_committed_dml_and_ddl_without_page_flush() {
        let dir = TempDir::new("rec-basic");
        {
            let (wal, catalog, records) = open_stack(dir.path());
            assert!(records.is_empty());
            let t = catalog.create_table("T", schema()).unwrap();
            t.create_index("t_id", vec![0], true).unwrap();
            let mut txn = Transaction::begin(catalog.txns());
            for i in 0..50 {
                let rid = t.insert_txn(&row(i), txn.id()).unwrap();
                txn.log_insert(&t, rid);
            }
            txn.commit();
            wal.flush_all().unwrap();
            // No pool.flush_all(): every row must come back via redo alone.
        }
        let (_wal, catalog, records) = open_stack(dir.path());
        let report = recover(&catalog, records).unwrap();
        assert_eq!(report.losers, 0);
        assert_eq!(report.winners, 1);
        let t = catalog.table("T").unwrap();
        assert_eq!(t.row_count().unwrap(), 50);
        assert_eq!(
            t.index_lookup("t_id", &vec![Value::Int(7)]).unwrap().len(),
            1
        );
        // The recovered heap accepts new writes.
        t.insert(&row(100)).unwrap();
        assert_eq!(t.row_count().unwrap(), 51);
    }

    #[test]
    fn undoes_loser_transactions() {
        let dir = TempDir::new("rec-loser");
        {
            let (wal, catalog, _) = open_stack(dir.path());
            let t = catalog.create_table("T", schema()).unwrap();
            let mut committed = Transaction::begin(catalog.txns());
            let keep = t.insert_txn(&row(1), committed.id()).unwrap();
            committed.log_insert(&t, keep);
            committed.commit();
            // A transaction caught mid-flight by the crash: one insert and
            // one delete mark on the committed row.
            let loser = catalog.txns().allocate();
            t.insert_txn(&row(2), loser).unwrap();
            let rid = t.scan_all().unwrap()[0].0;
            t.mark_delete_txn(rid, loser).unwrap();
            wal.flush_all().unwrap();
        }
        let (_wal, catalog, records) = open_stack(dir.path());
        let report = recover(&catalog, records).unwrap();
        assert_eq!(report.losers, 1);
        assert!(report.undo_applied >= 2);
        let t = catalog.table("T").unwrap();
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 1, "loser insert reclaimed");
        assert_eq!(rows[0].1, row(1));
        // The loser's delete mark is gone: the row is writable again.
        let b = catalog.txns().allocate();
        t.mark_delete_txn(rows[0].0, b).unwrap();
    }

    #[test]
    fn duplicate_redo_is_idempotent() {
        let dir = TempDir::new("rec-dup");
        {
            let (wal, catalog, _) = open_stack(dir.path());
            let t = catalog.create_table("T", schema()).unwrap();
            let mut txn = Transaction::begin(catalog.txns());
            for i in 0..20 {
                let rid = t.insert_txn(&row(i), txn.id()).unwrap();
                txn.log_insert(&t, rid);
            }
            txn.commit();
            wal.flush_all().unwrap();
        }
        // First recovery, with the pages flushed at the end — as a real
        // restart's final checkpoint would.
        {
            let (_wal, catalog, records) = open_stack(dir.path());
            recover(&catalog, records).unwrap();
            catalog.buffer_pool().flush_all().unwrap();
        }
        // Second recovery over the same log: every page op must skip on the
        // on-page LSN guard, and contents must be unchanged.
        let (_wal, catalog, records) = open_stack(dir.path());
        let report = recover(&catalog, records).unwrap();
        // The structural records (CreateTable, HeapPage) re-apply against
        // the fresh catalog; every tuple Install must skip on the on-page
        // LSN guard instead of double-applying.
        assert!(
            report.redo_skipped >= 20,
            "tuple installs already reflected on flushed pages: {report:?}"
        );
        let t = catalog.table("T").unwrap();
        assert_eq!(t.row_count().unwrap(), 20);
    }

    #[test]
    fn checkpoint_bounds_redo_and_preserves_matview_definitions() {
        let dir = TempDir::new("rec-ckpt");
        {
            let (wal, catalog, _) = open_stack(dir.path());
            let t = catalog.create_table("T", schema()).unwrap();
            t.insert(&row(1)).unwrap();
            catalog
                .create_materialized_view(
                    "MV",
                    ViewKind::Sql,
                    "SELECT id, v FROM T",
                    vec![("MV".to_string(), schema())],
                )
                .unwrap();
            catalog.matview("MV").unwrap().streams()[0]
                .table
                .insert(&row(1))
                .unwrap();
            // Checkpoint: capture redo point, flush pages, log the snapshot.
            let redo_lsn = wal.last_lsn();
            let (next_id, tables, views) = catalog.checkpoint_snapshot();
            catalog.buffer_pool().flush_all().unwrap();
            wal.append_checkpoint(CheckpointSnap {
                redo_lsn,
                next_table_id: next_id,
                txn: catalog.txns().snapshot_state(),
                tables,
                views,
            })
            .unwrap();
            // Post-checkpoint work that only redo can bring back.
            t.insert(&row(2)).unwrap();
            wal.flush_all().unwrap();
        }
        let (_wal, catalog, records) = open_stack(dir.path());
        recover(&catalog, records).unwrap();
        let t = catalog.table("T").unwrap();
        assert_eq!(t.row_count().unwrap(), 2);
        // The matview definition survives; its backing is recreated empty
        // (the database layer REFRESHes it on open).
        let def = catalog.view("MV").unwrap();
        assert!(def.materialized);
        let mv = catalog.matview("MV").unwrap();
        assert_eq!(mv.streams().len(), 1);
        assert_eq!(mv.streams()[0].table.row_count().unwrap(), 0);
    }
}
