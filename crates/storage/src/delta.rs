//! Base-table change deltas: the images DML captures for incremental
//! materialized-view maintenance.
//!
//! Every insert, delete and update performed through the DML layer records
//! the affected tuple images here, grouped per base table. After the
//! statement completes, the collected [`DeltaBatch`] is propagated through
//! each dependent materialized view's maintenance pipeline (see the
//! `matview` module in `xnf-core`), instead of re-evaluating the view —
//! the delta-propagation contract of incremental view maintenance.

use std::collections::HashMap;

use crate::tuple::Tuple;
use crate::txn::{TxnId, FROZEN};

/// One changed row: the before/after images the maintenance layer needs.
#[derive(Debug, Clone)]
pub enum DeltaRow {
    /// A newly inserted tuple (after image only).
    Insert(Tuple),
    /// A deleted tuple (before image only).
    Delete(Tuple),
    /// An updated tuple: before and after images.
    Update { old: Tuple, new: Tuple },
}

impl DeltaRow {
    /// The before image, if the row existed before the change.
    pub fn before(&self) -> Option<&Tuple> {
        match self {
            DeltaRow::Insert(_) => None,
            DeltaRow::Delete(t) => Some(t),
            DeltaRow::Update { old, .. } => Some(old),
        }
    }

    /// The after image, if the row exists after the change.
    pub fn after(&self) -> Option<&Tuple> {
        match self {
            DeltaRow::Insert(t) => Some(t),
            DeltaRow::Delete(_) => None,
            DeltaRow::Update { new, .. } => Some(new),
        }
    }
}

/// All row images captured by one statement (or one write-back), grouped
/// per base table and tagged with the transaction that produced them.
/// Table names are stored uppercased (the catalog's normalized spelling).
///
/// Under explicit transactions every statement appends (via the
/// `record_*` methods) into the transaction's single batch, which is
/// propagated to dependent materialized views only at COMMIT —
/// maintenance never sees uncommitted deltas, and a rolled-back
/// transaction's deltas are simply dropped. [`DeltaBatch::merge`] folds
/// separately-built batches for producers that cannot share one batch.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    per_table: HashMap<String, Vec<DeltaRow>>,
    /// The transaction whose statements produced these images (`FROZEN`
    /// for autocommit work captured outside an explicit transaction).
    txn: TxnId,
}

impl DeltaBatch {
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// A batch tagged as produced by transaction `txn`.
    pub fn for_txn(txn: TxnId) -> Self {
        DeltaBatch {
            per_table: HashMap::new(),
            txn,
        }
    }

    /// The transaction this batch belongs to (`FROZEN` = autocommit).
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Fold another batch (a later statement of the same transaction) into
    /// this one, preserving per-table statement order.
    pub fn merge(&mut self, other: DeltaBatch) {
        debug_assert!(
            self.txn == FROZEN || other.txn == FROZEN || self.txn == other.txn,
            "merging delta batches of different transactions"
        );
        if self.txn == FROZEN {
            self.txn = other.txn;
        }
        for (table, rows) in other.per_table {
            self.per_table.entry(table).or_default().extend(rows);
        }
    }

    fn rows_mut(&mut self, table: &str) -> &mut Vec<DeltaRow> {
        self.per_table
            .entry(table.to_ascii_uppercase())
            .or_default()
    }

    pub fn record_insert(&mut self, table: &str, new: Tuple) {
        self.rows_mut(table).push(DeltaRow::Insert(new));
    }

    pub fn record_delete(&mut self, table: &str, old: Tuple) {
        self.rows_mut(table).push(DeltaRow::Delete(old));
    }

    pub fn record_update(&mut self, table: &str, old: Tuple, new: Tuple) {
        self.rows_mut(table).push(DeltaRow::Update { old, new });
    }

    pub fn is_empty(&self) -> bool {
        self.per_table.is_empty()
    }

    /// Rows captured for `table` (uppercase-normalized lookup).
    pub fn rows(&self, table: &str) -> &[DeltaRow] {
        self.per_table
            .get(&table.to_ascii_uppercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The (normalized) names of the tables this batch touches.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.per_table.keys().map(|s| s.as_str())
    }

    /// Does this batch touch any of the given (normalized) table names?
    pub fn touches_any<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> bool {
        tables
            .into_iter()
            .any(|t| self.per_table.contains_key(&t.to_ascii_uppercase()))
    }

    /// Total number of recorded row images across all tables.
    pub fn len(&self) -> usize {
        self.per_table.values().map(Vec::len).sum()
    }

    /// Coalesce per-statement image chains into their net per-commit
    /// effect: an insert later updated becomes one insert of the final
    /// image, chained updates fuse into one old→final update, and a row
    /// inserted (or updated) and then deleted in the same transaction
    /// cancels (or collapses to one delete of the original image).
    ///
    /// Matching is by *value*, which is exactly the granularity the
    /// maintenance layer applies deltas at (`remove_row_by_value`,
    /// image-derived root keys): in multiset-of-values algebra,
    /// `(+v) · (−v +w) = +w` regardless of which physical row carried `v`,
    /// so fusing the latest pending after-image with the next before-image
    /// preserves the net delta every strategy observes. Hot rows touched by
    /// several statements of one transaction are then re-extracted once
    /// instead of once per statement.
    pub fn coalesce(self) -> DeltaBatch {
        let mut out = DeltaBatch::for_txn(self.txn);
        for (table, rows) in self.per_table {
            if rows.len() < 2 {
                out.per_table.insert(table, rows);
                continue;
            }
            // Pending output rows (None = annihilated) plus a map from each
            // pending row's current after-image to its slot, stacked so a
            // before-image fuses with the *latest* matching after-image.
            let mut pending: Vec<Option<DeltaRow>> = Vec::with_capacity(rows.len());
            let mut by_after: HashMap<Vec<crate::value::Value>, Vec<usize>> = HashMap::new();
            for row in rows {
                let fused = row
                    .before()
                    .and_then(|b| by_after.get_mut(&b.values))
                    .and_then(Vec::pop);
                match fused {
                    Some(idx) => {
                        let prev = pending[idx].take().expect("pending slot occupied");
                        let old = match prev {
                            DeltaRow::Insert(_) => None,
                            DeltaRow::Update { old, .. } => Some(old),
                            DeltaRow::Delete(_) => unreachable!("deletes have no after-image"),
                        };
                        let next = match (old, row) {
                            (None, DeltaRow::Delete(_)) => None,
                            (None, DeltaRow::Update { new, .. }) => Some(DeltaRow::Insert(new)),
                            (Some(o), DeltaRow::Delete(_)) => Some(DeltaRow::Delete(o)),
                            (Some(o), DeltaRow::Update { new, .. }) => {
                                // A round trip back to the original image is
                                // a net no-op.
                                (o.values != new.values).then_some(DeltaRow::Update { old: o, new })
                            }
                            (_, DeltaRow::Insert(_)) => {
                                unreachable!("inserts have no before-image")
                            }
                        };
                        if let Some(n) = next {
                            if let Some(after) = n.after() {
                                by_after.entry(after.values.clone()).or_default().push(idx);
                            }
                            pending[idx] = Some(n);
                        }
                    }
                    None => {
                        if let Some(after) = row.after() {
                            by_after
                                .entry(after.values.clone())
                                .or_default()
                                .push(pending.len());
                        }
                        pending.push(Some(row));
                    }
                }
            }
            let survivors: Vec<DeltaRow> = pending.into_iter().flatten().collect();
            if !survivors.is_empty() {
                out.per_table.insert(table, survivors);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn batches_group_rows_per_table_case_insensitively() {
        let mut d = DeltaBatch::new();
        d.record_insert("emp", Tuple::new(vec![Value::Int(1)]));
        d.record_delete("EMP", Tuple::new(vec![Value::Int(2)]));
        d.record_update(
            "Dept",
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Int(4)]),
        );
        assert_eq!(d.rows("EMP").len(), 2);
        assert_eq!(d.rows("dept").len(), 1);
        assert!(d.touches_any(["DEPT"]));
        assert!(!d.touches_any(["PROJ"]));
        let old = d.rows("dept")[0].before().unwrap().values[0].clone();
        assert!(matches!(old, Value::Int(3)));
    }

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn coalesce_fuses_image_chains_to_net_effect() {
        // insert → update → update collapses to one insert of the final image.
        let mut d = DeltaBatch::for_txn(9);
        d.record_insert("emp", t(&[1, 10]));
        d.record_update("emp", t(&[1, 10]), t(&[1, 20]));
        d.record_update("emp", t(&[1, 20]), t(&[1, 30]));
        let c = d.coalesce();
        assert_eq!(c.txn(), 9);
        assert_eq!(c.rows("emp").len(), 1);
        assert!(matches!(&c.rows("emp")[0], DeltaRow::Insert(n) if n.values == t(&[1, 30]).values));

        // insert → delete annihilates; update → delete keeps the original
        // before-image; unrelated rows survive untouched.
        let mut d = DeltaBatch::new();
        d.record_insert("emp", t(&[2, 5]));
        d.record_delete("emp", t(&[2, 5]));
        d.record_update("emp", t(&[3, 7]), t(&[3, 8]));
        d.record_delete("emp", t(&[3, 8]));
        d.record_insert("emp", t(&[4, 1]));
        let c = d.coalesce();
        let rows = c.rows("emp");
        assert_eq!(rows.len(), 2);
        assert!(matches!(&rows[0], DeltaRow::Delete(o) if o.values == t(&[3, 7]).values));
        assert!(matches!(&rows[1], DeltaRow::Insert(n) if n.values == t(&[4, 1]).values));

        // a round trip back to the original image is a net no-op.
        let mut d = DeltaBatch::new();
        d.record_update("emp", t(&[5, 1]), t(&[5, 2]));
        d.record_update("emp", t(&[5, 2]), t(&[5, 1]));
        assert!(d.coalesce().is_empty());
    }

    #[test]
    fn merge_concatenates_per_table_and_adopts_txn_tag() {
        let mut a = DeltaBatch::new();
        a.record_insert("emp", Tuple::new(vec![Value::Int(1)]));
        let mut b = DeltaBatch::for_txn(7);
        b.record_insert("EMP", Tuple::new(vec![Value::Int(2)]));
        b.record_delete("DEPT", Tuple::new(vec![Value::Int(3)]));
        a.merge(b);
        assert_eq!(a.txn(), 7);
        assert_eq!(a.rows("emp").len(), 2);
        assert_eq!(a.rows("dept").len(), 1);
    }
}
