//! Runtime values and data types.
//!
//! The engine is dynamically typed at execution time (every column slot holds
//! a [`Value`]), but statically described by [`DataType`]s in the catalog.
//! Comparison follows SQL semantics except that `NULL` ordering is total
//! (NULL sorts first) so values can be used as B-tree keys; *predicate*
//! three-valued NULL semantics are enforced by the expression evaluator, not
//! here.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Result, StorageError};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// Variable-length UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Accepts any runtime value. Used for derived storage whose column
    /// types are not declared in DDL (materialized-view backing tables):
    /// the rows are produced by the executor, which is dynamically typed.
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Any => write!(f, "ANY"),
        }
    }
}

/// A single runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Double(_) => "DOUBLE",
            Value::Str(_) => "VARCHAR",
            Value::Bool(_) => "BOOLEAN",
        }
    }

    /// The static type this value belongs to, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, coercing from Double when lossless.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Double(d) if d.fract() == 0.0 => Ok(*d as i64),
            other => Err(StorageError::TypeMismatch {
                expected: "INT",
                got: other.type_name(),
            }),
        }
    }

    /// Extract a float, coercing from Int.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            other => Err(StorageError::TypeMismatch {
                expected: "DOUBLE",
                got: other.type_name(),
            }),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(StorageError::TypeMismatch {
                expected: "VARCHAR",
                got: other.type_name(),
            }),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(StorageError::TypeMismatch {
                expected: "BOOLEAN",
                got: other.type_name(),
            }),
        }
    }

    /// Check that this value may be stored in a column of type `ty`.
    ///
    /// NULL is storable in any column (nullability is checked by the catalog
    /// layer); Int is storable in a Double column (widening); `Any` columns
    /// (derived storage such as materialized-view backing tables) accept
    /// every value.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (_, DataType::Any)
                | (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Double)
                | (Value::Double(_), DataType::Double)
                | (Value::Str(_), DataType::Str)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// SQL equality with numeric coercion; returns `None` when either side is
    /// NULL (three-valued logic: the evaluator maps this to UNKNOWN).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL ordering comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total ordering used for sorting and B-tree keys.
    ///
    /// NULL < Bool < numbers < strings; Int and Double compare numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Double(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate in-memory footprint in bytes, used by the shipping
    /// simulation and the cost model.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Double that represent the same number must hash alike
            // because total_cmp treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_ne!(Value::Int(3), Value::Double(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Double(2.5),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert!(matches!(vals[1], Value::Bool(_)));
        assert_eq!(vals[2], Value::Double(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert!(matches!(vals[4], Value::Str(_)));
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Double));
        assert!(!Value::Double(1.0).conforms_to(DataType::Int));
        assert!(!Value::Str("x".into()).conforms_to(DataType::Bool));
    }

    #[test]
    fn coercing_accessors() {
        assert_eq!(Value::Double(4.0).as_int().unwrap(), 4);
        assert!(Value::Double(4.5).as_int().is_err());
        assert_eq!(Value::Int(4).as_double().unwrap(), 4.0);
        assert!(Value::Str("x".into()).as_bool().is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::Str("abc".into()).byte_size(), 7);
        assert_eq!(Value::Null.byte_size(), 1);
    }
}
