//! Buffer pool: caches disk pages in a bounded set of frames with LRU
//! replacement and write-back of dirty pages.
//!
//! The access API is closure-based (`with_page` / `with_page_mut`): a page is
//! pinned for the duration of the closure and unpinned afterwards, which makes
//! pin leaks impossible and keeps the executor free of guard lifetimes.
//!
//! Concurrency: the frame *map* (page table, pin counts, LRU metadata) is
//! sharded by page id — each shard behind its own short mutex — and page
//! *contents* are guarded by a per-frame `RwLock`. A reader resolves and
//! pins its frame under its shard's lock, then releases the shard and
//! reads the page under the frame's shared lock — so any number of
//! sessions scan pages in parallel and concurrent resolutions only collide
//! when they hash to the same shard. Pinned frames are never evicted,
//! which is what makes the resolve-then-lock handoff safe. Eviction is
//! shard-local (each shard owns `capacity / SHARDS` frames).
//!
//! Durability: when the pool carries a [`Wal`] handle, every write-back of
//! a dirty page — eviction, [`BufferPool::flush_all`], or
//! [`BufferPool::clear`] — first flushes the log up to the page's
//! `page_lsn` (**WAL-before-data**): a page image never reaches disk ahead
//! of the log records that produced it. Heap code appends those records
//! *inside* `with_page_mut` closures, while the frame is pinned — and
//! pinned frames are never evicted, so the stamp cannot race the flush.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use crate::disk::{DiskManager, PageId};
use crate::error::{Result, StorageError};
use crate::page::Page;
use crate::wal::Wal;

/// Buffer pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

/// Page contents + dirty flag, guarded by a per-frame RwLock.
struct Frame {
    page: Page,
    dirty: bool,
}

/// Map-side metadata of one frame slot.
struct Slot {
    page_id: PageId,
    frame: Arc<RwLock<Frame>>,
    pin_count: u32,
    last_used: u64,
}

struct Inner {
    slots: Vec<Slot>,
    page_table: HashMap<PageId, usize>,
    tick: u64,
    stats: BufferStats,
}

/// Maximum number of independent map shards.
const MAX_SHARDS: usize = 16;

/// A bounded page cache in front of the [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    wal: Option<Arc<Wal>>,
    capacity: usize,
    /// Per-shard frame capacity (`>= 1`).
    shard_capacity: usize,
    shards: Vec<Mutex<Inner>>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        Self::build(disk, capacity, None)
    }

    /// Create a pool that enforces WAL-before-data against `wal` on every
    /// dirty-page write-back.
    pub fn with_wal(disk: Arc<DiskManager>, capacity: usize, wal: Arc<Wal>) -> Self {
        Self::build(disk, capacity, Some(wal))
    }

    fn build(disk: Arc<DiskManager>, capacity: usize, wal: Option<Arc<Wal>>) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        // Tiny pools (tests, experiments) keep one frame per shard so the
        // total stays at the requested capacity and eviction still bites.
        // Floor division keeps the total frame count ≤ `capacity` (slight
        // undershoot when it doesn't divide evenly — never overshoot).
        let shard_count = capacity.min(MAX_SHARDS);
        BufferPool {
            disk,
            wal,
            capacity,
            shard_capacity: (capacity / shard_count).max(1),
            shards: (0..shard_count)
                .map(|_| {
                    Mutex::new(Inner {
                        slots: Vec::new(),
                        page_table: HashMap::new(),
                        tick: 0,
                        stats: BufferStats::default(),
                    })
                })
                .collect(),
        }
    }

    /// The WAL this pool enforces WAL-before-data against, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Write a dirty page back to disk, flushing the log up to the page's
    /// LSN first. Every write-back path (eviction, flush, clear) funnels
    /// through here so the WAL-before-data invariant has a single choke
    /// point.
    fn write_back(&self, id: PageId, page: &Page) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.flush_to(page.lsn())?;
            debug_assert!(
                wal.durable_lsn() >= page.lsn(),
                "WAL-before-data violated: page {id} has lsn {} but log is only \
                 durable to {}",
                page.lsn(),
                wal.durable_lsn()
            );
        }
        self.disk.write(id, page)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    fn shard(&self, id: PageId) -> &Mutex<Inner> {
        &self.shards[(id as usize) % self.shards.len()]
    }

    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.dirty_writebacks += s.dirty_writebacks;
        }
        total
    }

    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().stats = BufferStats::default();
        }
    }

    /// Resolve `id` to a pinned frame (loading from disk on a miss) and
    /// return its index + content lock.
    fn pin(&self, id: PageId) -> Result<(usize, Arc<RwLock<Frame>>)> {
        let mut inner = self.shard(id).lock();
        let idx = self.lookup_or_load(&mut inner, id)?;
        inner.slots[idx].pin_count += 1;
        Ok((idx, Arc::clone(&inner.slots[idx].frame)))
    }

    fn unpin(&self, id: PageId, idx: usize) {
        self.shard(id).lock().slots[idx].pin_count -= 1;
    }

    /// Allocate a brand-new page (on disk and in the pool) and initialize it
    /// through `init`, which receives the new page's id (so heap code can
    /// log the allocation and first insert while the frame is pinned).
    /// Returns the new page id.
    pub fn new_page<R>(&self, init: impl FnOnce(PageId, &mut Page) -> R) -> Result<(PageId, R)> {
        let id = self.disk.allocate();
        let (idx, frame) = {
            let mut inner = self.shard(id).lock();
            let idx = self.grab_frame(&mut inner, id, Page::new())?;
            inner.slots[idx].pin_count += 1;
            (idx, Arc::clone(&inner.slots[idx].frame))
        };
        let r = {
            let mut guard = frame.write();
            guard.dirty = true;
            init(id, &mut guard.page)
        };
        self.unpin(id, idx);
        Ok((id, r))
    }

    /// Run `f` with shared access to the page. Concurrent readers of the
    /// same (or different) pages proceed in parallel.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let (idx, frame) = self.pin(id)?;
        let r = {
            let guard = frame.read();
            f(&guard.page)
        };
        self.unpin(id, idx);
        Ok(r)
    }

    /// Run `f` with exclusive access to the page and mark it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let (idx, frame) = self.pin(id)?;
        let r = {
            let mut guard = frame.write();
            guard.dirty = true;
            f(&mut guard.page)
        };
        self.unpin(id, idx);
        Ok(r)
    }

    /// Write all dirty pages back to disk, one batch per shard (log-first:
    /// the WAL is flushed past the highest dirty LSN before any page
    /// touches the disk).
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.lock();
            self.flush_shard(&mut inner)?;
        }
        Ok(())
    }

    /// Flush one shard's dirty frames as a single disk batch: write guards
    /// for every dirty frame are collected first, the WAL is flushed past
    /// the highest page LSN among them, then the whole set goes through one
    /// [`DiskManager::write_batch`] — with double-write enabled that is one
    /// DW append + fsync for the shard instead of one per page. Dirty flags
    /// drop only after the batch succeeds, so a failed flush leaves every
    /// page queued for retry.
    fn flush_shard(&self, inner: &mut Inner) -> Result<()> {
        let mut guards = Vec::new();
        for slot in inner.slots.iter() {
            let frame = slot.frame.write();
            if frame.dirty {
                guards.push((slot.page_id, frame));
            }
        }
        if guards.is_empty() {
            return Ok(());
        }
        if let Some(wal) = &self.wal {
            let max_lsn = guards.iter().map(|(_, g)| g.page.lsn()).max().unwrap_or(0);
            wal.flush_to(max_lsn)?;
            debug_assert!(wal.durable_lsn() >= max_lsn, "WAL-before-data violated");
        }
        let batch: Vec<(PageId, &Page)> = guards.iter().map(|(id, g)| (*id, &g.page)).collect();
        self.disk.write_batch(&batch)?;
        drop(batch);
        let writes = guards.len() as u64;
        for (_, mut g) in guards {
            g.dirty = false;
        }
        inner.stats.dirty_writebacks += writes;
        Ok(())
    }

    /// Drop every cached page (flushing dirty ones). Used by experiments to
    /// measure cold-cache behaviour. A shard with a pinned frame (an
    /// in-flight reader holds a slot index into it) is flushed but not
    /// dropped — clearing it would invalidate the reader's unpin index.
    pub fn clear(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let any_pinned = inner.slots.iter().any(|s| s.pin_count > 0);
            self.flush_shard(&mut inner)?;
            if !any_pinned {
                inner.slots.clear();
                inner.page_table.clear();
            }
        }
        Ok(())
    }

    fn lookup_or_load(&self, inner: &mut Inner, id: PageId) -> Result<usize> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.page_table.get(&id) {
            inner.stats.hits += 1;
            inner.slots[idx].last_used = tick;
            return Ok(idx);
        }
        inner.stats.misses += 1;
        let page = self.disk.read(id)?;
        self.grab_frame(inner, id, page)
    }

    /// Find a slot for `page` (growing up to capacity, otherwise evicting
    /// the least-recently-used unpinned frame) and install it.
    fn grab_frame(&self, inner: &mut Inner, id: PageId, page: Page) -> Result<usize> {
        let capacity = self.shard_capacity;
        inner.tick += 1;
        let tick = inner.tick;
        let idx = if inner.slots.len() < capacity {
            inner.slots.push(Slot {
                page_id: id,
                frame: Arc::new(RwLock::new(Frame { page, dirty: false })),
                pin_count: 0,
                last_used: tick,
            });
            inner.slots.len() - 1
        } else {
            let victim = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.pin_count == 0)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .ok_or(StorageError::BufferPoolExhausted)?;
            {
                // Unpinned ⇒ no in-flight closure holds the frame lock.
                let old = inner.slots[victim].frame.read();
                if old.dirty {
                    self.write_back(inner.slots[victim].page_id, &old.page)?;
                    inner.stats.dirty_writebacks += 1;
                }
            }
            inner.stats.evictions += 1;
            let old_id = inner.slots[victim].page_id;
            inner.page_table.remove(&old_id);
            inner.slots[victim] = Slot {
                page_id: id,
                frame: Arc::new(RwLock::new(Frame { page, dirty: false })),
                pin_count: 0,
                last_used: tick,
            };
            victim
        };
        inner.page_table.insert(id, idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::new()), frames)
    }

    #[test]
    fn new_page_and_read_back() {
        let bp = pool(4);
        let (id, slot) = bp.new_page(|_, p| p.insert(b"x").unwrap()).unwrap();
        let data = bp.with_page(id, |p| p.get(slot).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"x");
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let bp = pool(2);
        let mut ids = vec![];
        for i in 0..4u8 {
            let (id, _) = bp.new_page(|_, p| p.insert(&[i]).unwrap()).unwrap();
            ids.push(id);
        }
        // All four pages must still be readable (older ones via disk).
        for (i, id) in ids.iter().enumerate() {
            let v = bp.with_page(*id, |p| p.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(v, vec![i as u8]);
        }
        assert!(bp.stats().evictions >= 2);
    }

    #[test]
    fn hits_and_misses_counted() {
        let bp = pool(2);
        let (id, _) = bp.new_page(|_, p| p.insert(b"a").unwrap()).unwrap();
        bp.with_page(id, |_| ()).unwrap();
        bp.with_page(id, |_| ()).unwrap();
        let s = bp.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn clear_then_reload_counts_miss() {
        let bp = pool(2);
        let (id, _) = bp.new_page(|_, p| p.insert(b"a").unwrap()).unwrap();
        bp.clear().unwrap();
        bp.with_page(id, |p| assert_eq!(p.get(0).unwrap(), b"a"))
            .unwrap();
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn parallel_readers_share_pages() {
        let bp = Arc::new(pool(8));
        let (id, _) = bp.new_page(|_, p| p.insert(b"shared").unwrap()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let bp = Arc::clone(&bp);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let v = bp.with_page(id, |p| p.get(0).unwrap().to_vec()).unwrap();
                        assert_eq!(v, b"shared");
                    }
                });
            }
        });
    }
}
