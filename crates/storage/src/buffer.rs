//! Buffer pool: caches disk pages in a bounded set of frames with LRU
//! replacement and write-back of dirty pages.
//!
//! The access API is closure-based (`with_page` / `with_page_mut`): a page is
//! pinned for the duration of the closure and unpinned afterwards, which makes
//! pin leaks impossible and keeps the executor free of guard lifetimes.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::disk::{DiskManager, PageId};
use crate::error::{Result, StorageError};
use crate::page::Page;

/// Buffer pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

struct Frame {
    page_id: PageId,
    page: Page,
    pin_count: u32,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    tick: u64,
    stats: BufferStats,
}

/// A bounded page cache in front of the [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(Inner {
                frames: Vec::new(),
                page_table: HashMap::new(),
                tick: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    /// Allocate a brand-new page (on disk and in the pool) and initialize it
    /// through `init`. Returns the new page id.
    pub fn new_page<R>(&self, init: impl FnOnce(&mut Page) -> R) -> Result<(PageId, R)> {
        let id = self.disk.allocate();
        let mut inner = self.inner.lock();
        let frame_idx = Self::grab_frame(&mut inner, &self.disk, self.capacity, id, Page::new())?;
        inner.frames[frame_idx].dirty = true;
        inner.frames[frame_idx].pin_count += 1;
        let r = init(&mut inner.frames[frame_idx].page);
        inner.frames[frame_idx].pin_count -= 1;
        Ok((id, r))
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = Self::lookup_or_load(&mut inner, &self.disk, self.capacity, id)?;
        inner.frames[idx].pin_count += 1;
        let r = f(&inner.frames[idx].page);
        inner.frames[idx].pin_count -= 1;
        Ok(r)
    }

    /// Run `f` with exclusive access to the page and mark it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = Self::lookup_or_load(&mut inner, &self.disk, self.capacity, id)?;
        inner.frames[idx].pin_count += 1;
        inner.frames[idx].dirty = true;
        let r = f(&mut inner.frames[idx].page);
        inner.frames[idx].pin_count -= 1;
        Ok(r)
    }

    /// Write all dirty pages back to disk.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut writes = 0;
        for frame in inner.frames.iter_mut() {
            if frame.dirty {
                self.disk.write(frame.page_id, &frame.page)?;
                frame.dirty = false;
                writes += 1;
            }
        }
        inner.stats.dirty_writebacks += writes;
        Ok(())
    }

    /// Drop every cached page (flushing dirty ones). Used by experiments to
    /// measure cold-cache behaviour.
    pub fn clear(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter() {
            if frame.dirty {
                self.disk.write(frame.page_id, &frame.page)?;
            }
        }
        inner.frames.clear();
        inner.page_table.clear();
        Ok(())
    }

    fn lookup_or_load(
        inner: &mut Inner,
        disk: &DiskManager,
        capacity: usize,
        id: PageId,
    ) -> Result<usize> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.page_table.get(&id) {
            inner.stats.hits += 1;
            inner.frames[idx].last_used = tick;
            return Ok(idx);
        }
        inner.stats.misses += 1;
        let page = disk.read(id)?;
        Self::grab_frame(inner, disk, capacity, id, page)
    }

    /// Find a frame for `page` (growing up to capacity, otherwise evicting
    /// the least-recently-used unpinned frame) and install it.
    fn grab_frame(
        inner: &mut Inner,
        disk: &DiskManager,
        capacity: usize,
        id: PageId,
        page: Page,
    ) -> Result<usize> {
        inner.tick += 1;
        let tick = inner.tick;
        let idx = if inner.frames.len() < capacity {
            inner.frames.push(Frame {
                page_id: id,
                page,
                pin_count: 0,
                dirty: false,
                last_used: tick,
            });
            inner.frames.len() - 1
        } else {
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pin_count == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or(StorageError::BufferPoolExhausted)?;
            let old = &mut inner.frames[victim];
            if old.dirty {
                disk.write(old.page_id, &old.page)?;
                inner.stats.dirty_writebacks += 1;
            }
            inner.stats.evictions += 1;
            let old_id = old.page_id;
            inner.page_table.remove(&old_id);
            inner.frames[victim] = Frame {
                page_id: id,
                page,
                pin_count: 0,
                dirty: false,
                last_used: tick,
            };
            victim
        };
        inner.page_table.insert(id, idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::new()), frames)
    }

    #[test]
    fn new_page_and_read_back() {
        let bp = pool(4);
        let (id, slot) = bp.new_page(|p| p.insert(b"x").unwrap()).unwrap();
        let data = bp.with_page(id, |p| p.get(slot).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"x");
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let bp = pool(2);
        let mut ids = vec![];
        for i in 0..4u8 {
            let (id, _) = bp.new_page(|p| p.insert(&[i]).unwrap()).unwrap();
            ids.push(id);
        }
        // All four pages must still be readable (older ones via disk).
        for (i, id) in ids.iter().enumerate() {
            let v = bp.with_page(*id, |p| p.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(v, vec![i as u8]);
        }
        assert!(bp.stats().evictions >= 2);
    }

    #[test]
    fn hits_and_misses_counted() {
        let bp = pool(2);
        let (id, _) = bp.new_page(|p| p.insert(b"a").unwrap()).unwrap();
        bp.with_page(id, |_| ()).unwrap();
        bp.with_page(id, |_| ()).unwrap();
        let s = bp.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn clear_then_reload_counts_miss() {
        let bp = pool(2);
        let (id, _) = bp.new_page(|p| p.insert(b"a").unwrap()).unwrap();
        bp.clear().unwrap();
        bp.with_page(id, |p| assert_eq!(p.get(0).unwrap(), b"a"))
            .unwrap();
        assert_eq!(bp.stats().misses, 1);
    }
}
