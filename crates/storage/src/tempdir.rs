//! Self-cleaning temporary directories for file-backed tests.
//!
//! Every test that opens a durable database gets its own directory under
//! the system temp root, unique per process and per call, and removed on
//! drop — so `cargo test -q` stays parallel-safe and leaves no droppings
//! in the workspace. Crash tests that must *survive* the guard (the parent
//! re-opens the child's directory) call [`TempDir::keep`].

use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory deleted when the guard drops.
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Create `<tmp>/xnf-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("xnf-{label}-{}-{n}", process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path, keep: false }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disarm cleanup: the directory outlives the guard (crash-test
    /// handoff between processes). Returns the path.
    pub fn keep(mut self) -> PathBuf {
        self.keep = true;
        self.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let p = a.path().to_path_buf();
        drop(a);
        assert!(!p.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn keep_disarms_cleanup() {
        let d = TempDir::new("keep");
        let p = d.keep();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
