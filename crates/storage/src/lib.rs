//! # xnf-storage — the storage substrate (Starburst "CORE" analog)
//!
//! This crate provides the relational storage engine underneath the XNF
//! composite-object layer, reproducing the substrate that the paper's system
//! inherits from Starburst:
//!
//! - [`value`] / [`schema`] / [`tuple`]: typed values, schemas, row codec;
//! - [`page`]: 8 KiB slotted pages;
//! - [`disk`]: a simulated disk manager with exact I/O accounting;
//! - [`buffer`]: an LRU buffer pool;
//! - [`heap`]: RID-addressed heap files;
//! - [`index`]: B+-tree secondary indexes (composite keys, range scans);
//! - [`catalog`]: tables with maintained indexes + view definitions;
//! - [`stats`]: ANALYZE-style statistics for the cost-based planner;
//! - [`txn`]: undo-log transactions.

pub mod buffer;
pub mod catalog;
pub mod disk;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod txn;
pub mod value;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::{Catalog, IndexDef, Table, TableId, ViewDef, ViewKind};
pub use disk::{DiskManager, DiskStats, PageId};
pub use error::{Result, StorageError};
pub use heap::HeapFile;
pub use index::BTreeIndex;
pub use page::{Page, PAGE_SIZE};
pub use schema::{Column, Schema};
pub use stats::{ColumnStats, StatsBuilder, TableStats};
pub use tuple::{Rid, Tuple};
pub use txn::{Transaction, TxnState};
pub use value::{DataType, Value};
