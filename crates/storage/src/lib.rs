//! # xnf-storage — the storage substrate (Starburst "CORE" analog)
//!
//! This crate provides the relational storage engine underneath the XNF
//! composite-object layer, reproducing the substrate that the paper's system
//! inherits from Starburst:
//!
//! - [`value`] / [`schema`] / [`mod@tuple`]: typed values, schemas, row codec;
//! - [`page`]: 8 KiB slotted pages carrying a `page_lsn`;
//! - [`disk`]: the page store — in-memory for experiments, file-backed for
//!   durable databases — with exact I/O accounting;
//! - [`buffer`]: a sharded LRU buffer pool enforcing WAL-before-data at
//!   eviction;
//! - [`heap`]: RID-addressed heap files;
//! - [`index`]: B+-tree secondary indexes (composite keys, range scans);
//! - [`catalog`]: tables with maintained indexes + view definitions,
//!   including materialized views' backing storage ([`MatView`]);
//! - [`delta`]: before/after row images captured by DML for incremental
//!   materialized-view maintenance, tagged per transaction;
//! - [`stats`]: ANALYZE-style statistics for the cost-based planner;
//! - [`txn`]: MVCC-lite transactions — txn ids, a global commit counter,
//!   snapshots (registered live for GC), first-writer-wins write conflicts
//!   and physical undo;
//! - [`vacuum`]: MVCC garbage collection — the live-snapshot low-watermark,
//!   dead-version reclamation, header freezing and commit-stamp pruning;
//! - [`wal`]: the write-ahead log — LSN-stamped physiological records,
//!   group commit, fuzzy checkpoints;
//! - [`recovery`]: ARIES-style restart — analysis, redo from the last
//!   checkpoint, undo of loser transactions;
//! - [`codec`] / [`tempdir`]: shared binary primitives for the durable
//!   formats, and self-cleaning directories for file-backed tests.
//!
//! The paper treats this layer as given ("transaction, recovery, and
//! storage management … totally unchanged", Sect. 6); the entry point is
//! [`Catalog`], which names tables, views and materialized-view backing
//! storage:
//!
//! ```
//! use std::sync::Arc;
//! use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema, Tuple, Value};
//!
//! let catalog = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 16)));
//! let t = catalog
//!     .create_table("EMP", Schema::from_pairs(&[("eno", DataType::Int)]))
//!     .unwrap();
//! t.create_index("emp_pk", vec![0], true).unwrap();
//! let rid = t.insert(&Tuple::new(vec![Value::Int(7)])).unwrap();
//! assert_eq!(t.index_lookup("emp_pk", &vec![Value::Int(7)]).unwrap(), vec![rid]);
//! ```

pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod delta;
pub mod disk;
pub mod error;
pub mod heap;
pub mod index;
pub mod morsel;
pub mod page;
pub mod recovery;
pub mod schema;
pub mod stats;
pub mod tempdir;
pub mod tuple;
pub mod txn;
pub mod vacuum;
pub mod value;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::{Catalog, IndexDef, MatView, MatViewStream, Table, TableId, ViewDef, ViewKind};
pub use delta::{DeltaBatch, DeltaRow};
pub use disk::{DiskManager, DiskStats, FaultPlan, PageId};
pub use error::{Result, StorageError};
pub use heap::{HeapFile, VisiblePage};
pub use index::BTreeIndex;
pub use morsel::MorselDispenser;
pub use page::{stamp_trailer, trailer_matches, Page, PAGE_SIZE, PAGE_TRAILER};
pub use recovery::{recover, RecoveryReport};
pub use schema::{Column, Schema};
pub use stats::{ColumnStats, StatsBuilder, TableStats};
pub use tempdir::TempDir;
pub use tuple::{Rid, Tuple};
pub use txn::{Snapshot, Transaction, TxnId, TxnManager, TxnState, VersionHdr, FROZEN};
pub use vacuum::{GcStats, TableVacuumReport, VacuumReport, VersionCensus};
pub use value::{DataType, Value};
pub use wal::{CheckpointSnap, IndexSnap, TableSnap, TxnSnap, ViewSnap, Wal, WalRecord, WalStats};
