//! MVCC-lite transactions: txn ids, commit stamps, snapshots and undo.
//!
//! The paper leaves "transaction, recovery, and storage management …
//! totally unchanged" (Sect. 6), but its Sect. 3 processing model is
//! explicitly multi-client: many workstations check out and write back
//! composite objects against one shared RDBMS. This module provides the
//! concurrency substrate for that model:
//!
//! - a global [`TxnManager`] allocates transaction ids and assigns
//!   monotonically increasing *commit stamps* from a global commit counter;
//! - every stored tuple version carries a [`VersionHdr`] — the id of the
//!   transaction that created it (`xmin`) and, once deleted or superseded,
//!   the id of the transaction that ended it (`xmax`);
//! - a [`Snapshot`] captured at `BEGIN` (or per statement in autocommit)
//!   decides visibility: a version is visible iff its creator committed at
//!   or before the snapshot's commit stamp (or is the reading transaction
//!   itself) and its deleter did not;
//! - writers use first-writer-wins row marking: setting `xmax` on a version
//!   that already has a non-zero `xmax` fails with
//!   [`StorageError::WriteConflict`](crate::error::StorageError::WriteConflict)
//!   instead of waiting or corrupting the row;
//! - [`Transaction`] records an undo log so `ROLLBACK` can physically remove
//!   versions the transaction created and clear the delete marks it set;
//! - every [`Snapshot`] is *registered* with the manager for its lifetime,
//!   so [`TxnManager::oldest_visible_stamp`] can establish the garbage-
//!   collection **low-watermark**: commits at or below it are visible to
//!   every live and future snapshot, making their superseded versions safe
//!   to reclaim and their stamp entries safe to drop once the versions are
//!   frozen (see [`crate::vacuum`]).
//!
//! Isolation is snapshot isolation, which matches the era's
//! workstation/server usage. Durability comes from the write-ahead log
//! (see [`crate::wal`]): a manager built with [`TxnManager::new_logged`]
//! appends the `Commit` record *inside* the stamp-table lock, so the log's
//! commit order equals the stamp order and recovery always restores a
//! prefix of it.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::catalog::Table;
use crate::error::Result;
use crate::tuple::Rid;
use crate::wal::{TxnSnap, Wal, WalRecord};

/// Transaction identifier. `FROZEN` (0) marks tuples written outside any
/// transaction (fixture loads, materialized-view backing storage): they are
/// visible to every snapshot.
pub type TxnId = u64;

/// The pseudo-transaction id of always-visible ("frozen") tuple versions.
pub const FROZEN: TxnId = 0;

/// Global transaction state shared by every table of a database: txn id
/// allocation, the commit-stamp table consulted by visibility checks, and
/// the live-snapshot registry that anchors the GC low-watermark.
///
/// Snapshot acquisition takes one short mutex (the live-snapshot registry):
/// the registry insertion and the commit-counter read happen under the same
/// lock the watermark computation uses, so a snapshot is either already
/// registered when the watermark is computed or guaranteed to observe a
/// commit counter at least as fresh — either way the watermark never
/// overtakes a snapshot that still needs old versions. The commit counter
/// itself is only advanced *after* the committing transaction's stamp is
/// published in the table, so any snapshot that observes counter `S` can
/// resolve every transaction with stamp ≤ `S`.
///
/// The stamp table is bounded by GC: [`crate::vacuum`] freezes tuple
/// versions of commits below the watermark (rewriting their headers to the
/// [`FROZEN`] sentinel) and then calls [`TxnManager::prune_stamps`], so the
/// table holds roughly the commits since the last vacuum rather than the
/// whole history. Frozen tuples (`xmin = 0`, the bulk of fixture data and
/// everything old enough to have been frozen) bypass the table entirely on
/// the visibility hot path.
pub struct TxnManager {
    next_txn: AtomicU64,
    /// Stamp of the latest fully-published commit.
    commit_seq: AtomicU64,
    /// Committed txn id → its commit stamp. Active and aborted
    /// transactions are absent (aborted ones physically undo their
    /// writes). The write lock also serializes stamp assignment.
    stamps: RwLock<HashMap<TxnId, u64>>,
    /// Live-snapshot registry: snapshot `seq` → number of live snapshots
    /// reading at it. Snapshot creation and watermark computation both run
    /// under this lock (see the struct docs for why that ordering matters);
    /// clones of a snapshot share one registration via an `Arc` guard.
    live: Mutex<BTreeMap<u64, u64>>,
    /// When set, commits append their `Commit` record here (under the
    /// stamp lock, so log order == stamp order).
    wal: Option<Arc<Wal>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    pub fn new() -> Self {
        Self::new_logged(None)
    }

    /// A manager whose commits (and aborts) are logged to `wal`.
    pub fn new_logged(wal: Option<Arc<Wal>>) -> Self {
        TxnManager {
            next_txn: AtomicU64::new(1),
            commit_seq: AtomicU64::new(0),
            stamps: RwLock::new(HashMap::new()),
            live: Mutex::new(BTreeMap::new()),
            wal,
        }
    }

    /// Allocate a fresh transaction id.
    pub fn allocate(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::AcqRel)
    }

    /// Record `txn` as committed, assigning the next commit stamp. The
    /// stamp is published in the table *before* the commit counter
    /// advances past it.
    pub fn commit(&self, txn: TxnId) -> u64 {
        self.commit_logged(txn, true)
    }

    /// [`TxnManager::commit`] with control over logging: read-only
    /// transactions pass `log = false` so they cost no log record (and no
    /// commit fsync). Logging happens inside the stamp lock: the WAL's
    /// commit order is exactly the stamp order, so recovery restores a
    /// prefix of it.
    pub fn commit_logged(&self, txn: TxnId, log: bool) -> u64 {
        let mut stamps = self.stamps.write();
        let stamp = self.commit_seq.load(Ordering::Relaxed) + 1;
        stamps.insert(txn, stamp);
        if log {
            if let Some(wal) = &self.wal {
                if wal.logging() {
                    wal.append(&WalRecord::Commit { xid: txn, stamp });
                }
            }
        }
        self.commit_seq.store(stamp, Ordering::Release);
        stamp
    }

    /// Append an `Abort` record for `txn` (informational: recovery treats
    /// every uncommitted transaction as a loser either way, and its undo
    /// ops tolerate the rollback's already-logged compensations).
    pub fn log_abort(&self, txn: TxnId) {
        if let Some(wal) = &self.wal {
            if wal.logging() {
                wal.append(&WalRecord::Abort { xid: txn });
            }
        }
    }

    /// The WAL this manager logs commits to, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Serializable state for a checkpoint.
    pub fn snapshot_state(&self) -> TxnSnap {
        let stamps = self.stamps.read();
        TxnSnap {
            next_txn: self.next_txn.load(Ordering::Acquire),
            commit_seq: self.commit_seq.load(Ordering::Acquire),
            stamps: stamps.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }

    /// Restore state at recovery (single-threaded): counters move forward
    /// only, stamp entries are merged in.
    pub fn restore(&self, snap: &TxnSnap) {
        self.next_txn.fetch_max(snap.next_txn, Ordering::AcqRel);
        self.commit_seq.fetch_max(snap.commit_seq, Ordering::AcqRel);
        let mut stamps = self.stamps.write();
        for (txn, stamp) in &snap.stamps {
            stamps.insert(*txn, *stamp);
        }
    }

    /// The commit stamp of `txn`, or `None` while it is active or aborted.
    pub fn commit_stamp(&self, txn: TxnId) -> Option<u64> {
        if txn == FROZEN {
            return Some(0);
        }
        self.stamps.read().get(&txn).copied()
    }

    /// The current commit counter (stamp of the latest committed txn).
    pub fn current_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// A snapshot of the latest committed state, owned by no transaction.
    /// This is what autocommit statements and unversioned reads use.
    pub fn snapshot_latest(self: &Arc<Self>) -> Snapshot {
        self.snapshot_for(FROZEN)
    }

    /// A snapshot of the latest committed state as seen by transaction
    /// `txn` (which additionally sees its own uncommitted writes). The
    /// snapshot is registered live until it (and all of its clones) drop.
    pub fn snapshot_for(self: &Arc<Self>, txn: TxnId) -> Snapshot {
        // Read the commit counter *inside* the registry lock: the watermark
        // computation holds the same lock, so it either sees this entry or
        // this read happens after its counter read (seq ≥ watermark).
        let seq = {
            let mut live = self.live.lock();
            let seq = self.current_seq();
            *live.entry(seq).or_insert(0) += 1;
            seq
        };
        Snapshot {
            mgr: Arc::clone(self),
            seq,
            txn,
            _live: Arc::new(LiveGuard {
                mgr: Arc::clone(self),
                seq,
            }),
        }
    }

    fn deregister(&self, seq: u64) {
        let mut live = self.live.lock();
        if let Some(n) = live.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                live.remove(&seq);
            }
        }
    }

    /// The GC **low-watermark**: the oldest commit stamp any live snapshot
    /// reads at (or the current commit counter when none are live). Every
    /// commit with stamp ≤ the watermark is visible to every live snapshot
    /// and to every snapshot created from now on, so its superseded
    /// versions are reclaimable and its surviving versions freezable.
    /// Matview maintenance uses the same watermark to prune its per-view
    /// applied-key tracker: a pre-lock precomputation always pins its
    /// snapshot, so every commit it could be stale against has a stamp
    /// above the watermark.
    pub fn oldest_visible_stamp(&self) -> u64 {
        let live = self.live.lock();
        let current = self.current_seq();
        live.keys().next().copied().unwrap_or(current).min(current)
    }

    /// Number of currently registered live snapshots.
    pub fn live_snapshot_count(&self) -> usize {
        self.live.lock().values().map(|n| *n as usize).sum()
    }

    /// Drop stamp entries with stamp ≤ `horizon`, returning how many were
    /// pruned. Only safe when no stored version header references those
    /// transactions anymore — the vacuum pass establishes that by freezing
    /// (or removing) every version of commits below the watermark and
    /// tracking each table's frozen-through stamp; `horizon` must be the
    /// minimum of those. An absent stamp reads as "not committed", so a
    /// premature prune would make committed rows invisible — hence the
    /// freeze-first protocol.
    pub fn prune_stamps(&self, horizon: u64) -> u64 {
        let mut stamps = self.stamps.write();
        let before = stamps.len();
        stamps.retain(|_, s| *s > horizon);
        (before - stamps.len()) as u64
    }

    /// Number of entries currently in the commit-stamp table.
    pub fn stamp_count(&self) -> usize {
        self.stamps.read().len()
    }
}

/// Shared registration of one snapshot (and all of its clones) in the
/// live-snapshot registry; deregisters when the last clone drops.
struct LiveGuard {
    mgr: Arc<TxnManager>,
    seq: u64,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.mgr.deregister(self.seq);
    }
}

/// The version header stored in front of every heap record: the creating
/// and (once ended) deleting transaction ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionHdr {
    /// Id of the transaction that created this version (`FROZEN` = always
    /// visible).
    pub xmin: TxnId,
    /// Id of the transaction that deleted/superseded it (0 = live).
    pub xmax: TxnId,
}

impl VersionHdr {
    pub const SIZE: usize = 16;

    pub fn frozen() -> Self {
        VersionHdr {
            xmin: FROZEN,
            xmax: 0,
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.xmin.to_le_bytes());
        out.extend_from_slice(&self.xmax.to_le_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Option<(VersionHdr, &[u8])> {
        if bytes.len() < Self::SIZE {
            return None;
        }
        let xmin = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let xmax = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        Some((VersionHdr { xmin, xmax }, &bytes[Self::SIZE..]))
    }
}

/// A point-in-time view of the database: the commit stamp up to which
/// committed work is visible, plus the observing transaction's own id (its
/// uncommitted writes are visible to itself). `Snapshot` is the
/// *visibility handle* threaded through the executor.
///
/// A snapshot is registered in the manager's live-snapshot registry for
/// its whole lifetime (clones share one registration), which is what holds
/// the GC low-watermark down: vacuum never reclaims a version some live
/// snapshot — an autocommit statement, an open transaction, a pinned
/// parallel-CO stream — could still read.
#[derive(Clone)]
pub struct Snapshot {
    mgr: Arc<TxnManager>,
    /// Commits with stamp ≤ `seq` are visible.
    pub seq: u64,
    /// The observing transaction (`FROZEN` when reading outside one).
    pub txn: TxnId,
    /// Shared live-registry registration (see [`LiveGuard`]).
    _live: Arc<LiveGuard>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seq", &self.seq)
            .field("txn", &self.txn)
            .finish()
    }
}

impl Snapshot {
    /// Is a tuple version with header `ver` visible to this snapshot?
    pub fn sees(&self, ver: &VersionHdr) -> bool {
        // Created by: frozen, self, or a transaction committed at/before us.
        let created = match ver.xmin {
            FROZEN => true,
            x if x == self.txn => true,
            x => self
                .mgr
                .commit_stamp(x)
                .map(|s| s <= self.seq)
                .unwrap_or(false),
        };
        if !created {
            return false;
        }
        // Deleted by: self, or a transaction committed at/before us.
        match ver.xmax {
            0 => true,
            x if x == self.txn => false,
            x => !self
                .mgr
                .commit_stamp(x)
                .map(|s| s <= self.seq)
                .unwrap_or(false),
        }
    }

    /// Is the version dead to *writers* — i.e. deleted by this transaction
    /// itself or by any committed transaction? Used by uniqueness checks,
    /// which must test against the latest state rather than the snapshot.
    pub fn definitely_dead(&self, ver: &VersionHdr) -> bool {
        match ver.xmax {
            0 => false,
            x if x == self.txn => true,
            x => self.mgr.commit_stamp(x).is_some(),
        }
    }

    pub fn manager(&self) -> &Arc<TxnManager> {
        &self.mgr
    }
}

/// States of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// One logical undo record. MVCC undo is purely physical: creations are
/// removed, delete marks are cleared; no old images need to be replayed
/// because writers never overwrite a committed version in place.
enum Undo {
    /// Undo an insert by physically removing the created version.
    Insert { table: Arc<Table>, rid: Rid },
    /// Undo a delete by clearing the `xmax` mark this transaction set.
    Delete { table: Arc<Table>, rid: Rid },
    /// Undo an update: clear the mark on the old version and remove the new
    /// one.
    Update {
        table: Arc<Table>,
        old_rid: Rid,
        new_rid: Rid,
    },
}

/// An explicit transaction: an id from the [`TxnManager`] plus the undo log
/// of every row it wrote. Obtain one with [`Transaction::begin`], record
/// each mutation through the `log_*` methods (the database facade does this
/// for you), then [`commit`](Transaction::commit) or
/// [`abort`](Transaction::abort).
pub struct Transaction {
    id: TxnId,
    mgr: Arc<TxnManager>,
    undo: Vec<Undo>,
    state: TxnState,
}

impl Transaction {
    pub fn begin(mgr: &Arc<TxnManager>) -> Self {
        Transaction {
            id: mgr.allocate(),
            mgr: Arc::clone(mgr),
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    pub fn id(&self) -> TxnId {
        self.id
    }

    pub fn state(&self) -> TxnState {
        self.state
    }

    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// The snapshot this transaction's *writes* are performed under: the
    /// latest committed state plus its own uncommitted work.
    pub fn write_snapshot(&self) -> Snapshot {
        self.mgr.snapshot_for(self.id)
    }

    pub fn log_insert(&mut self, table: &Arc<Table>, rid: Rid) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Insert {
            table: Arc::clone(table),
            rid,
        });
    }

    /// Log a delete mark set on the version at `rid`.
    pub fn log_delete_at(&mut self, table: &Arc<Table>, rid: Rid) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Delete {
            table: Arc::clone(table),
            rid,
        });
    }

    /// Log an update that superseded the version at `old_rid` with a new
    /// version at `new_rid`.
    pub fn log_update_at(&mut self, table: &Arc<Table>, old_rid: Rid, new_rid: Rid) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Update {
            table: Arc::clone(table),
            old_rid,
            new_rid,
        });
    }

    /// Make all changes durable-to-readers: assign a commit stamp. The
    /// versions are already in place; from this moment every new snapshot
    /// sees them. Read-only transactions skip the WAL `Commit` record (a
    /// recovery has nothing to redo or attribute for them).
    pub fn commit(mut self) -> u64 {
        let wrote = !self.undo.is_empty();
        self.undo.clear();
        self.state = TxnState::Committed;
        self.mgr.commit_logged(self.id, wrote)
    }

    /// Roll back all logged changes, newest first: physically remove the
    /// versions this transaction created (with their index entries) and
    /// clear the delete marks it set. Afterwards the transaction never
    /// appears in the commit table, so any marks missed here would simply
    /// stay invisible — but we clean up eagerly to reclaim space.
    pub fn abort(mut self) -> Result<TxnState> {
        self.rollback_in_place()?;
        Ok(self.state)
    }

    fn rollback_in_place(&mut self) -> Result<()> {
        let wrote = !self.undo.is_empty();
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::Insert { table, rid } => {
                    table.remove_version(rid)?;
                }
                Undo::Delete { table, rid } => {
                    table.clear_delete_mark(rid, self.id)?;
                }
                Undo::Update {
                    table,
                    old_rid,
                    new_rid,
                } => {
                    table.remove_version(new_rid)?;
                    table.clear_delete_mark(old_rid, self.id)?;
                }
            }
        }
        if wrote {
            self.mgr.log_abort(self.id);
        }
        self.state = TxnState::Aborted;
        Ok(())
    }
}

/// A transaction dropped while still active rolls back. Without this, a
/// leaked transaction (session dropped mid-transaction, thread panic)
/// would leave its delete marks in place forever — its id never commits,
/// so every later writer of those rows would see a permanent claim and
/// fail with `WriteConflict`.
impl Drop for Transaction {
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            // Drop cannot propagate errors; a failed undo step leaves the
            // remaining log unapplied, which only ever hides rows this
            // transaction itself created.
            let _ = self.rollback_in_place();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::catalog::Catalog;
    use crate::disk::DiskManager;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::{DataType, Value};

    fn setup() -> (Catalog, Arc<Table>) {
        let c = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 32)));
        let t = c
            .create_table(
                "T",
                Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Str)]),
            )
            .unwrap();
        (c, t)
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("v{i}"))])
    }

    #[test]
    fn abort_undoes_insert() {
        let (c, t) = setup();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(1), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0);
    }

    #[test]
    fn abort_undoes_delete_and_update() {
        let (c, t) = setup();
        t.insert(&row(1)).unwrap();
        let rid2 = t.insert(&row(2)).unwrap();

        let mut txn = Transaction::begin(c.txns());
        let snap = txn.write_snapshot();
        let (rid1, _) = t
            .find_by_value_visible(0, &Value::Int(1), &snap)
            .unwrap()
            .pop()
            .unwrap();
        t.mark_delete_txn(rid1, txn.id()).unwrap();
        txn.log_delete_at(&t, rid1);
        let (_, nrid) = t.update_txn(rid2, &row(99), txn.id()).unwrap();
        txn.log_update_at(&t, rid2, nrid);
        txn.abort().unwrap();

        let mut vals: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn commit_keeps_changes() {
        let (c, t) = setup();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(1), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        txn.commit();
        assert_eq!(t.row_count().unwrap(), 1);
    }

    #[test]
    fn uncommitted_writes_are_invisible_to_other_snapshots() {
        let (c, t) = setup();
        t.insert(&row(1)).unwrap();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(2), txn.id()).unwrap();
        txn.log_insert(&t, rid);

        // A reader snapshot taken while the txn is open sees only row 1.
        let reader = c.txns().snapshot_latest();
        let mut seen = Vec::new();
        t.for_each_visible(&reader, |_, tup| {
            seen.push(tup.values[0].as_int().unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, vec![1]);

        // The writer itself sees both.
        let own = txn.write_snapshot();
        assert_eq!(t.row_count_visible(&own).unwrap(), 2);

        txn.commit();
        // Old snapshot still sees only row 1 (snapshot isolation).
        let mut seen = Vec::new();
        t.for_each_visible(&reader, |_, tup| {
            seen.push(tup.values[0].as_int().unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, vec![1]);
        // A fresh snapshot sees both.
        assert_eq!(t.row_count().unwrap(), 2);
    }

    #[test]
    fn first_writer_wins_on_the_same_row() {
        let (c, t) = setup();
        let rid = t.insert(&row(1)).unwrap();

        let mut a = Transaction::begin(c.txns());
        let b = Transaction::begin(c.txns());
        let (_, new_rid) = t.update_txn(rid, &row(10), a.id()).unwrap();
        a.log_update_at(&t, rid, new_rid);

        // Second writer conflicts instead of waiting or clobbering.
        let err = t.update_txn(rid, &row(20), b.id()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::WriteConflict { .. }
        ));
        let err = t.mark_delete_txn(rid, b.id()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::WriteConflict { .. }
        ));

        // Conflict also holds after the first writer commits.
        a.commit();
        let err = t.update_txn(rid, &row(30), b.id()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::WriteConflict { .. }
        ));
        assert_eq!(
            t.scan_all().unwrap()[0].1.values[0],
            Value::Int(10),
            "first writer's committed update survives"
        );
    }

    #[test]
    fn snapshot_sees_own_writes_but_not_later_commits() {
        let (c, t) = setup();
        t.insert(&row(1)).unwrap();
        let mut a = Transaction::begin(c.txns());
        let snap_a = a.write_snapshot();

        // Another transaction commits after A's snapshot.
        let mut b = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(2), b.id()).unwrap();
        b.log_insert(&t, rid);
        b.commit();

        // A still sees 1 row; a fresh snapshot sees 2.
        assert_eq!(t.row_count_visible(&snap_a).unwrap(), 1);
        assert_eq!(t.row_count().unwrap(), 2);

        // A's own insert is visible to A only.
        let rid = t.insert_txn(&row(3), a.id()).unwrap();
        a.log_insert(&t, rid);
        assert_eq!(t.row_count_visible(&snap_a).unwrap(), 2);
        assert_eq!(t.row_count().unwrap(), 2);
        a.commit();
        assert_eq!(t.row_count().unwrap(), 3);
    }

    #[test]
    fn abort_replays_in_reverse_order() {
        let (c, t) = setup();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(1), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        // Update the same tuple twice inside the transaction.
        let (_, rid2) = t.update_txn(rid, &row(2), txn.id()).unwrap();
        txn.log_update_at(&t, rid, rid2);
        let (_, rid3) = t.update_txn(rid2, &row(3), txn.id()).unwrap();
        txn.log_update_at(&t, rid2, rid3);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0, "insert rolled back last");
    }

    #[test]
    fn dropping_an_active_transaction_rolls_back() {
        let (c, t) = setup();
        let rid = t.insert(&row(1)).unwrap();
        {
            let mut txn = Transaction::begin(c.txns());
            let new = t.insert_txn(&row(2), txn.id()).unwrap();
            txn.log_insert(&t, new);
            t.mark_delete_txn(rid, txn.id()).unwrap();
            txn.log_delete_at(&t, rid);
            // Dropped without commit/rollback (session died).
        }
        // The insert is gone, the delete mark cleared: row 1 is writable
        // again instead of permanently claimed by a leaked txn id.
        assert_eq!(t.row_count().unwrap(), 1);
        let b = t.txns().allocate();
        t.mark_delete_txn(rid, b).unwrap();
    }

    #[test]
    fn abort_handles_insert_then_delete_of_one_row() {
        let (c, t) = setup();
        let keep = t.insert(&row(10)).unwrap();
        let mut txn = Transaction::begin(c.txns());
        let rid = t.insert_txn(&row(1), txn.id()).unwrap();
        txn.log_insert(&t, rid);
        t.mark_delete_txn(keep, txn.id()).unwrap();
        txn.log_delete_at(&t, keep);
        t.mark_delete_txn(rid, txn.id()).unwrap();
        txn.log_delete_at(&t, rid);
        txn.abort().unwrap();
        let mut vals: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![10], "only the pre-existing row survives");
    }
}
