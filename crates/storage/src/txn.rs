//! Lightweight transactions: undo logging over table operations.
//!
//! The paper leaves "transaction, recovery, and storage management …
//! totally unchanged" (Sect. 6); we provide the standard substrate the XNF
//! layer relies on — atomic multi-statement units with rollback — via an
//! in-memory undo log. Durability is out of scope (the disk itself is
//! simulated), isolation is via the storage layer's internal locking
//! (single-writer style), which matches the era's workstation/server usage.

use std::sync::Arc;

use crate::catalog::Table;
use crate::error::Result;
use crate::tuple::{Rid, Tuple};

/// One logical undo record.
enum Undo {
    /// Undo an insert by deleting the inserted tuple.
    Insert { table: Arc<Table>, rid: Rid },
    /// Undo a delete by re-inserting the old tuple (RID may change; XNF
    /// caches re-extract after abort, so RID stability is not required).
    Delete { table: Arc<Table>, old: Tuple },
    /// Undo an update by writing the old image back.
    Update {
        table: Arc<Table>,
        rid: Rid,
        old: Tuple,
    },
}

/// States of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// An explicit transaction. Obtain one with [`Transaction::begin`], record
/// every mutation through the `log_*` methods (the database facade does this
/// for you), then [`commit`](Transaction::commit) or
/// [`abort`](Transaction::abort).
pub struct Transaction {
    undo: Vec<Undo>,
    state: TxnState,
}

impl Transaction {
    pub fn begin() -> Self {
        Transaction {
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    pub fn state(&self) -> TxnState {
        self.state
    }

    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    pub fn log_insert(&mut self, table: &Arc<Table>, rid: Rid) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Insert {
            table: Arc::clone(table),
            rid,
        });
    }

    pub fn log_delete(&mut self, table: &Arc<Table>, old: Tuple) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Delete {
            table: Arc::clone(table),
            old,
        });
    }

    pub fn log_update(&mut self, table: &Arc<Table>, rid: Rid, old: Tuple) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Update {
            table: Arc::clone(table),
            rid,
            old,
        });
    }

    /// Make all changes permanent (drops the undo log).
    pub fn commit(mut self) -> TxnState {
        self.undo.clear();
        self.state = TxnState::Committed;
        self.state
    }

    /// Roll back all logged changes, newest first.
    pub fn abort(mut self) -> Result<TxnState> {
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::Insert { table, rid } => {
                    table.delete(rid)?;
                }
                Undo::Delete { table, old } => {
                    table.insert(&old)?;
                }
                Undo::Update { table, rid, old } => {
                    table.update(rid, &old)?;
                }
            }
        }
        self.state = TxnState::Aborted;
        Ok(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::catalog::Catalog;
    use crate::disk::DiskManager;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn setup() -> (Catalog, Arc<Table>) {
        let c = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 32)));
        let t = c
            .create_table(
                "T",
                Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Str)]),
            )
            .unwrap();
        (c, t)
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("v{i}"))])
    }

    #[test]
    fn abort_undoes_insert() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0);
    }

    #[test]
    fn abort_undoes_delete_and_update() {
        let (_c, t) = setup();
        let rid1 = t.insert(&row(1)).unwrap();
        let rid2 = t.insert(&row(2)).unwrap();

        let mut txn = Transaction::begin();
        let old = t.delete(rid1).unwrap();
        txn.log_delete(&t, old);
        let (old, nrid) = t.update(rid2, &row(99)).unwrap();
        txn.log_update(&t, nrid, old);
        txn.abort().unwrap();

        let mut vals: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn commit_keeps_changes() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        assert_eq!(txn.commit(), TxnState::Committed);
        assert_eq!(t.row_count().unwrap(), 1);
    }

    #[test]
    fn abort_replays_in_reverse_order() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        // Update the same tuple twice inside the transaction.
        let (old, rid) = t.update(rid, &row(2)).unwrap();
        txn.log_update(&t, rid, old);
        let (old, rid) = t.update(rid, &row(3)).unwrap();
        txn.log_update(&t, rid, old);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0, "insert rolled back last");
    }
}
