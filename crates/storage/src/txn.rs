//! Lightweight transactions: undo logging over table operations.
//!
//! The paper leaves "transaction, recovery, and storage management …
//! totally unchanged" (Sect. 6); we provide the standard substrate the XNF
//! layer relies on — atomic multi-statement units with rollback — via an
//! in-memory undo log. Durability is out of scope (the disk itself is
//! simulated), isolation is via the storage layer's internal locking
//! (single-writer style), which matches the era's workstation/server usage.

use std::collections::HashMap;
use std::sync::Arc;

use crate::catalog::Table;
use crate::error::Result;
use crate::tuple::{Rid, Tuple};

/// One logical undo record.
enum Undo {
    /// Undo an insert by deleting the inserted tuple.
    Insert { table: Arc<Table>, rid: Rid },
    /// Undo a delete by re-inserting the old tuple at `rid`'s place. The
    /// re-insert may land elsewhere; [`Transaction::abort`] tracks the
    /// relocation so earlier undo records referencing `rid` still resolve
    /// (insert-then-delete of one row within a transaction).
    Delete {
        table: Arc<Table>,
        rid: Rid,
        old: Tuple,
    },
    /// Undo an update by writing the old image back. `old_rid` is where the
    /// tuple lived before the original update (earlier undo records refer
    /// to it); `rid` is where the updated image lives now.
    Update {
        table: Arc<Table>,
        old_rid: Rid,
        rid: Rid,
        old: Tuple,
    },
}

/// States of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// An explicit transaction. Obtain one with [`Transaction::begin`], record
/// every mutation through the `log_*` methods (the database facade does this
/// for you), then [`commit`](Transaction::commit) or
/// [`abort`](Transaction::abort).
pub struct Transaction {
    undo: Vec<Undo>,
    state: TxnState,
}

impl Transaction {
    pub fn begin() -> Self {
        Transaction {
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    pub fn state(&self) -> TxnState {
        self.state
    }

    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    pub fn log_insert(&mut self, table: &Arc<Table>, rid: Rid) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Insert {
            table: Arc::clone(table),
            rid,
        });
    }

    /// Log a delete of the tuple that lived at `rid` with image `old`.
    pub fn log_delete_at(&mut self, table: &Arc<Table>, rid: Rid, old: Tuple) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Delete {
            table: Arc::clone(table),
            rid,
            old,
        });
    }

    /// Log an update that moved the tuple from `old_rid` (pre-image `old`)
    /// to `rid` (same RID unless the update relocated it).
    pub fn log_update_at(&mut self, table: &Arc<Table>, old_rid: Rid, rid: Rid, old: Tuple) {
        debug_assert!(self.is_active());
        self.undo.push(Undo::Update {
            table: Arc::clone(table),
            old_rid,
            rid,
            old,
        });
    }

    /// Make all changes permanent (drops the undo log).
    pub fn commit(mut self) -> TxnState {
        self.undo.clear();
        self.state = TxnState::Committed;
        self.state
    }

    /// Roll back all logged changes, newest first.
    ///
    /// Undoing a delete re-inserts the old image, and undoing an update may
    /// relocate the tuple; either way the row can end up at a different RID
    /// than earlier (older) undo records reference. A relocation map keeps
    /// those records pointing at the row's current home, so sequences like
    /// insert-then-delete of one row roll back cleanly.
    pub fn abort(mut self) -> Result<TxnState> {
        let mut moved: HashMap<(u32, Rid), Rid> = HashMap::new();
        let resolve = |moved: &HashMap<(u32, Rid), Rid>, table: &Table, mut rid: Rid| -> Rid {
            while let Some(&next) = moved.get(&(table.id, rid)) {
                rid = next;
            }
            rid
        };
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::Insert { table, rid } => {
                    let rid = resolve(&moved, &table, rid);
                    table.delete(rid)?;
                }
                Undo::Delete { table, rid, old } => {
                    let new_rid = table.insert(&old)?;
                    if new_rid != rid {
                        moved.insert((table.id, rid), new_rid);
                    }
                }
                Undo::Update {
                    table,
                    old_rid,
                    rid,
                    old,
                } => {
                    let cur = resolve(&moved, &table, rid);
                    let (_, undone_rid) = table.update(cur, &old)?;
                    if undone_rid != old_rid {
                        moved.insert((table.id, old_rid), undone_rid);
                    }
                }
            }
        }
        self.state = TxnState::Aborted;
        Ok(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::catalog::Catalog;
    use crate::disk::DiskManager;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn setup() -> (Catalog, Arc<Table>) {
        let c = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 32)));
        let t = c
            .create_table(
                "T",
                Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Str)]),
            )
            .unwrap();
        (c, t)
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("v{i}"))])
    }

    #[test]
    fn abort_undoes_insert() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0);
    }

    #[test]
    fn abort_undoes_delete_and_update() {
        let (_c, t) = setup();
        let rid1 = t.insert(&row(1)).unwrap();
        let rid2 = t.insert(&row(2)).unwrap();

        let mut txn = Transaction::begin();
        let old = t.delete(rid1).unwrap();
        txn.log_delete_at(&t, rid1, old);
        let (old, nrid) = t.update(rid2, &row(99)).unwrap();
        txn.log_update_at(&t, rid2, nrid, old);
        txn.abort().unwrap();

        let mut vals: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn commit_keeps_changes() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        assert_eq!(txn.commit(), TxnState::Committed);
        assert_eq!(t.row_count().unwrap(), 1);
    }

    #[test]
    fn abort_replays_in_reverse_order() {
        let (_c, t) = setup();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        // Update the same tuple twice inside the transaction.
        let before = rid;
        let (old, rid) = t.update(rid, &row(2)).unwrap();
        txn.log_update_at(&t, before, rid, old);
        let before = rid;
        let (old, rid) = t.update(rid, &row(3)).unwrap();
        txn.log_update_at(&t, before, rid, old);
        txn.abort().unwrap();
        assert_eq!(t.row_count().unwrap(), 0, "insert rolled back last");
    }

    #[test]
    fn abort_handles_insert_then_delete_of_one_row() {
        let (_c, t) = setup();
        // Pre-existing rows so the undo interleaves with other work.
        let keep = t.insert(&row(10)).unwrap();
        let mut txn = Transaction::begin();
        let rid = t.insert(&row(1)).unwrap();
        txn.log_insert(&t, rid);
        // Delete another row first, so its undo re-insert may land in the
        // slot the transaction's own insert freed up.
        let old = t.delete(keep).unwrap();
        txn.log_delete_at(&t, keep, old);
        let old = t.delete(rid).unwrap();
        txn.log_delete_at(&t, rid, old);
        txn.abort().unwrap();
        let mut vals: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![10], "only the pre-existing row survives");
    }
}
