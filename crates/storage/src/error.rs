//! Error type for the storage layer.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id was out of range for the disk file.
    PageOutOfRange(u64),
    /// A record id pointed at a missing or deleted slot.
    InvalidRid {
        page: u64,
        slot: u16,
    },
    /// A tuple was too large to fit in a page.
    TupleTooLarge(usize),
    /// The buffer pool had no evictable frame (all pinned).
    BufferPoolExhausted,
    /// Catalog name collisions / lookups.
    DuplicateTable(String),
    DuplicateIndex(String),
    UnknownTable(String),
    UnknownIndex(String),
    UnknownColumn {
        table: String,
        column: String,
    },
    /// Value/type mismatch while encoding or evaluating.
    TypeMismatch {
        expected: &'static str,
        got: &'static str,
    },
    /// Arity mismatch between a tuple and its schema.
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    /// Corrupt on-page or serialized data.
    Corrupt(&'static str),
    /// Violation of a uniqueness constraint on an index.
    UniqueViolation(String),
    /// Transaction misuse (e.g. commit without begin).
    TxnState(&'static str),
    /// First-writer-wins row conflict: another transaction already wrote
    /// (updated or deleted) the row this transaction tried to write.
    WriteConflict {
        table: String,
    },
    /// An operating-system I/O failure (page file or write-ahead log). The
    /// message is carried as a string so the error stays `Clone + Eq`.
    Io(String),
    /// A page read failed its trailer checksum: a crash landed inside the
    /// 8 KiB write and left a torn (half-old, half-new) image that the
    /// double-write buffer could not repair. Never served as data.
    TornPage {
        page: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfRange(p) => write!(f, "page {p} out of range"),
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid rid ({page},{slot})")
            }
            StorageError::TupleTooLarge(n) => write!(f, "tuple of {n} bytes exceeds page capacity"),
            StorageError::BufferPoolExhausted => {
                write!(f, "buffer pool exhausted (all frames pinned)")
            }
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            StorageError::DuplicateIndex(i) => write!(f, "index '{i}' already exists"),
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::UnknownIndex(i) => write!(f, "unknown index '{i}'"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            StorageError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, tuple has {got}"
                )
            }
            StorageError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            StorageError::UniqueViolation(k) => write!(f, "unique constraint violated for key {k}"),
            StorageError::TxnState(s) => write!(f, "transaction state error: {s}"),
            StorageError::WriteConflict { table } => {
                write!(
                    f,
                    "write conflict on table '{table}': row already written by a \
                     concurrent transaction"
                )
            }
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
            StorageError::TornPage { page } => {
                write!(
                    f,
                    "torn page {page}: trailer checksum mismatch and no valid \
                     double-write copy to restore from"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
