//! Table statistics for the cost-based optimizer.
//!
//! `ANALYZE` computes row counts, per-column distinct-value counts and
//! min/max, which the planner uses for selectivity and join-cardinality
//! estimation (Selinger-style).

use std::collections::HashSet;

use crate::value::Value;

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct: u64,
    /// Number of NULLs.
    pub nulls: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// Statistics for one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub pages: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Selectivity estimate for an equality predicate `col = const`:
    /// `1 / distinct` (the classic uniform assumption).
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.columns.get(col) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 0.1,
        }
    }

    /// Selectivity estimate for a range predicate. Uses min/max
    /// interpolation for numeric columns, 1/3 otherwise (System R default).
    pub fn range_selectivity(&self, col: usize, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let c = match self.columns.get(col) {
            Some(c) => c,
            None => return 1.0 / 3.0,
        };
        let (min, max) = match (&c.min, &c.max) {
            (Some(Value::Int(a)), Some(Value::Int(b))) => (*a as f64, *b as f64),
            (Some(Value::Double(a)), Some(Value::Double(b))) => (*a, *b),
            _ => return 1.0 / 3.0,
        };
        if max <= min {
            return 1.0;
        }
        let lo_v = lo.and_then(|v| v.as_double().ok()).unwrap_or(min);
        let hi_v = hi.and_then(|v| v.as_double().ok()).unwrap_or(max);
        ((hi_v - lo_v) / (max - min)).clamp(0.0, 1.0)
    }
}

/// Incremental statistics builder consuming tuples during ANALYZE.
pub struct StatsBuilder {
    row_count: u64,
    distinct: Vec<HashSet<Value>>,
    nulls: Vec<u64>,
    min: Vec<Option<Value>>,
    max: Vec<Option<Value>>,
}

impl StatsBuilder {
    pub fn new(num_columns: usize) -> Self {
        StatsBuilder {
            row_count: 0,
            distinct: (0..num_columns).map(|_| HashSet::new()).collect(),
            nulls: vec![0; num_columns],
            min: vec![None; num_columns],
            max: vec![None; num_columns],
        }
    }

    pub fn observe(&mut self, values: &[Value]) {
        self.row_count += 1;
        for (i, v) in values.iter().enumerate().take(self.distinct.len()) {
            if v.is_null() {
                self.nulls[i] += 1;
                continue;
            }
            self.distinct[i].insert(v.clone());
            match &self.min[i] {
                Some(m) if v >= m => {}
                _ => self.min[i] = Some(v.clone()),
            }
            match &self.max[i] {
                Some(m) if v <= m => {}
                _ => self.max[i] = Some(v.clone()),
            }
        }
    }

    pub fn finish(self, pages: u64) -> TableStats {
        TableStats {
            row_count: self.row_count,
            pages,
            columns: self
                .distinct
                .into_iter()
                .zip(self.nulls)
                .zip(self.min.into_iter().zip(self.max))
                .map(|((d, n), (mn, mx))| ColumnStats {
                    distinct: d.len() as u64,
                    nulls: n,
                    min: mn,
                    max: mx,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_distincts_and_extremes() {
        let mut b = StatsBuilder::new(2);
        for i in 0..100 {
            b.observe(&[
                Value::Int(i % 10),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Str("x".into())
                },
            ]);
        }
        let s = b.finish(3);
        assert_eq!(s.row_count, 100);
        assert_eq!(s.pages, 3);
        assert_eq!(s.columns[0].distinct, 10);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[1].nulls, 25);
        assert_eq!(s.columns[1].distinct, 1);
    }

    #[test]
    fn selectivity_estimates() {
        let mut b = StatsBuilder::new(1);
        for i in 0..100 {
            b.observe(&[Value::Int(i)]);
        }
        let s = b.finish(1);
        assert!((s.eq_selectivity(0) - 0.01).abs() < 1e-9);
        let sel = s.range_selectivity(0, Some(&Value::Int(0)), Some(&Value::Int(49)));
        assert!(sel > 0.4 && sel < 0.6, "got {sel}");
    }

    #[test]
    fn default_selectivities_without_stats() {
        let s = TableStats::default();
        assert_eq!(s.eq_selectivity(0), 0.1);
        assert_eq!(s.range_selectivity(0, None, None), 1.0 / 3.0);
    }
}
