//! Table schemas: ordered, named, typed columns.

use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered list of columns describing a stored or derived table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Build a schema from `(name, type)` pairs, all nullable.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Case-insensitive lookup of a column ordinal by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but producing a catalog error mentioning
    /// `table` on failure.
    pub fn resolve(&self, table: &str, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: table.to_string(),
                column: name.to_string(),
            })
    }

    /// Validate a tuple against this schema: arity, type conformance and
    /// NOT NULL constraints.
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (v, c) in values.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(StorageError::TypeMismatch {
                        expected: "non-null value",
                        got: "NULL",
                    });
                }
                continue;
            }
            if !v.conforms_to(c.ty) {
                return Err(StorageError::TypeMismatch {
                    expected: match c.ty {
                        DataType::Int => "INT",
                        DataType::Double => "DOUBLE",
                        DataType::Str => "VARCHAR",
                        DataType::Bool => "BOOLEAN",
                        DataType::Any => "ANY",
                    },
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.len() + other.len());
        columns.extend_from_slice(&self.columns);
        columns.extend_from_slice(&other.columns);
        Schema { columns }
    }

    /// Project a subset of columns by ordinal.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::not_null("eno", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("salary", DataType::Double),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ENO"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = sample();
        assert!(s
            .validate(&[Value::Int(1), Value::Str("a".into()), Value::Double(1.0)])
            .is_ok());
        // Int widens into Double column.
        assert!(s
            .validate(&[Value::Int(1), Value::Null, Value::Int(3)])
            .is_ok());
        assert!(s
            .validate(&[Value::Int(1), Value::Str("a".into())])
            .is_err());
        assert!(s
            .validate(&[Value::Str("x".into()), Value::Null, Value::Null])
            .is_err());
        // NOT NULL column rejects NULL.
        assert!(s
            .validate(&[Value::Null, Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn join_and_project() {
        let s = sample();
        let j = s.join(&sample());
        assert_eq!(j.len(), 6);
        let p = s.project(&[2, 0]);
        assert_eq!(p.column(0).name, "salary");
        assert_eq!(p.column(1).name, "eno");
    }
}
