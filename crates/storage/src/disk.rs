//! Disk manager: the page store underneath the buffer pool.
//!
//! Two backends share one interface:
//!
//! - **memory** ([`DiskManager::new`]) — a growable array of page frames
//!   with precise read/write accounting. The paper's measurements depend on
//!   I/O *behaviour* (clustering, pathlength reduction, buffer hits), not on
//!   a physical spindle, so experiments and most tests run here;
//! - **file** ([`DiskManager::open_file`]) — a real page file on disk
//!   (`pages.db` under the database's data directory). Pages are read and
//!   written at `page_id * PAGE_SIZE` offsets; [`DiskManager::sync`] flushes
//!   OS buffers so checkpoints can bound redo work, and the write-ahead log
//!   ([`crate::wal`]) is flushed before any dirty page reaches this layer
//!   (WAL-before-data, enforced by the buffer pool).
//!
//! # Torn-page protection (file backend)
//!
//! A crash can land *inside* an 8 KiB page write, leaving a half-old,
//! half-new image that ARIES redo would silently mis-handle (the page LSN
//! may claim the new state while the body holds the old). Two mechanisms
//! close this hole:
//!
//! - **Page trailer.** Every write-back stamps the page's last 12 bytes
//!   with an LSN echo + CRC32 ([`crate::page::stamp_trailer`]); every read
//!   verifies it and raises [`StorageError::TornPage`] on mismatch — a torn
//!   image is never served as data. An all-zero page (allocated but never
//!   written) is exempt.
//! - **Double-write buffer** ([`DiskManager::open_file_dw`]). Each
//!   write-back batch is appended to `doublewrite.db` and fsynced *before*
//!   any in-place write touches `pages.db`. A crash can therefore tear the
//!   DW copy (in-place copy still intact) or the in-place copy (DW copy
//!   durable) — never both. On the next open, [`DiskManager`] scans the DW
//!   file, drops entries that fail their own checksum, and restores any
//!   page whose in-place image fails verification. [`DiskManager::sync`]
//!   (the checkpoint fsync) truncates the spent DW batch.
//!
//! [`FaultPlan`] injects deterministic crashes (torn writes, dropped
//! fsyncs) so tests cover every torn-page shape, not just the ones SIGKILL
//! timing happens to hit.
//!
//! Both backends keep identical I/O counters so the cost model and the
//! benchmarks see the same accounting either way.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, StorageError};
use crate::page::{stamp_trailer, trailer_matches, Page, PAGE_SIZE};

/// Identifies a page within the single database "file".
pub type PageId = u64;

/// I/O counters exposed by the disk manager.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
    /// Page reads whose trailer checksum was verified (file backend only).
    pub pages_verified: u64,
    /// Torn in-place pages restored from the double-write buffer at open.
    pub torn_pages_repaired: u64,
    /// Double-write batches fsynced ahead of their in-place writes.
    pub dw_batches: u64,
}

/// Deterministic fault-injection plan for crash testing (file backend).
/// Installed with [`DiskManager::set_fault_plan`]; counters restart at
/// zero each time a plan is installed.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultPlan {
    /// Tear the N-th page-image write (0-based, counted across double-write
    /// appends and in-place writes alike): persist only the first B bytes
    /// of the 8 KiB image, then take the "disk" offline — every subsequent
    /// write or fsync fails, simulating a machine crash mid-write.
    pub tear_write: Option<(u64, usize)>,
    /// Silently drop the K-th fsync (0-based, counted across the
    /// double-write file and the page file): the call reports success but
    /// durability is not established, simulating a lying disk cache.
    pub drop_fsync: Option<u64>,
}

#[derive(Default)]
struct FaultState {
    plan: FaultPlan,
    write_idx: u64,
    fsync_idx: u64,
    /// Set after an injected tear: the process's view of the disk is dead.
    failed: bool,
}

enum Backend {
    /// In-memory array of page frames.
    Mem(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
    /// A page file; `len` caches the allocated page count.
    File { file: Mutex<File>, len: AtomicU64 },
}

/// The page store: fixed-size pages addressed by [`PageId`], in memory or
/// backed by a file, with I/O counters, optional double-write protection
/// and fault injection.
pub struct DiskManager {
    backend: Backend,
    /// Double-write buffer file, when torn-page protection is enabled.
    /// Lock order: `dw` before the backend `file` (both `sync` and
    /// `write_batch` follow it), so a checkpoint can never truncate DW
    /// entries whose in-place writes are still in flight.
    dw: Option<Mutex<File>>,
    fault: Mutex<FaultState>,
    /// Stranded pages returned by recovery, reused before growing the file.
    free_pages: Mutex<Vec<PageId>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    pages_verified: AtomicU64,
    torn_repaired: AtomicU64,
    dw_batches: AtomicU64,
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

const DW_ENTRY: usize = 8 + PAGE_SIZE;

impl DiskManager {
    fn build(backend: Backend, dw: Option<Mutex<File>>) -> Self {
        DiskManager {
            backend,
            dw,
            fault: Mutex::new(FaultState::default()),
            free_pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
            pages_verified: AtomicU64::new(0),
            torn_repaired: AtomicU64::new(0),
            dw_batches: AtomicU64::new(0),
        }
    }

    /// An in-memory disk (volatile; no durability).
    pub fn new() -> Self {
        Self::build(Backend::Mem(Mutex::new(Vec::new())), None)
    }

    /// Open (or create) a file-backed page store at `path`. An existing
    /// file's pages become immediately addressable; a partial trailing page
    /// (from a torn write) is ignored.
    pub fn open_file(path: &Path) -> Result<Self> {
        let file = open_rw(path)?;
        let len = file.metadata().map_err(io_err)?.len() / PAGE_SIZE as u64;
        Ok(Self::build(
            Backend::File {
                file: Mutex::new(file),
                len: AtomicU64::new(len),
            },
            None,
        ))
    }

    /// Open a file-backed page store with double-write torn-page
    /// protection. Before returning, any batch left in `dw_path` by a
    /// crash is replayed: entries failing their own checksum are dropped
    /// (the in-place copy is intact), and pages whose in-place image fails
    /// verification are restored from their durable DW copy.
    pub fn open_file_dw(path: &Path, dw_path: &Path) -> Result<Self> {
        let file = open_rw(path)?;
        let len = file.metadata().map_err(io_err)?.len() / PAGE_SIZE as u64;
        let dw = open_rw(dw_path)?;
        let disk = Self::build(
            Backend::File {
                file: Mutex::new(file),
                len: AtomicU64::new(len),
            },
            Some(Mutex::new(dw)),
        );
        disk.dw_restore()?;
        Ok(disk)
    }

    /// Replay the double-write buffer at open: keep the last self-valid DW
    /// image per page, restore it wherever the in-place copy is torn, then
    /// fsync the page file and truncate the spent buffer.
    fn dw_restore(&self) -> Result<()> {
        let (Backend::File { file, len }, Some(dw)) = (&self.backend, &self.dw) else {
            return Ok(());
        };
        let mut dwf = dw.lock();
        let mut bytes = Vec::new();
        dwf.seek(SeekFrom::Start(0)).map_err(io_err)?;
        dwf.read_to_end(&mut bytes).map_err(io_err)?;
        // Last valid image per page id; torn DW entries (including a
        // partial trailing one) fail their own checksum and are skipped —
        // their batch never started its in-place writes.
        let mut latest: BTreeMap<PageId, usize> = BTreeMap::new();
        let mut off = 0;
        while off + DW_ENTRY <= bytes.len() {
            let id = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let img: &[u8; PAGE_SIZE] = bytes[off + 8..off + DW_ENTRY].try_into().unwrap();
            if trailer_matches(img) && !img.iter().all(|&b| b == 0) {
                latest.insert(id, off + 8);
            }
            off += DW_ENTRY;
        }
        let mut f = file.lock();
        for (id, img_off) in latest {
            let img: &[u8; PAGE_SIZE] = bytes[img_off..img_off + PAGE_SIZE].try_into().unwrap();
            let n = len.load(Ordering::Relaxed);
            let in_place_ok = if id < n {
                let mut cur = [0u8; PAGE_SIZE];
                f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
                    .map_err(io_err)?;
                f.read_exact(&mut cur).map_err(io_err)?;
                trailer_matches(&cur)
            } else {
                // Allocated (DW proves it) but the file extension itself
                // was lost with the crash: re-extend and restore.
                false
            };
            if !in_place_ok {
                if id >= n {
                    f.set_len((id + 1) * PAGE_SIZE as u64).map_err(io_err)?;
                    len.store(id + 1, Ordering::Relaxed);
                }
                f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
                    .map_err(io_err)?;
                f.write_all(img).map_err(io_err)?;
                self.torn_repaired.fetch_add(1, Ordering::Relaxed);
            }
        }
        f.sync_data().map_err(io_err)?;
        drop(f);
        dwf.set_len(0).map_err(io_err)?;
        dwf.sync_data().map_err(io_err)?;
        Ok(())
    }

    /// True when pages live in a real file (and survive process death).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backend, Backend::File { .. })
    }

    /// True when write-backs run the double-write protocol.
    pub fn doublewrite_enabled(&self) -> bool {
        self.dw.is_some()
    }

    /// Install a fault-injection plan (and reset its write/fsync counters).
    /// Only the file backend consults the plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Write one 8 KiB image at the file's current position, honouring the
    /// fault plan: a matching tear persists only a prefix and takes the
    /// disk offline for the rest of the process's lifetime.
    fn faulted_image_write(&self, file: &mut File, image: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut st = self.fault.lock();
        if st.failed {
            return Err(StorageError::Io("injected crash: disk offline".into()));
        }
        let idx = st.write_idx;
        st.write_idx += 1;
        if let Some((n, torn_at)) = st.plan.tear_write {
            if idx == n {
                st.failed = true;
                drop(st);
                file.write_all(&image[..torn_at]).map_err(io_err)?;
                return Err(StorageError::Io(format!(
                    "injected crash: page-image write {idx} torn at byte {torn_at}"
                )));
            }
        }
        drop(st);
        file.write_all(&image[..]).map_err(io_err)
    }

    fn faulted_sync(&self, file: &File) -> Result<()> {
        let mut st = self.fault.lock();
        if st.failed {
            return Err(StorageError::Io("injected crash: disk offline".into()));
        }
        let idx = st.fsync_idx;
        st.fsync_idx += 1;
        if st.plan.drop_fsync == Some(idx) {
            // Lying disk: report success without establishing durability.
            return Ok(());
        }
        drop(st);
        file.sync_data().map_err(io_err)
    }

    /// Grow the backend by one zeroed page (never consults the free list).
    fn grow(&self) -> PageId {
        match &self.backend {
            Backend::Mem(pages) => {
                let mut pages = pages.lock();
                let id = pages.len() as PageId;
                pages.push(Box::new([0u8; PAGE_SIZE]));
                id
            }
            Backend::File { file, len } => {
                let file = file.lock();
                let id = len.load(Ordering::Relaxed);
                // Extend the file so the page is addressable; contents are
                // zero until first write-back.
                file.set_len((id + 1) * PAGE_SIZE as u64)
                    .expect("extend page file");
                len.store(id + 1, Ordering::Relaxed);
                id
            }
        }
    }

    /// Allocate a fresh page and return its id: a reclaimed (stranded)
    /// page when one is free, otherwise a new zeroed page at the end.
    pub fn allocate(&self) -> PageId {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free_pages.lock().pop() {
            return id;
        }
        self.grow()
    }

    /// Make sure pages `0..=id` exist (recovery replays allocations that
    /// may never have reached the file before the crash). Extend-only:
    /// never consumes the free list. Idempotent.
    pub fn ensure_allocated(&self, id: PageId) -> Result<()> {
        while self.page_count() <= id {
            self.allocations.fetch_add(1, Ordering::Relaxed);
            self.grow();
        }
        Ok(())
    }

    /// Return stranded pages (allocated before a crash but reachable from
    /// no heap extent) to the free list so later allocations reuse them
    /// instead of growing the file. Recovery calls this after reconciling
    /// the page file against logged extents.
    pub fn reclaim(&self, pages: &[PageId]) {
        if pages.is_empty() {
            return;
        }
        let mut free = self.free_pages.lock();
        free.extend_from_slice(pages);
        // Descending order: `pop` hands out the lowest id first.
        free.sort_unstable_by(|a, b| b.cmp(a));
        free.dedup();
    }

    /// Pages currently parked on the free list.
    pub fn free_page_count(&self) -> usize {
        self.free_pages.lock().len()
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        match &self.backend {
            Backend::Mem(pages) => pages.lock().len() as u64,
            Backend::File { len, .. } => len.load(Ordering::Relaxed),
        }
    }

    /// Read a page from disk. File-backed reads verify the torn-page
    /// trailer: a mismatch raises [`StorageError::TornPage`] rather than
    /// serving a half-written image.
    pub fn read(&self, id: PageId) -> Result<Page> {
        match &self.backend {
            Backend::Mem(pages) => {
                let pages = pages.lock();
                let buf = pages
                    .get(id as usize)
                    .ok_or(StorageError::PageOutOfRange(id))?;
                self.reads.fetch_add(1, Ordering::Relaxed);
                Page::from_bytes(&buf[..])
            }
            Backend::File { file, len } => {
                if id >= len.load(Ordering::Relaxed) {
                    return Err(StorageError::PageOutOfRange(id));
                }
                let mut file = file.lock();
                let mut buf = [0u8; PAGE_SIZE];
                file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
                    .map_err(io_err)?;
                file.read_exact(&mut buf).map_err(io_err)?;
                drop(file);
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.pages_verified.fetch_add(1, Ordering::Relaxed);
                if !trailer_matches(&buf) {
                    return Err(StorageError::TornPage { page: id });
                }
                Page::from_bytes(&buf)
            }
        }
    }

    /// Write a page back to disk (a one-entry [`DiskManager::write_batch`]).
    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.write_batch(&[(id, page)])
    }

    /// Write a batch of pages back to disk. With double-write enabled the
    /// whole batch is appended to the DW file and fsynced *before* the
    /// first in-place write, so a crash at any point leaves every page
    /// recoverable: either its in-place image is intact, or its DW copy is
    /// durable and restores it at the next open.
    pub fn write_batch(&self, batch: &[(PageId, &Page)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        match &self.backend {
            Backend::Mem(pages) => {
                let mut pages = pages.lock();
                for (id, page) in batch {
                    let buf = pages
                        .get_mut(*id as usize)
                        .ok_or(StorageError::PageOutOfRange(*id))?;
                    buf.copy_from_slice(page.as_bytes());
                }
            }
            Backend::File { file, len } => {
                let n = len.load(Ordering::Relaxed);
                for (id, _) in batch {
                    if *id >= n {
                        return Err(StorageError::PageOutOfRange(*id));
                    }
                }
                // Stamp each image once; the identical bytes go to the DW
                // buffer and the in-place slot.
                let mut images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> =
                    Vec::with_capacity(batch.len());
                for (id, page) in batch {
                    let mut img = Box::new([0u8; PAGE_SIZE]);
                    img.copy_from_slice(page.as_bytes());
                    stamp_trailer(&mut img);
                    images.push((*id, img));
                }
                // Lock order dw -> file (matches `sync`), and the DW guard
                // is held across the in-place writes so a concurrent
                // checkpoint cannot truncate this batch mid-flight.
                let dw_guard = match &self.dw {
                    Some(dw) => {
                        let mut dwf = dw.lock();
                        dwf.seek(SeekFrom::End(0)).map_err(io_err)?;
                        for (id, img) in &images {
                            dwf.write_all(&id.to_le_bytes()).map_err(io_err)?;
                            self.faulted_image_write(&mut dwf, img)?;
                        }
                        self.faulted_sync(&dwf)?;
                        self.dw_batches.fetch_add(1, Ordering::Relaxed);
                        Some(dwf)
                    }
                    None => None,
                };
                let mut f = file.lock();
                for (id, img) in &images {
                    f.seek(SeekFrom::Start(*id * PAGE_SIZE as u64))
                        .map_err(io_err)?;
                    self.faulted_image_write(&mut f, img)?;
                }
                drop(f);
                drop(dw_guard);
            }
        }
        self.writes.fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Flush OS buffers for the page file (no-op for the memory backend).
    /// Called by checkpoints after [`crate::buffer::BufferPool::flush_all`].
    /// With double-write enabled, a successful data fsync makes every
    /// in-place image durable, so the spent DW batch is truncated here.
    pub fn sync(&self) -> Result<()> {
        if let Backend::File { file, .. } = &self.backend {
            match &self.dw {
                Some(dw) => {
                    let dwf = dw.lock();
                    let f = file.lock();
                    self.faulted_sync(&f)?;
                    drop(f);
                    dwf.set_len(0).map_err(io_err)?;
                    dwf.sync_data().map_err(io_err)?;
                }
                None => self.faulted_sync(&file.lock())?,
            }
        }
        Ok(())
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            pages_verified: self.pages_verified.load(Ordering::Relaxed),
            torn_pages_repaired: self.torn_repaired.load(Ordering::Relaxed),
            dw_batches: self.dw_batches.load(Ordering::Relaxed),
        }
    }

    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.pages_verified.store(0, Ordering::Relaxed);
        self.torn_repaired.store(0, Ordering::Relaxed);
        self.dw_batches.store(0, Ordering::Relaxed);
    }
}

fn open_rw(path: &Path) -> Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = DiskManager::new();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"data").unwrap();
        disk.write(id, &page).unwrap();
        let back = disk.read(id).unwrap();
        assert_eq!(back.get(0).unwrap(), b"data");
        let s = disk.stats();
        assert_eq!((s.reads, s.writes, s.allocations), (1, 1, 1));
    }

    #[test]
    fn out_of_range_read_fails() {
        let disk = DiskManager::new();
        assert!(matches!(disk.read(3), Err(StorageError::PageOutOfRange(3))));
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let disk = DiskManager::new();
        disk.allocate();
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = TempDir::new("disk");
        let path = dir.path().join("data.pages");

        let disk = DiskManager::open_file(&path).unwrap();
        assert!(disk.is_file_backed());
        let a = disk.allocate();
        let b = disk.allocate();
        let mut page = Page::new();
        page.insert(b"persistent").unwrap();
        disk.write(b, &page).unwrap();
        disk.sync().unwrap();
        // Fresh page reads back zeroed (slot_count == 0).
        assert_eq!(disk.read(a).unwrap().slot_count(), 0);
        drop(disk);

        // Reopen: contents survive.
        let disk = DiskManager::open_file(&path).unwrap();
        assert_eq!(disk.page_count(), 2);
        assert_eq!(disk.read(b).unwrap().get(0).unwrap(), b"persistent");
        assert!(matches!(disk.read(9), Err(StorageError::PageOutOfRange(9))));
    }

    #[test]
    fn ensure_allocated_is_idempotent() {
        let dir = TempDir::new("disk-ensure");
        let disk = DiskManager::open_file(&dir.path().join("data.pages")).unwrap();
        disk.ensure_allocated(4).unwrap();
        assert_eq!(disk.page_count(), 5);
        disk.ensure_allocated(2).unwrap();
        assert_eq!(disk.page_count(), 5);
    }

    #[test]
    fn file_reads_verify_checksums_and_detect_corruption() {
        let dir = TempDir::new("disk-crc");
        let path = dir.path().join("data.pages");
        let disk = DiskManager::open_file(&path).unwrap();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"verified").unwrap();
        disk.write(id, &page).unwrap();
        assert_eq!(disk.read(id).unwrap().get(0).unwrap(), b"verified");
        assert!(disk.stats().pages_verified >= 1);
        drop(disk);

        // Flip one byte mid-page: the read must fail typed, not serve it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let disk = DiskManager::open_file(&path).unwrap();
        assert_eq!(
            disk.read(id).unwrap_err(),
            StorageError::TornPage { page: id }
        );
    }

    #[test]
    fn doublewrite_repairs_a_torn_in_place_write() {
        let dir = TempDir::new("disk-dw");
        let path = dir.path().join("data.pages");
        let dw_path = dir.path().join("dw.db");
        let disk = DiskManager::open_file_dw(&path, &dw_path).unwrap();
        assert!(disk.doublewrite_enabled());
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"protected").unwrap();
        // Image write 0 is the DW append, write 1 the in-place copy: tear
        // the in-place copy halfway through.
        disk.set_fault_plan(FaultPlan {
            tear_write: Some((1, 4096)),
            drop_fsync: None,
        });
        assert!(disk.write(id, &page).is_err());
        drop(disk);

        // Reopen: the DW batch is durable and restores the torn page.
        let disk = DiskManager::open_file_dw(&path, &dw_path).unwrap();
        assert_eq!(disk.stats().torn_pages_repaired, 1);
        assert_eq!(disk.read(id).unwrap().get(0).unwrap(), b"protected");
        // The spent buffer is truncated after restore.
        assert_eq!(std::fs::metadata(&dw_path).unwrap().len(), 0);
    }

    #[test]
    fn torn_dw_entry_is_skipped_and_in_place_copy_survives() {
        let dir = TempDir::new("disk-dw-torn");
        let path = dir.path().join("data.pages");
        let dw_path = dir.path().join("dw.db");
        let disk = DiskManager::open_file_dw(&path, &dw_path).unwrap();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"old image").unwrap();
        disk.write(id, &page).unwrap();
        disk.sync().unwrap();
        // Now tear the *DW append* of the next write: the in-place old
        // image is never touched.
        page.insert(b"new image").unwrap();
        disk.set_fault_plan(FaultPlan {
            tear_write: Some((0, 100)),
            drop_fsync: None,
        });
        assert!(disk.write(id, &page).is_err());
        drop(disk);

        let disk = DiskManager::open_file_dw(&path, &dw_path).unwrap();
        assert_eq!(disk.stats().torn_pages_repaired, 0);
        let back = disk.read(id).unwrap();
        assert_eq!(back.get(0).unwrap(), b"old image");
        assert!(back.get(1).is_none(), "torn batch must not apply");
    }

    #[test]
    fn reclaimed_pages_are_reused_before_growth() {
        let disk = DiskManager::new();
        let a = disk.allocate();
        let b = disk.allocate();
        let c = disk.allocate();
        assert_eq!((a, b, c), (0, 1, 2));
        disk.reclaim(&[2, 1]);
        assert_eq!(disk.free_page_count(), 2);
        assert_eq!(disk.allocate(), 1, "lowest stranded id first");
        assert_eq!(disk.allocate(), 2);
        assert_eq!(disk.allocate(), 3, "free list exhausted: grow");
        assert_eq!(disk.page_count(), 4);
    }
}
