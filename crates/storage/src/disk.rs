//! Disk manager: the page store underneath the buffer pool.
//!
//! Two backends share one interface:
//!
//! - **memory** ([`DiskManager::new`]) — a growable array of page frames
//!   with precise read/write accounting. The paper's measurements depend on
//!   I/O *behaviour* (clustering, pathlength reduction, buffer hits), not on
//!   a physical spindle, so experiments and most tests run here;
//! - **file** ([`DiskManager::open_file`]) — a real page file on disk
//!   (`pages.db` under the database's data directory). Pages are read and
//!   written at `page_id * PAGE_SIZE` offsets; [`DiskManager::sync`] flushes
//!   OS buffers so checkpoints can bound redo work, and the write-ahead log
//!   ([`crate::wal`]) is flushed before any dirty page reaches this layer
//!   (WAL-before-data, enforced by the buffer pool).
//!
//! Both backends keep identical I/O counters so the cost model and the
//! benchmarks see the same accounting either way.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, StorageError};
use crate::page::{Page, PAGE_SIZE};

/// Identifies a page within the single database "file".
pub type PageId = u64;

/// I/O counters exposed by the disk manager.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
}

enum Backend {
    /// In-memory array of page frames.
    Mem(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
    /// A page file; `len` caches the allocated page count.
    File { file: Mutex<File>, len: AtomicU64 },
}

/// The page store: fixed-size pages addressed by [`PageId`], in memory or
/// backed by a file, with I/O counters.
pub struct DiskManager {
    backend: Backend,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

impl DiskManager {
    /// An in-memory disk (volatile; no durability).
    pub fn new() -> Self {
        DiskManager {
            backend: Backend::Mem(Mutex::new(Vec::new())),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        }
    }

    /// Open (or create) a file-backed page store at `path`. An existing
    /// file's pages become immediately addressable; a partial trailing page
    /// (from a torn write) is ignored.
    pub fn open_file(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len() / PAGE_SIZE as u64;
        Ok(DiskManager {
            backend: Backend::File {
                file: Mutex::new(file),
                len: AtomicU64::new(len),
            },
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        })
    }

    /// True when pages live in a real file (and survive process death).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backend, Backend::File { .. })
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> PageId {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Mem(pages) => {
                let mut pages = pages.lock();
                let id = pages.len() as PageId;
                pages.push(Box::new([0u8; PAGE_SIZE]));
                id
            }
            Backend::File { file, len } => {
                let file = file.lock();
                let id = len.load(Ordering::Relaxed);
                // Extend the file so the page is addressable; contents are
                // zero until first write-back.
                file.set_len((id + 1) * PAGE_SIZE as u64)
                    .expect("extend page file");
                len.store(id + 1, Ordering::Relaxed);
                id
            }
        }
    }

    /// Make sure pages `0..=id` exist (recovery replays allocations that
    /// may never have reached the file before the crash). Idempotent.
    pub fn ensure_allocated(&self, id: PageId) -> Result<()> {
        while self.page_count() <= id {
            self.allocate();
        }
        Ok(())
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        match &self.backend {
            Backend::Mem(pages) => pages.lock().len() as u64,
            Backend::File { len, .. } => len.load(Ordering::Relaxed),
        }
    }

    /// Read a page from disk.
    pub fn read(&self, id: PageId) -> Result<Page> {
        match &self.backend {
            Backend::Mem(pages) => {
                let pages = pages.lock();
                let buf = pages
                    .get(id as usize)
                    .ok_or(StorageError::PageOutOfRange(id))?;
                self.reads.fetch_add(1, Ordering::Relaxed);
                Page::from_bytes(&buf[..])
            }
            Backend::File { file, len } => {
                if id >= len.load(Ordering::Relaxed) {
                    return Err(StorageError::PageOutOfRange(id));
                }
                let mut file = file.lock();
                let mut buf = [0u8; PAGE_SIZE];
                file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
                    .map_err(io_err)?;
                file.read_exact(&mut buf).map_err(io_err)?;
                self.reads.fetch_add(1, Ordering::Relaxed);
                Page::from_bytes(&buf)
            }
        }
    }

    /// Write a page back to disk.
    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        match &self.backend {
            Backend::Mem(pages) => {
                let mut pages = pages.lock();
                let buf = pages
                    .get_mut(id as usize)
                    .ok_or(StorageError::PageOutOfRange(id))?;
                buf.copy_from_slice(page.as_bytes());
            }
            Backend::File { file, len } => {
                if id >= len.load(Ordering::Relaxed) {
                    return Err(StorageError::PageOutOfRange(id));
                }
                let mut file = file.lock();
                file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
                    .map_err(io_err)?;
                file.write_all(page.as_bytes()).map_err(io_err)?;
            }
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush OS buffers for the page file (no-op for the memory backend).
    /// Called by checkpoints after [`crate::buffer::BufferPool::flush_all`].
    pub fn sync(&self) -> Result<()> {
        if let Backend::File { file, .. } = &self.backend {
            file.lock().sync_data().map_err(io_err)?;
        }
        Ok(())
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = DiskManager::new();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"data").unwrap();
        disk.write(id, &page).unwrap();
        let back = disk.read(id).unwrap();
        assert_eq!(back.get(0).unwrap(), b"data");
        let s = disk.stats();
        assert_eq!((s.reads, s.writes, s.allocations), (1, 1, 1));
    }

    #[test]
    fn out_of_range_read_fails() {
        let disk = DiskManager::new();
        assert!(matches!(disk.read(3), Err(StorageError::PageOutOfRange(3))));
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let disk = DiskManager::new();
        disk.allocate();
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = TempDir::new("disk");
        let path = dir.path().join("data.pages");

        let disk = DiskManager::open_file(&path).unwrap();
        assert!(disk.is_file_backed());
        let a = disk.allocate();
        let b = disk.allocate();
        let mut page = Page::new();
        page.insert(b"persistent").unwrap();
        disk.write(b, &page).unwrap();
        disk.sync().unwrap();
        // Fresh page reads back zeroed (slot_count == 0).
        assert_eq!(disk.read(a).unwrap().slot_count(), 0);
        drop(disk);

        // Reopen: contents survive.
        let disk = DiskManager::open_file(&path).unwrap();
        assert_eq!(disk.page_count(), 2);
        assert_eq!(disk.read(b).unwrap().get(0).unwrap(), b"persistent");
        assert!(matches!(disk.read(9), Err(StorageError::PageOutOfRange(9))));
    }

    #[test]
    fn ensure_allocated_is_idempotent() {
        let dir = TempDir::new("disk-ensure");
        let disk = DiskManager::open_file(&dir.path().join("data.pages")).unwrap();
        disk.ensure_allocated(4).unwrap();
        assert_eq!(disk.page_count(), 5);
        disk.ensure_allocated(2).unwrap();
        assert_eq!(disk.page_count(), 5);
    }
}
