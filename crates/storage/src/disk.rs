//! Simulated disk manager.
//!
//! The paper's measurements depend on I/O behaviour (clustering, pathlength
//! reduction, buffer hits), not on a physical spindle, so the disk here is an
//! in-memory array of page frames with precise read/write accounting and an
//! optional per-I/O cost that the cost model and the experiments consult.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, StorageError};
use crate::page::{Page, PAGE_SIZE};

/// Identifies a page within the single database "file".
pub type PageId = u64;

/// I/O counters exposed by the disk manager.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
}

/// An in-memory disk: a growable array of fixed-size pages with I/O counters.
pub struct DiskManager {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager {
    pub fn new() -> Self {
        DiskManager {
            pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(Box::new([0u8; PAGE_SIZE]));
        self.allocations.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    /// Read a page from "disk".
    pub fn read(&self, id: PageId) -> Result<Page> {
        let pages = self.pages.lock();
        let buf = pages
            .get(id as usize)
            .ok_or(StorageError::PageOutOfRange(id))?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Page::from_bytes(&buf[..])
    }

    /// Write a page back to "disk".
    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let mut pages = self.pages.lock();
        let buf = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageOutOfRange(id))?;
        buf.copy_from_slice(page.as_bytes());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = DiskManager::new();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"data").unwrap();
        disk.write(id, &page).unwrap();
        let back = disk.read(id).unwrap();
        assert_eq!(back.get(0).unwrap(), b"data");
        let s = disk.stats();
        assert_eq!((s.reads, s.writes, s.allocations), (1, 1, 1));
    }

    #[test]
    fn out_of_range_read_fails() {
        let disk = DiskManager::new();
        assert!(matches!(disk.read(3), Err(StorageError::PageOutOfRange(3))));
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let disk = DiskManager::new();
        disk.allocate();
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }
}
