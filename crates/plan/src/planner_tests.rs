//! Planner tests: plan shapes for the paper's queries.

use std::sync::Arc;

use xnf_qgm::{build_select_query, build_xnf_query};
use xnf_rewrite::{rewrite, RewriteOptions};
use xnf_sql::{parse_select, parse_xnf};
use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema};

use crate::physical::PhysPlan;
use crate::planner::{plan_query, PlanOptions};

fn paper_catalog() -> Catalog {
    let cat = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 256)));
    cat.create_table(
        "DEPT",
        Schema::from_pairs(&[
            ("dno", DataType::Int),
            ("dname", DataType::Str),
            ("loc", DataType::Str),
        ]),
    )
    .unwrap();
    cat.create_table(
        "EMP",
        Schema::from_pairs(&[
            ("eno", DataType::Int),
            ("ename", DataType::Str),
            ("edno", DataType::Int),
            ("sal", DataType::Double),
        ]),
    )
    .unwrap();
    cat.create_table(
        "SKILLS",
        Schema::from_pairs(&[("sno", DataType::Int), ("sname", DataType::Str)]),
    )
    .unwrap();
    cat.create_table(
        "EMPSKILLS",
        Schema::from_pairs(&[("eseno", DataType::Int), ("essno", DataType::Int)]),
    )
    .unwrap();
    cat
}

fn plan_sql(cat: &Catalog, sql: &str, opts: PlanOptions) -> crate::physical::Qep {
    let q = parse_select(sql).unwrap();
    let mut g = build_select_query(cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    plan_query(cat, &g, opts).unwrap()
}

#[test]
fn simple_scan_plan() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT ename FROM EMP WHERE sal > 100",
        PlanOptions::default(),
    );
    assert_eq!(qep.outputs.len(), 1);
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("SeqScan(EMP)"), "{explain}");
    assert!(explain.contains("Project"), "{explain}");
    // Filter is pushed into the scan.
    assert!(explain.contains("filter=[(#3 > 100)]"), "{explain}");
}

#[test]
fn exists_plans_as_hash_semijoin() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashSemiJoin"), "{explain}");
    assert!(!explain.contains("SubqueryFilter"), "{explain}");
}

#[test]
fn naive_mode_plans_subquery_filter() {
    let cat = paper_catalog();
    let q = parse_select(
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    )
    .unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    rewrite(
        &mut g,
        RewriteOptions {
            e_to_f: false,
            simplify: true,
        },
    )
    .unwrap();
    let qep = plan_query(&cat, &g, PlanOptions::default()).unwrap();
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("SubqueryFilter"), "{explain}");
}

#[test]
fn index_access_path_selected() {
    let cat = paper_catalog();
    let t = cat.table("DEPT").unwrap();
    t.create_index("dept_loc", vec![2], false).unwrap();
    let qep = plan_sql(
        &cat,
        "SELECT * FROM DEPT WHERE loc = 'ARC'",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("IndexEq(DEPT.dept_loc)"), "{explain}");

    // With indexes disabled, back to a scan.
    let qep = plan_sql(
        &cat,
        "SELECT * FROM DEPT WHERE loc = 'ARC'",
        PlanOptions {
            use_indexes: false,
            ..Default::default()
        },
    );
    assert!(qep.outputs[0].plan.explain().contains("SeqScan(DEPT)"));
}

#[test]
fn join_plans_as_hash_join() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashJoin"), "{explain}");
}

#[test]
fn xnf_plan_materialises_shared_components() {
    let cat = paper_catalog();
    let q = parse_xnf(
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE *",
    )
    .unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    let qep = plan_query(&cat, &g, PlanOptions::default()).unwrap();

    // Both components are shared (outputs + connection reference them).
    assert!(qep.shared.len() >= 2, "{}", qep.explain());
    assert_eq!(qep.outputs.len(), 3);
    // The connection plan scans both shared results.
    let conn = qep.outputs.iter().find(|o| o.name == "employment").unwrap();
    let shared_scans = conn
        .plan
        .count_ops(&mut |p| matches!(p, PhysPlan::SharedScan { .. }));
    assert_eq!(shared_scans, 2, "{}", conn.plan.explain());
}

#[test]
fn group_by_plan_shape() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT edno, COUNT(*) AS n, AVG(sal) FROM EMP GROUP BY edno HAVING COUNT(*) > 2",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashAggregate"), "{explain}");
}

#[test]
fn order_by_and_limit_wrap_table_output() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT ename, sal FROM EMP ORDER BY sal DESC LIMIT 3",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("Limit 3"), "{explain}");
    assert!(explain.contains("Sort #1 DESC"), "{explain}");
}

#[test]
fn union_plan_dedupes() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT eno FROM EMP UNION SELECT sno FROM SKILLS",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("UnionAll(2)"), "{explain}");
    assert!(explain.contains("HashDistinct"), "{explain}");
}

/// A catalog whose EMP/DEPT tables actually hold rows, so the
/// parallelize pass's live page-count gate opens.
fn populated_catalog() -> Catalog {
    let cat = paper_catalog();
    let emp = cat.table("EMP").unwrap();
    let dept = cat.table("DEPT").unwrap();
    for d in 0..10 {
        dept.insert(&xnf_storage::Tuple::new(vec![
            xnf_storage::Value::Int(d),
            xnf_storage::Value::Str(format!("D{d}")),
            xnf_storage::Value::Str("ARC".into()),
        ]))
        .unwrap();
    }
    for e in 0..200 {
        emp.insert(&xnf_storage::Tuple::new(vec![
            xnf_storage::Value::Int(e),
            xnf_storage::Value::Str(format!("E{e}")),
            xnf_storage::Value::Int(e % 10),
            xnf_storage::Value::Double(100.0 + e as f64),
        ]))
        .unwrap();
    }
    cat
}

fn parallel_opts(dop: usize) -> PlanOptions {
    PlanOptions {
        dop,
        parallel_min_pages: 1,
        // Exercise real dop-2/4 plans even on a single-core test host.
        allow_oversubscribe: true,
        ..Default::default()
    }
}

#[test]
fn dop_one_reproduces_serial_plans_exactly() {
    let cat = populated_catalog();
    for sql in [
        "SELECT ename FROM EMP WHERE sal > 100",
        "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
        "SELECT edno, COUNT(*) FROM EMP GROUP BY edno",
    ] {
        let serial = plan_sql(&cat, sql, PlanOptions::default());
        let one = plan_sql(&cat, sql, parallel_opts(1));
        assert_eq!(serial.explain(), one.explain(), "{sql}");
        for word in ["Parallel", "Exchange", "Morsel"] {
            assert!(!one.explain().contains(word), "{sql}: {}", one.explain());
        }
        assert!(one.explain().contains("dop: 1\n"), "{}", one.explain());
    }
}

#[test]
fn parallel_scan_plan_shape() {
    let cat = populated_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT ename FROM EMP WHERE sal > 150",
        parallel_opts(4),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("ExchangeGather(dop=4)"), "{explain}");
    assert!(explain.contains("ParallelSeqScan(EMP)"), "{explain}");
    assert!(explain.contains("filter=[(#3 > 150)]"), "{explain}");
    assert!(qep.explain().contains("dop: 4\n"), "{}", qep.explain());
}

#[test]
fn parallel_join_plan_shape() {
    let cat = populated_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno",
        parallel_opts(4),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("ParallelHashJoin"), "{explain}");
    assert!(
        explain.contains("ExchangeHashPartition(dop=4)"),
        "{explain}"
    );
    assert!(explain.contains("ExchangeGather(dop=4)"), "{explain}");
    // No serial HashJoin remains on this single-join query.
    let serial_joins = qep.outputs[0]
        .plan
        .count_ops(&mut |p| matches!(p, PhysPlan::HashJoin { .. }));
    assert_eq!(serial_joins, 0, "{explain}");
}

#[test]
fn parallel_aggregate_plan_shape() {
    let cat = populated_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT edno, COUNT(*) FROM EMP GROUP BY edno",
        parallel_opts(4),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(
        explain.contains("ParallelHashAggregate(dop=4)"),
        "{explain}"
    );
    assert!(explain.contains("ParallelSeqScan(EMP)"), "{explain}");
    // The aggregate IS the region root: no gather above or below it.
    assert!(!explain.contains("ExchangeGather"), "{explain}");
}

#[test]
fn small_tables_stay_serial() {
    let cat = populated_catalog();
    let opts = PlanOptions {
        dop: 4,
        parallel_min_pages: 1_000_000,
        allow_oversubscribe: true,
        ..Default::default()
    };
    let qep = plan_sql(&cat, "SELECT ename FROM EMP WHERE sal > 100", opts);
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("SeqScan(EMP)"), "{explain}");
    assert!(!explain.contains("Parallel"), "{explain}");
}

#[test]
fn dop_clamps_to_host_cores_unless_oversubscribed() {
    let cat = populated_catalog();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let opts = PlanOptions {
        dop: 1024,
        parallel_min_pages: 1,
        ..Default::default()
    };
    let qep = plan_sql(&cat, "SELECT ename FROM EMP WHERE sal > 100", opts);
    assert_eq!(qep.dop, cores, "{}", qep.explain());

    // The escape hatch keeps the requested dop verbatim.
    let qep = plan_sql(
        &cat,
        "SELECT ename FROM EMP WHERE sal > 100",
        parallel_opts(1024),
    );
    assert_eq!(qep.dop, 1024, "{}", qep.explain());
}

#[test]
fn limit_without_sort_stays_serial_for_early_out() {
    let cat = populated_catalog();
    let qep = plan_sql(&cat, "SELECT ename FROM EMP LIMIT 5", parallel_opts(4));
    let explain = qep.outputs[0].plan.explain();
    assert!(!explain.contains("Parallel"), "{explain}");

    // But a blocking Sort under the Limit parallelizes its input.
    let qep = plan_sql(
        &cat,
        "SELECT ename, sal FROM EMP ORDER BY sal DESC LIMIT 5",
        parallel_opts(4),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("Limit 5"), "{explain}");
    assert!(explain.contains("ParallelSeqScan(EMP)"), "{explain}");
}
