//! Planner tests: plan shapes for the paper's queries.

use std::sync::Arc;

use xnf_qgm::{build_select_query, build_xnf_query};
use xnf_rewrite::{rewrite, RewriteOptions};
use xnf_sql::{parse_select, parse_xnf};
use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema};

use crate::physical::PhysPlan;
use crate::planner::{plan_query, PlanOptions};

fn paper_catalog() -> Catalog {
    let cat = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 256)));
    cat.create_table(
        "DEPT",
        Schema::from_pairs(&[
            ("dno", DataType::Int),
            ("dname", DataType::Str),
            ("loc", DataType::Str),
        ]),
    )
    .unwrap();
    cat.create_table(
        "EMP",
        Schema::from_pairs(&[
            ("eno", DataType::Int),
            ("ename", DataType::Str),
            ("edno", DataType::Int),
            ("sal", DataType::Double),
        ]),
    )
    .unwrap();
    cat.create_table(
        "SKILLS",
        Schema::from_pairs(&[("sno", DataType::Int), ("sname", DataType::Str)]),
    )
    .unwrap();
    cat.create_table(
        "EMPSKILLS",
        Schema::from_pairs(&[("eseno", DataType::Int), ("essno", DataType::Int)]),
    )
    .unwrap();
    cat
}

fn plan_sql(cat: &Catalog, sql: &str, opts: PlanOptions) -> crate::physical::Qep {
    let q = parse_select(sql).unwrap();
    let mut g = build_select_query(cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    plan_query(cat, &g, opts).unwrap()
}

#[test]
fn simple_scan_plan() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT ename FROM EMP WHERE sal > 100",
        PlanOptions::default(),
    );
    assert_eq!(qep.outputs.len(), 1);
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("SeqScan(EMP)"), "{explain}");
    assert!(explain.contains("Project"), "{explain}");
    // Filter is pushed into the scan.
    assert!(explain.contains("filter=[(#3 > 100)]"), "{explain}");
}

#[test]
fn exists_plans_as_hash_semijoin() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashSemiJoin"), "{explain}");
    assert!(!explain.contains("SubqueryFilter"), "{explain}");
}

#[test]
fn naive_mode_plans_subquery_filter() {
    let cat = paper_catalog();
    let q = parse_select(
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    )
    .unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    rewrite(
        &mut g,
        RewriteOptions {
            e_to_f: false,
            simplify: true,
        },
    )
    .unwrap();
    let qep = plan_query(&cat, &g, PlanOptions::default()).unwrap();
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("SubqueryFilter"), "{explain}");
}

#[test]
fn index_access_path_selected() {
    let cat = paper_catalog();
    let t = cat.table("DEPT").unwrap();
    t.create_index("dept_loc", vec![2], false).unwrap();
    let qep = plan_sql(
        &cat,
        "SELECT * FROM DEPT WHERE loc = 'ARC'",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("IndexEq(DEPT.dept_loc)"), "{explain}");

    // With indexes disabled, back to a scan.
    let qep = plan_sql(
        &cat,
        "SELECT * FROM DEPT WHERE loc = 'ARC'",
        PlanOptions {
            use_indexes: false,
            ..Default::default()
        },
    );
    assert!(qep.outputs[0].plan.explain().contains("SeqScan(DEPT)"));
}

#[test]
fn join_plans_as_hash_join() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT e.ename, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashJoin"), "{explain}");
}

#[test]
fn xnf_plan_materialises_shared_components() {
    let cat = paper_catalog();
    let q = parse_xnf(
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE *",
    )
    .unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    let qep = plan_query(&cat, &g, PlanOptions::default()).unwrap();

    // Both components are shared (outputs + connection reference them).
    assert!(qep.shared.len() >= 2, "{}", qep.explain());
    assert_eq!(qep.outputs.len(), 3);
    // The connection plan scans both shared results.
    let conn = qep.outputs.iter().find(|o| o.name == "employment").unwrap();
    let shared_scans = conn
        .plan
        .count_ops(&mut |p| matches!(p, PhysPlan::SharedScan { .. }));
    assert_eq!(shared_scans, 2, "{}", conn.plan.explain());
}

#[test]
fn group_by_plan_shape() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT edno, COUNT(*) AS n, AVG(sal) FROM EMP GROUP BY edno HAVING COUNT(*) > 2",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("HashAggregate"), "{explain}");
}

#[test]
fn order_by_and_limit_wrap_table_output() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT ename, sal FROM EMP ORDER BY sal DESC LIMIT 3",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("Limit 3"), "{explain}");
    assert!(explain.contains("Sort #1 DESC"), "{explain}");
}

#[test]
fn union_plan_dedupes() {
    let cat = paper_catalog();
    let qep = plan_sql(
        &cat,
        "SELECT eno FROM EMP UNION SELECT sno FROM SKILLS",
        PlanOptions::default(),
    );
    let explain = qep.outputs[0].plan.explain();
    assert!(explain.contains("UnionAll(2)"), "{explain}");
    assert!(explain.contains("HashDistinct"), "{explain}");
}
