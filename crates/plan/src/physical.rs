//! Physical plans and physical expressions.
//!
//! A physical expression references *slots* of the current row (and, for
//! correlated subqueries, columns of outer rows through a binding context).
//! A physical plan is a tree of operators that the execution engine
//! interprets under the **batch protocol**: every operator exchanges
//! [`RowBatch`]-sized chunks of rows (`Operator::next_batch` in `xnf-exec`,
//! default [`DEFAULT_BATCH_SIZE`] rows per chunk, tunable through
//! [`PlanOptions::batch_size`]) rather than single tuples, so virtual
//! dispatch and per-operator set-up amortise over a whole chunk.
//!
//! Shared subexpressions ("table queues" in Starburst terminology) appear
//! as [`PhysPlan::SharedScan`] nodes referring to a materialised batch
//! sequence that the execution engine computes once. Shared scans expose
//! the tuple's position as a leading *rowid* column — the system-generated
//! identifier that CO connection streams project (Sect. 5.0 of the paper).
//! Queries over materialized views plan as [`PhysPlan::MatViewScan`] (or
//! [`PhysPlan::IndexEq`] over the backing table when a maintenance index
//! matches), surfacing in EXPLAIN as `matview scan`.
//!
//! [`RowBatch`]: ../xnf_exec/batch/struct.RowBatch.html
//! [`PlanOptions::batch_size`]: crate::PlanOptions#structfield.batch_size

use std::fmt;

use xnf_qgm::QunId;
use xnf_sql::{AggFunc, BinOp, ScalarFunc, UnaryOp};
use xnf_storage::Value;

/// Identifier of a shared (materialised) subplan.
pub type SharedId = usize;

/// Default row capacity of one execution batch: operators exchange
/// `RowBatch`-sized chunks instead of single rows, so virtual dispatch
/// and per-operator bookkeeping amortise over this many tuples.
/// Tunable per query via [`crate::PlanOptions::batch_size`].
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A physical scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    Literal(Value),
    /// Positional parameter, resolved from the execution-time binding table.
    Param(usize),
    /// Slot in the operator's current row.
    Col(usize),
    /// Correlated reference resolved from the outer-binding context.
    Outer {
        qun: QunId,
        col: usize,
    },
    Unary {
        op: UnaryOp,
        expr: Box<PhysExpr>,
    },
    Binary {
        left: Box<PhysExpr>,
        op: BinOp,
        right: Box<PhysExpr>,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Func {
        func: ScalarFunc,
        args: Vec<PhysExpr>,
    },
    /// Reference to an aggregate result slot (inside HashAggregate output
    /// expressions only).
    AggRef(usize),
}

impl PhysExpr {
    pub fn col(i: usize) -> PhysExpr {
        PhysExpr::Col(i)
    }
}

impl fmt::Display for PhysExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysExpr::Literal(v) => write!(f, "{v}"),
            PhysExpr::Param(i) => write!(f, "?{i}"),
            PhysExpr::Col(i) => write!(f, "#{i}"),
            PhysExpr::Outer { qun, col } => write!(f, "outer(q{qun}.c{col})"),
            PhysExpr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "-{expr}"),
            PhysExpr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "NOT({expr})"),
            PhysExpr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            PhysExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{pattern}'",
                    if *negated { "NOT " } else { "" }
                )
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(",")
                )
            }
            PhysExpr::Func { func, args } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "{func}({})", items.join(","))
            }
            PhysExpr::AggRef(i) => write!(f, "agg#{i}"),
        }
    }
}

/// Aggregate computation spec for [`PhysPlan::HashAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Argument expression over the input row; `None` = COUNT(*).
    pub arg: Option<PhysExpr>,
    pub distinct: bool,
}

/// Sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    pub col: usize,
    pub desc: bool,
}

/// Physical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Constant relation (used for FROM-less selects).
    Values {
        rows: Vec<Vec<PhysExpr>>,
    },
    /// Full scan of a base table with a residual filter.
    SeqScan {
        table: String,
        filter: Vec<PhysExpr>,
    },
    /// Equality index lookup: `key` expressions must be uncorrelated
    /// constants at plan time (literal-only); residual filter applies after.
    IndexEq {
        table: String,
        index: String,
        key: Vec<PhysExpr>,
        filter: Vec<PhysExpr>,
    },
    /// Scan of a materialised shared subplan. Emits `[rowid, cols...]`.
    SharedScan {
        id: SharedId,
    },
    /// Full scan of a materialized view's backing table with a residual
    /// filter — same runtime behaviour as [`PhysPlan::SeqScan`] (the name
    /// resolves through the catalog's backing-table fallback), but labelled
    /// `matview scan` in EXPLAIN so plans show where stored view contents
    /// are served from.
    MatViewScan {
        view: String,
        filter: Vec<PhysExpr>,
    },
    Filter {
        input: Box<PhysPlan>,
        preds: Vec<PhysExpr>,
    },
    Project {
        input: Box<PhysPlan>,
        exprs: Vec<PhysExpr>,
    },
    /// Hash equi-join; output row = left ++ right.
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        /// Residual predicates over the combined row.
        residual: Vec<PhysExpr>,
    },
    /// Nested-loops join with an arbitrary predicate over the combined row.
    NlJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        preds: Vec<PhysExpr>,
    },
    /// Hash semijoin / antijoin: emits outer rows with (no) inner match.
    HashSemiJoin {
        outer: Box<PhysPlan>,
        inner: Box<PhysPlan>,
        outer_keys: Vec<PhysExpr>,
        /// Keys over the inner row.
        inner_keys: Vec<PhysExpr>,
        /// Residual over outer ++ inner (must hold for a match).
        residual: Vec<PhysExpr>,
        anti: bool,
    },
    /// Nested-loops semijoin for non-equi conditions.
    NlSemiJoin {
        outer: Box<PhysPlan>,
        inner: Box<PhysPlan>,
        preds: Vec<PhysExpr>,
        anti: bool,
    },
    /// Tuple-at-a-time correlated subquery evaluation: for every input row,
    /// execute `subplan` with the row's leg values bound in the context; the
    /// row passes if the subplan yields (anti: does not yield) a row.
    /// This is the *naive* strategy of Sect. 3.2 that E-to-F replaces.
    SubqueryFilter {
        input: Box<PhysPlan>,
        subplan: Box<PhysPlan>,
        /// `(qun, offset, width)`: which slice of the input row binds which
        /// outer quantifier for the subplan's `Outer` references.
        bindings: Vec<(QunId, usize, usize)>,
        anti: bool,
    },
    /// Hash aggregation. Output row = group values ++ aggregate results,
    /// then `output` expressions produce the head (AggRef(i) = agg slot i);
    /// `having` filters on the same basis.
    HashAggregate {
        input: Box<PhysPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        having: Vec<PhysExpr>,
        output: Vec<PhysExpr>,
    },
    HashDistinct {
        input: Box<PhysPlan>,
    },
    /// Concatenation of inputs (UNION ALL); wrap in HashDistinct for UNION.
    UnionAll {
        inputs: Vec<PhysPlan>,
    },
    Sort {
        input: Box<PhysPlan>,
        specs: Vec<SortSpec>,
    },
    Limit {
        input: Box<PhysPlan>,
        n: u64,
    },
    /// Morsel-driven parallel scan of a base table (or a materialized
    /// view's backing table): N workers pull page morsels from a shared
    /// atomic dispenser and run their copy of the enclosing worker
    /// pipeline over them. Valid only inside a parallel region rooted at
    /// [`PhysPlan::ExchangeGather`] or [`PhysPlan::ParallelHashAggregate`].
    ParallelSeqScan {
        table: String,
        filter: Vec<PhysExpr>,
    },
    /// Parallel-region root: runs `input` (a worker pipeline of parallel
    /// scans, filters, projections and parallel join probes) on `dop`
    /// workers and merges their batch streams in morsel order, so the
    /// gathered output has exactly the serial plan's row order.
    ExchangeGather {
        input: Box<PhysPlan>,
        dop: usize,
    },
    /// Build-side exchange under [`PhysPlan::ParallelHashJoin`]: the
    /// coordinator drains `input` once (in serial row order) and hash-
    /// partitions its rows by `keys` into `dop` partition build tables,
    /// each filled by its own builder thread.
    ExchangeHashPartition {
        input: Box<PhysPlan>,
        keys: Vec<PhysExpr>,
        dop: usize,
    },
    /// Partitioned parallel hash equi-join: the probe side runs inside the
    /// worker pipeline; each probe row hashes its key to pick the build
    /// partition. `build` must be an [`PhysPlan::ExchangeHashPartition`].
    /// Output row = probe ++ build, like [`PhysPlan::HashJoin`].
    ParallelHashJoin {
        probe: Box<PhysPlan>,
        build: Box<PhysPlan>,
        probe_keys: Vec<PhysExpr>,
        residual: Vec<PhysExpr>,
    },
    /// Parallel-region root for partial→final aggregation: `dop` workers
    /// fold their morsels into partial per-group accumulator tables; the
    /// coordinator merges the partials, then applies HAVING and the output
    /// expressions exactly like [`PhysPlan::HashAggregate`].
    ParallelHashAggregate {
        input: Box<PhysPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        having: Vec<PhysExpr>,
        output: Vec<PhysExpr>,
        dop: usize,
    },
}

impl PhysPlan {
    /// Pretty EXPLAIN output.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(0, &mut s);
        s
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::Values { rows } => {
                let _ = writeln!(out, "{pad}Values({} rows)", rows.len());
            }
            PhysPlan::SeqScan { table, filter } => {
                let _ = writeln!(out, "{pad}SeqScan({table}) filter={}", fmt_preds(filter));
            }
            PhysPlan::IndexEq {
                table,
                index,
                key,
                filter,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexEq({table}.{index}) key={} filter={}",
                    fmt_exprs(key),
                    fmt_preds(filter)
                );
            }
            PhysPlan::SharedScan { id } => {
                let _ = writeln!(out, "{pad}SharedScan(cse{id})");
            }
            PhysPlan::MatViewScan { view, filter } => {
                let _ = writeln!(
                    out,
                    "{pad}matview scan({view}) filter={}",
                    fmt_preds(filter)
                );
            }
            PhysPlan::Filter { input, preds } => {
                let _ = writeln!(out, "{pad}Filter {}", fmt_preds(preds));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::Project { input, exprs } => {
                let _ = writeln!(out, "{pad}Project {}", fmt_exprs(exprs));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin l={} r={} residual={}",
                    fmt_exprs(left_keys),
                    fmt_exprs(right_keys),
                    fmt_preds(residual)
                );
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysPlan::NlJoin { left, right, preds } => {
                let _ = writeln!(out, "{pad}NlJoin {}", fmt_preds(preds));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysPlan::HashSemiJoin {
                outer,
                inner,
                outer_keys,
                inner_keys,
                residual,
                anti,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Hash{}Join o={} i={} residual={}",
                    if *anti { "Anti" } else { "Semi" },
                    fmt_exprs(outer_keys),
                    fmt_exprs(inner_keys),
                    fmt_preds(residual)
                );
                outer.explain_into(depth + 1, out);
                inner.explain_into(depth + 1, out);
            }
            PhysPlan::NlSemiJoin {
                outer,
                inner,
                preds,
                anti,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Nl{}Join {}",
                    if *anti { "Anti" } else { "Semi" },
                    fmt_preds(preds)
                );
                outer.explain_into(depth + 1, out);
                inner.explain_into(depth + 1, out);
            }
            PhysPlan::SubqueryFilter {
                input,
                subplan,
                anti,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}SubqueryFilter{} (tuple-at-a-time)",
                    if *anti { " NOT" } else { "" }
                );
                input.explain_into(depth + 1, out);
                subplan.explain_into(depth + 1, out);
            }
            PhysPlan::HashAggregate {
                input, group, aggs, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate group={} aggs={}",
                    fmt_exprs(group),
                    aggs.len()
                );
                input.explain_into(depth + 1, out);
            }
            PhysPlan::HashDistinct { input } => {
                let _ = writeln!(out, "{pad}HashDistinct");
                input.explain_into(depth + 1, out);
            }
            PhysPlan::UnionAll { inputs } => {
                let _ = writeln!(out, "{pad}UnionAll({})", inputs.len());
                for i in inputs {
                    i.explain_into(depth + 1, out);
                }
            }
            PhysPlan::Sort { input, specs } => {
                let keys: Vec<String> = specs
                    .iter()
                    .map(|s| format!("#{}{}", s.col, if s.desc { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort {}", keys.join(", "));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}Limit {n}");
                input.explain_into(depth + 1, out);
            }
            PhysPlan::ParallelSeqScan { table, filter } => {
                let _ = writeln!(
                    out,
                    "{pad}ParallelSeqScan({table}) filter={}",
                    fmt_preds(filter)
                );
            }
            PhysPlan::ExchangeGather { input, dop } => {
                let _ = writeln!(out, "{pad}ExchangeGather(dop={dop}) merge=morsel-order");
                input.explain_into(depth + 1, out);
            }
            PhysPlan::ExchangeHashPartition { input, keys, dop } => {
                let _ = writeln!(
                    out,
                    "{pad}ExchangeHashPartition(dop={dop}) keys={}",
                    fmt_exprs(keys)
                );
                input.explain_into(depth + 1, out);
            }
            PhysPlan::ParallelHashJoin {
                probe,
                build,
                probe_keys,
                residual,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}ParallelHashJoin p={} residual={}",
                    fmt_exprs(probe_keys),
                    fmt_preds(residual)
                );
                probe.explain_into(depth + 1, out);
                build.explain_into(depth + 1, out);
            }
            PhysPlan::ParallelHashAggregate {
                input,
                group,
                aggs,
                dop,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}ParallelHashAggregate(dop={dop}) group={} aggs={}",
                    fmt_exprs(group),
                    aggs.len()
                );
                input.explain_into(depth + 1, out);
            }
        }
    }

    /// Count operator nodes of a given kind name (used by experiments).
    pub fn count_ops(&self, pred: &mut impl FnMut(&PhysPlan) -> bool) -> usize {
        let mut n = if pred(self) { 1 } else { 0 };
        match self {
            PhysPlan::Values { .. }
            | PhysPlan::SeqScan { .. }
            | PhysPlan::IndexEq { .. }
            | PhysPlan::SharedScan { .. }
            | PhysPlan::MatViewScan { .. }
            | PhysPlan::ParallelSeqScan { .. } => {}
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::HashDistinct { input }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::HashAggregate { input, .. }
            | PhysPlan::ExchangeGather { input, .. }
            | PhysPlan::ExchangeHashPartition { input, .. }
            | PhysPlan::ParallelHashAggregate { input, .. } => n += input.count_ops(pred),
            PhysPlan::HashJoin { left, right, .. } | PhysPlan::NlJoin { left, right, .. } => {
                n += left.count_ops(pred) + right.count_ops(pred);
            }
            PhysPlan::ParallelHashJoin { probe, build, .. } => {
                n += probe.count_ops(pred) + build.count_ops(pred);
            }
            PhysPlan::HashSemiJoin { outer, inner, .. }
            | PhysPlan::NlSemiJoin { outer, inner, .. } => {
                n += outer.count_ops(pred) + inner.count_ops(pred);
            }
            PhysPlan::SubqueryFilter { input, subplan, .. } => {
                n += input.count_ops(pred) + subplan.count_ops(pred);
            }
            PhysPlan::UnionAll { inputs } => {
                for i in inputs {
                    n += i.count_ops(pred);
                }
            }
        }
        n
    }
}

fn fmt_exprs(es: &[PhysExpr]) -> String {
    let v: Vec<String> = es.iter().map(|e| e.to_string()).collect();
    format!("[{}]", v.join(", "))
}

fn fmt_preds(es: &[PhysExpr]) -> String {
    if es.is_empty() {
        "[]".to_string()
    } else {
        fmt_exprs(es)
    }
}

/// A complete executable query: shared subplans (in dependency order — a
/// shared plan may reference lower-numbered shared ids only) plus the output
/// streams.
#[derive(Debug, Clone)]
pub struct Qep {
    /// Materialised common subexpressions ("table queues").
    pub shared: Vec<PhysPlan>,
    /// Output streams in delivery order, with their descriptors.
    pub outputs: Vec<QepOutput>,
    /// Row capacity of the batches the executor streams between operators
    /// (and materialises table queues in).
    pub batch_size: usize,
    /// Degree of parallelism the plans were compiled for: worker count of
    /// every parallel region and the cap on concurrent output-stream
    /// delivery. 1 = fully serial plans (no parallel operators).
    pub dop: usize,
}

/// One output stream of a QEP.
#[derive(Debug, Clone)]
pub struct QepOutput {
    pub name: String,
    pub kind: xnf_qgm::OutputKind,
    pub plan: PhysPlan,
    /// Column names of the stream.
    pub columns: Vec<String>,
}

impl Qep {
    pub fn explain(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "mode: batch pipeline (batch_size={})\n",
            self.batch_size
        ));
        // Worker count of every parallel region below (and the cap on
        // concurrent output-stream delivery); 1 = fully serial plans.
        s.push_str(&format!("dop: {}\n", self.dop));
        // Every scan/index lookup of a run filters tuple versions against
        // one MVCC snapshot (the executor reports which via
        // `ExecStats::snapshot_seq` / `rows_skipped_visibility`).
        s.push_str("visibility: snapshot (MVCC begin/end stamps)\n");
        for (i, p) in self.shared.iter().enumerate() {
            s.push_str(&format!("shared cse{i}:\n"));
            s.push_str(&p.explain());
        }
        for o in &self.outputs {
            s.push_str(&format!("output '{}' ({:?}):\n", o.name, o.kind));
            s.push_str(&o.plan.explain());
        }
        s
    }
}
