//! # xnf-plan — plan optimization and refinement
//!
//! The "plan optimization" stage of the paper's pipeline (Sect. 4.4 /
//! Fig. 2): lowers rewritten (NF) QGM graphs into executable physical
//! plans ([`physical::Qep`]) — shared-subexpression materialisation
//! ("table queues", Fig. 6), access-path selection, DP join ordering,
//! hash (semi)joins, aggregate lowering, and the tuple-at-a-time
//! correlated-subquery operator kept for the naive baseline of Fig. 3.
//! Materialized-view references plan as [`PhysPlan::MatViewScan`]
//! (`matview scan` in EXPLAIN) or index lookups over backing storage.
//!
//! Entry point: [`plan_query`] (QGM → [`Qep`]), with knobs in
//! [`PlanOptions`]; `Qep::explain` renders the EXPLAIN text documented in
//! `docs/EXPLAIN.md`.
//!
//! ```
//! use std::sync::Arc;
//! use xnf_plan::{plan_query, PlanOptions};
//! use xnf_qgm::build_select_query;
//! use xnf_sql::parse_select;
//! use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema};
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 16));
//! let catalog = Catalog::new(pool);
//! catalog
//!     .create_table("EMP", Schema::from_pairs(&[("eno", DataType::Int)]))
//!     .unwrap();
//! let s = parse_select("SELECT eno FROM EMP WHERE eno = 7").unwrap();
//! let qgm = build_select_query(&catalog, &s).unwrap();
//! let qep = plan_query(&catalog, &qgm, PlanOptions::default()).unwrap();
//! assert!(qep.explain().contains("SeqScan(EMP)"));
//! ```

pub mod error;
mod parallelize;
pub mod physical;
pub mod planner;

pub use error::{PlanError, Result};
pub use physical::{
    AggSpec, PhysExpr, PhysPlan, Qep, QepOutput, SharedId, SortSpec, DEFAULT_BATCH_SIZE,
};
pub use planner::{plan_query, PlanOptions, DEFAULT_PARALLEL_MIN_PAGES};

#[cfg(test)]
mod planner_tests;
