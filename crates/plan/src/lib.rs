//! # xnf-plan — plan optimization and refinement
//!
//! Lowers rewritten (NF) QGM graphs into executable physical plans
//! ([`physical::Qep`]): shared-subexpression materialisation ("table
//! queues"), access-path selection, DP join ordering, hash (semi)joins,
//! aggregate lowering, and the tuple-at-a-time correlated-subquery operator
//! kept for the naive baseline of Fig. 3.

pub mod error;
pub mod physical;
pub mod planner;

pub use error::{PlanError, Result};
pub use physical::{
    AggSpec, PhysExpr, PhysPlan, Qep, QepOutput, SharedId, SortSpec, DEFAULT_BATCH_SIZE,
};
pub use planner::{plan_query, PlanOptions};

#[cfg(test)]
mod planner_tests;
