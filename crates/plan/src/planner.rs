//! Plan optimization and refinement: lowered (NF) QGM → executable QEP.
//!
//! This stage reproduces Starburst's plan optimizer at the granularity the
//! paper relies on:
//!
//! - **common subexpressions**: boxes referenced more than once (the XNF
//!   component derivations) are materialised once as shared "table queues"
//!   and scanned by all consumers — the multi-query optimization of Fig. 6;
//! - **access-path selection**: base-table legs with constant equality
//!   predicates use B-tree indexes when available;
//! - **join-order optimization**: System-R style dynamic programming over
//!   the ForEach legs of a box (greedy fallback beyond 12 legs), choosing
//!   hash joins for equi-predicates and nested loops otherwise;
//! - **set-oriented existential evaluation**: `Semi` quantifier groups plan
//!   as hash semijoins; unconverted `E` quantifiers plan as per-tuple
//!   correlated subquery filters (the naive strategy of Fig. 3a).

use std::collections::HashMap;

use xnf_qgm::{BoxId, BoxKind, Qgm, QunId, QunKind, ScalarExpr, ROWID_COL};
use xnf_sql::BinOp;
use xnf_storage::Catalog;

use crate::error::{PlanError, Result};
use crate::physical::{AggSpec, PhysExpr, PhysPlan, Qep, QepOutput, SharedId, SortSpec};

/// Planner knobs (used by the experiments for ablations).
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Use index access paths for constant equality predicates.
    pub use_indexes: bool,
    /// Use DP join ordering (false = FROM-clause order).
    pub optimize_join_order: bool,
    /// Materialise shared boxes once (false = re-plan per consumer; the
    /// "no common subexpression" ablation for Table 1 measurements).
    pub share_common_subexpressions: bool,
    /// Row capacity of the executor's streaming batches (clamped to ≥ 1).
    pub batch_size: usize,
    /// Degree of parallelism: worker count of parallel regions and the cap
    /// on concurrent output-stream delivery. Defaults to
    /// `std::thread::available_parallelism()`; 1 compiles today's fully
    /// serial plans (no parallel operators are ever introduced). Unless
    /// [`PlanOptions::allow_oversubscribe`] is set, the effective dop is
    /// clamped to the host's available parallelism — extra workers on an
    /// already-saturated host only add scheduling overhead.
    pub dop: usize,
    /// Minimum heap page count before a scan is worth parallelizing
    /// (morsel = one page, so tiny tables can't feed several workers).
    /// Clamped to ≥ 1; point lookups and small fixtures stay serial at the
    /// default of [`DEFAULT_PARALLEL_MIN_PAGES`].
    pub parallel_min_pages: usize,
    /// Permit a `dop` above the host's `available_parallelism()`. Off by
    /// default so a mis-sized knob degrades gracefully to the core count;
    /// the equivalence suite turns it on to exercise genuinely parallel
    /// plans (dop 2/4) even on a single-core host.
    pub allow_oversubscribe: bool,
}

/// Default [`PlanOptions::parallel_min_pages`]: below this many heap pages
/// a parallel scan's spawn/merge overhead outweighs the work.
pub const DEFAULT_PARALLEL_MIN_PAGES: usize = 8;

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            use_indexes: true,
            optimize_join_order: true,
            share_common_subexpressions: true,
            batch_size: crate::physical::DEFAULT_BATCH_SIZE,
            dop: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            parallel_min_pages: DEFAULT_PARALLEL_MIN_PAGES,
            allow_oversubscribe: false,
        }
    }
}

/// Plan a rewritten (XNF-free) QGM graph into a QEP.
pub fn plan_query(catalog: &Catalog, qgm: &Qgm, options: PlanOptions) -> Result<Qep> {
    if qgm.count_kind("XNF") > 0 {
        return Err(PlanError::Corrupt(
            "XNF operator reached the planner; run rewrite first".into(),
        ));
    }
    let mut p = Planner {
        catalog,
        qgm,
        options,
        shared_ids: HashMap::new(),
        shared_plans: Vec::new(),
        card_memo: HashMap::new(),
    };
    p.assign_shared()?;

    let mut outputs = Vec::new();
    for o in &qgm.outputs {
        let body = qgm.quns[o.qun].ranges_over;
        let mut plan = p.consumer_plan(body)?;
        // Table outputs honour ORDER BY / LIMIT.
        if matches!(o.kind, xnf_qgm::OutputKind::Table) {
            if !qgm.order_by.is_empty() {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    specs: qgm
                        .order_by
                        .iter()
                        .map(|s| SortSpec {
                            col: s.col,
                            desc: s.desc,
                        })
                        .collect(),
                };
            }
            if let Some(n) = qgm.limit {
                plan = PhysPlan::Limit {
                    input: Box::new(plan),
                    n,
                };
            }
        }
        outputs.push(QepOutput {
            name: o.name.clone(),
            kind: o.kind.clone(),
            plan,
            columns: qgm
                .boxed(body)
                .head
                .iter()
                .map(|h| h.name.clone())
                .collect(),
        });
    }
    let mut shared = p.shared_plans;
    let mut dop = options.dop.max(1);
    if !options.allow_oversubscribe {
        // Clamp to the host: a dop above the core count cannot speed
        // anything up, it only adds context-switch overhead, so a knob
        // set for a bigger machine degrades gracefully here.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        dop = dop.min(cores);
    }
    // Parallel plan selection runs as a separate bottom-up pass so that
    // dop = 1 reproduces the serial plans exactly (the pass never runs).
    if dop > 1 {
        // The pass reads the dop out of the options it's handed, so feed
        // it the clamped value.
        let mut popts = options;
        popts.dop = dop;
        for plan in &mut shared {
            crate::parallelize::parallelize(catalog, plan, &popts);
        }
        for o in &mut outputs {
            crate::parallelize::parallelize(catalog, &mut o.plan, &popts);
        }
    }
    Ok(Qep {
        shared,
        outputs,
        batch_size: options.batch_size.max(1),
        dop,
    })
}

/// Per-leg lowering info: how a quantifier's columns map into the combined
/// row of its owning box's plan.
#[derive(Debug, Clone, Copy)]
struct LegMap {
    offset: usize,
    /// 1 for shared scans (leading rowid), 0 otherwise.
    col_base: usize,
    width: usize,
    has_rowid: bool,
}

struct Planner<'a> {
    catalog: &'a Catalog,
    qgm: &'a Qgm,
    options: PlanOptions,
    shared_ids: HashMap<BoxId, SharedId>,
    shared_plans: Vec<PhysPlan>,
    card_memo: HashMap<BoxId, f64>,
}

impl<'a> Planner<'a> {
    // ---------------------------------------------------------------
    // shared subexpressions
    // ---------------------------------------------------------------

    /// Decide which boxes to materialise and build their plans in
    /// dependency order.
    fn assign_shared(&mut self) -> Result<()> {
        let reachable = self.qgm.reachable_boxes();
        let refs = self.qgm.ref_counts();
        // Boxes whose rowid pseudo-column is observed must be materialised.
        let mut rowid_needed = vec![false; self.qgm.boxes.len()];
        for b in &self.qgm.boxes {
            let mut mark = |e: &ScalarExpr| {
                let _ = e.map_cols(&mut |q, c| {
                    if c == ROWID_COL {
                        if let Some(qq) = self.qgm.quns.get(q) {
                            rowid_needed[qq.ranges_over] = true;
                        }
                    }
                    ScalarExpr::Col { qun: q, col: c }
                });
            };
            for h in &b.head {
                mark(&h.expr);
            }
            for p in &b.preds {
                mark(p);
            }
        }
        let mut candidates: Vec<BoxId> = self
            .qgm
            .boxes
            .iter()
            .filter(|b| {
                reachable[b.id]
                    && !matches!(b.kind, BoxKind::BaseTable { .. } | BoxKind::Top)
                    && (rowid_needed[b.id]
                        || (self.options.share_common_subexpressions && refs[b.id] > 1))
            })
            .map(|b| b.id)
            .collect();
        candidates.sort();
        // Build plans depth-first so dependencies get lower ids.
        for b in candidates {
            self.ensure_shared(b)?;
        }
        Ok(())
    }

    fn ensure_shared(&mut self, b: BoxId) -> Result<SharedId> {
        if let Some(&id) = self.shared_ids.get(&b) {
            return Ok(id);
        }
        // Reserve the id after building (dependencies first), but guard
        // against cycles with a sentinel.
        let plan = self.plan_box(b)?;
        if let Some(&id) = self.shared_ids.get(&b) {
            // A dependency loop would have inserted it; keep the first.
            return Ok(id);
        }
        let id = self.shared_plans.len();
        self.shared_plans.push(plan);
        self.shared_ids.insert(b, id);
        Ok(id)
    }

    /// Plan a consumer's view of a box: a shared box becomes a SharedScan
    /// with the rowid column projected away; anything else plans inline.
    fn consumer_plan(&mut self, b: BoxId) -> Result<PhysPlan> {
        if self.shared_ids.contains_key(&b) || self.should_share(b) {
            let id = self.ensure_shared(b)?;
            let arity = self.qgm.boxed(b).head.len();
            let exprs = (0..arity).map(|i| PhysExpr::Col(i + 1)).collect();
            return Ok(PhysPlan::Project {
                input: Box::new(PhysPlan::SharedScan { id }),
                exprs,
            });
        }
        self.plan_box(b)
    }

    fn should_share(&self, b: BoxId) -> bool {
        if matches!(
            self.qgm.boxed(b).kind,
            BoxKind::BaseTable { .. } | BoxKind::Top
        ) {
            return false;
        }
        self.options.share_common_subexpressions && self.qgm.ref_counts()[b] > 1
    }

    // ---------------------------------------------------------------
    // box planning
    // ---------------------------------------------------------------

    fn plan_box(&mut self, b: BoxId) -> Result<PhysPlan> {
        match &self.qgm.boxed(b).kind {
            BoxKind::BaseTable { table, .. } => Ok(self.table_scan(table.clone(), vec![])),
            BoxKind::Select(_) => self.plan_select(b),
            BoxKind::GroupBy(_) => self.plan_group_by(b),
            BoxKind::Union(_) => self.plan_union(b),
            BoxKind::Xnf(_) => Err(PlanError::Corrupt("XNF box in planner".into())),
            BoxKind::Top => Err(PlanError::Corrupt("Top box is not plannable".into())),
        }
    }

    /// Full scan of a named stored table: a plain `SeqScan` for base
    /// tables, a `matview scan` when the name resolves to a materialized
    /// view's backing storage (planner substitution made the view reference
    /// a BaseTable box over the backing table).
    fn table_scan(&self, table: String, filter: Vec<PhysExpr>) -> PhysPlan {
        if self.catalog.is_matview_backing(&table) {
            PhysPlan::MatViewScan {
                view: table,
                filter,
            }
        } else {
            PhysPlan::SeqScan { table, filter }
        }
    }

    fn plan_union(&mut self, b: BoxId) -> Result<PhysPlan> {
        let bx = self.qgm.boxed(b);
        let all = match &bx.kind {
            BoxKind::Union(u) => u.all,
            _ => unreachable!(),
        };
        let mut inputs = Vec::new();
        for &q in &bx.quns {
            let target = self.qgm.quns[q].ranges_over;
            inputs.push(self.consumer_plan(target)?);
        }
        let plan = PhysPlan::UnionAll { inputs };
        Ok(if all {
            plan
        } else {
            PhysPlan::HashDistinct {
                input: Box::new(plan),
            }
        })
    }

    fn plan_group_by(&mut self, b: BoxId) -> Result<PhysPlan> {
        let bx = self.qgm.boxed(b).clone();
        let group_exprs = match &bx.kind {
            BoxKind::GroupBy(g) => g.group_by.clone(),
            _ => unreachable!(),
        };
        if bx.quns.len() != 1 {
            return Err(PlanError::Corrupt(
                "GroupBy box must have exactly one quantifier".into(),
            ));
        }
        let q = bx.quns[0];
        let target = self.qgm.quns[q].ranges_over;
        let input = self.consumer_plan(target)?;
        let legs = HashMap::from([(
            q,
            LegMap {
                offset: 0,
                col_base: 0,
                width: self.qgm.boxed(target).head.len(),
                has_rowid: false,
            },
        )]);

        // Lower grouping expressions over the input row.
        let group: Vec<PhysExpr> = group_exprs
            .iter()
            .map(|e| self.lower(e, &legs))
            .collect::<Result<_>>()?;

        // Extract aggregates from head + having.
        let mut aggs: Vec<(String, AggSpec)> = Vec::new();
        let mut output = Vec::with_capacity(bx.head.len());
        for h in &bx.head {
            output.push(self.lower_agg_expr(&h.expr, &legs, &group, &mut aggs)?);
        }
        let mut having = Vec::with_capacity(bx.preds.len());
        for p in &bx.preds {
            having.push(self.lower_agg_expr(p, &legs, &group, &mut aggs)?);
        }
        Ok(PhysPlan::HashAggregate {
            input: Box::new(input),
            group,
            aggs: aggs.into_iter().map(|(_, a)| a).collect(),
            having,
            output,
        })
    }

    /// Lower an expression that may contain aggregates: aggregates become
    /// `AggRef` slots; non-aggregate subexpressions matching a grouping
    /// expression become references to the group slots of the synthetic
    /// aggregate output row `[group values..., agg results...]`.
    fn lower_agg_expr(
        &mut self,
        e: &ScalarExpr,
        legs: &HashMap<QunId, LegMap>,
        group: &[PhysExpr],
        aggs: &mut Vec<(String, AggSpec)>,
    ) -> Result<PhysExpr> {
        if let ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } = e
        {
            let sig = e.signature();
            if let Some(pos) = aggs.iter().position(|(s, _)| *s == sig) {
                return Ok(PhysExpr::AggRef(pos));
            }
            let lowered_arg = match arg {
                Some(a) => Some(self.lower(a, legs)?),
                None => None,
            };
            aggs.push((
                sig,
                AggSpec {
                    func: *func,
                    arg: lowered_arg,
                    distinct: *distinct,
                },
            ));
            return Ok(PhysExpr::AggRef(aggs.len() - 1));
        }
        // Non-aggregate: try to match a grouping expression wholesale.
        if !e.contains_agg() {
            let lowered = self.lower(e, legs)?;
            if let Some(pos) = group.iter().position(|g| *g == lowered) {
                return Ok(PhysExpr::Col(pos));
            }
            // Literals pass through; anything else must decompose.
            if let PhysExpr::Literal(_) = lowered {
                return Ok(lowered);
            }
        }
        // Decompose structurally.
        Ok(match e {
            ScalarExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.lower_agg_expr(expr, legs, group, aggs)?),
            },
            ScalarExpr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(self.lower_agg_expr(left, legs, group, aggs)?),
                op: *op,
                right: Box::new(self.lower_agg_expr(right, legs, group, aggs)?),
            },
            ScalarExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.lower_agg_expr(expr, legs, group, aggs)?),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(self.lower_agg_expr(expr, legs, group, aggs)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(self.lower_agg_expr(expr, legs, group, aggs)?),
                list: list
                    .iter()
                    .map(|x| self.lower_agg_expr(x, legs, group, aggs))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            ScalarExpr::Func { func, args } => PhysExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|x| self.lower_agg_expr(x, legs, group, aggs))
                    .collect::<Result<_>>()?,
            },
            other => {
                return Err(PlanError::Unsupported(format!(
                    "expression '{other}' must appear in GROUP BY"
                )))
            }
        })
    }

    // ---------------------------------------------------------------
    // SELECT box planning: legs, predicates, join order, semi blocks
    // ---------------------------------------------------------------

    fn plan_select(&mut self, b: BoxId) -> Result<PhysPlan> {
        let bx = self.qgm.boxed(b).clone();
        let mut f_legs = Vec::new();
        let mut semi_legs = Vec::new();
        let mut e_legs = Vec::new();
        for &q in &bx.quns {
            match self.qgm.quns[q].kind {
                QunKind::Foreach => f_legs.push(q),
                QunKind::Semi => semi_legs.push(q),
                QunKind::Existential => e_legs.push((q, false)),
                QunKind::Anti => e_legs.push((q, true)),
            }
        }

        // Partition the predicates.
        let mut leg_filters: HashMap<QunId, Vec<ScalarExpr>> = HashMap::new();
        let mut join_preds: Vec<ScalarExpr> = Vec::new();
        let mut semi_preds: Vec<ScalarExpr> = Vec::new();
        let mut post_preds: Vec<ScalarExpr> = Vec::new();
        for p in &bx.preds {
            let quns = p.quns();
            let local: Vec<QunId> = quns
                .iter()
                .copied()
                .filter(|q| bx.quns.contains(q))
                .collect();
            let touches_semi = local.iter().any(|q| semi_legs.contains(q));
            if local.is_empty() {
                post_preds.push(p.clone());
            } else if local.len() == 1 && quns.len() == 1 {
                // Single-quantifier predicates become leg filters even on
                // semi legs, so scans see their selections.
                leg_filters.entry(local[0]).or_default().push(p.clone());
            } else if touches_semi {
                semi_preds.push(p.clone());
            } else {
                join_preds.push(p.clone());
            }
        }

        // Plan the F-part.
        let (mut plan, legs) = if f_legs.is_empty() {
            (PhysPlan::Values { rows: vec![vec![]] }, HashMap::new())
        } else {
            self.plan_join(&f_legs, &leg_filters, &join_preds)?
        };

        // Semi block.
        if !semi_legs.is_empty() {
            plan = self.plan_semi_block(plan, &legs, &semi_legs, &leg_filters, &semi_preds)?;
        } else if !semi_preds.is_empty() {
            return Err(PlanError::Corrupt(
                "semi predicates without semi legs".into(),
            ));
        }

        // Naive existential / anti legs: tuple-at-a-time subquery filters.
        for (q, anti) in e_legs {
            let target = self.qgm.quns[q].ranges_over;
            let subplan = self.consumer_plan(target)?;
            let bindings: Vec<(QunId, usize, usize)> = legs
                .iter()
                .map(|(&lq, m)| (lq, m.offset + m.col_base, m.width - m.col_base))
                .collect();
            plan = PhysPlan::SubqueryFilter {
                input: Box::new(plan),
                subplan: Box::new(subplan),
                bindings,
                anti,
            };
        }

        // Residual (outer-only) predicates.
        if !post_preds.is_empty() {
            let preds: Vec<PhysExpr> = post_preds
                .iter()
                .map(|p| self.lower(p, &legs))
                .collect::<Result<_>>()?;
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                preds,
            };
        }

        // Head projection. An identity head (every input column passed
        // through in order) would clone each row for nothing — skip it and
        // let the input stream flow straight through.
        let exprs: Vec<PhysExpr> = bx
            .head
            .iter()
            .map(|h| self.lower(&h.expr, &legs))
            .collect::<Result<_>>()?;
        let input_width: usize = legs.values().map(|m| m.width).sum();
        let identity = !exprs.is_empty()
            && exprs.len() == input_width
            && exprs
                .iter()
                .enumerate()
                .all(|(i, e)| matches!(e, PhysExpr::Col(c) if *c == i));
        if !identity {
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs,
            };
        }

        if bx.as_select().map(|s| s.distinct).unwrap_or(false) {
            plan = PhysPlan::HashDistinct {
                input: Box::new(plan),
            };
        }
        Ok(plan)
    }

    /// Plan one leg (quantifier) with its pushed-down filters. Returns the
    /// plan and the leg's LegMap *relative to offset 0*.
    fn plan_leg(&mut self, q: QunId, filters: &[ScalarExpr]) -> Result<(PhysPlan, LegMap)> {
        let target = self.qgm.quns[q].ranges_over;
        let target_box = self.qgm.boxed(target);
        // Shared target: SharedScan with leading rowid.
        if self.shared_ids.contains_key(&target) || self.should_share(target) {
            let id = self.ensure_shared(target)?;
            let width = target_box.head.len() + 1;
            let map = LegMap {
                offset: 0,
                col_base: 1,
                width,
                has_rowid: true,
            };
            let mut plan = PhysPlan::SharedScan { id };
            if !filters.is_empty() {
                let legs = HashMap::from([(q, map)]);
                let preds = filters
                    .iter()
                    .map(|p| self.lower(p, &legs))
                    .collect::<Result<_>>()?;
                plan = PhysPlan::Filter {
                    input: Box::new(plan),
                    preds,
                };
            }
            return Ok((plan, map));
        }
        // Base table: access-path selection.
        if let BoxKind::BaseTable { table, schema } = &target_box.kind {
            let table = table.clone();
            let width = schema.len();
            let map = LegMap {
                offset: 0,
                col_base: 0,
                width,
                has_rowid: false,
            };
            let legs = HashMap::from([(q, map)]);
            let mut key_cols: Vec<(usize, PhysExpr)> = Vec::new();
            let mut residual: Vec<PhysExpr> = Vec::new();
            for p in filters {
                if self.options.use_indexes {
                    if let Some((col, key)) = self.const_eq_on(q, p) {
                        key_cols.push((col, key));
                        continue;
                    }
                }
                residual.push(self.lower(p, &legs)?);
            }
            if !key_cols.is_empty() {
                let t = self.catalog.table(&table)?;
                // Try each single-column index over one of the keyed columns.
                for (col, lit) in &key_cols {
                    if let Some(def) = t.find_index(&[*col]) {
                        let mut rest: Vec<PhysExpr> = key_cols
                            .iter()
                            .filter(|(c, _)| c != col)
                            .map(|(c, l)| PhysExpr::Binary {
                                left: Box::new(PhysExpr::Col(*c)),
                                op: BinOp::Eq,
                                right: Box::new(l.clone()),
                            })
                            .collect();
                        rest.extend(residual.clone());
                        return Ok((
                            PhysPlan::IndexEq {
                                table,
                                index: def.name,
                                key: vec![lit.clone()],
                                filter: rest,
                            },
                            map,
                        ));
                    }
                }
                // No usable index: fold keys back into the scan filter.
                for (c, l) in key_cols {
                    residual.push(PhysExpr::Binary {
                        left: Box::new(PhysExpr::Col(c)),
                        op: BinOp::Eq,
                        right: Box::new(l),
                    });
                }
            }
            return Ok((self.table_scan(table, residual), map));
        }
        // Derived leg: plan recursively, filters on top.
        let width = target_box.head.len();
        let map = LegMap {
            offset: 0,
            col_base: 0,
            width,
            has_rowid: false,
        };
        let mut plan = self.plan_box(target)?;
        if !filters.is_empty() {
            let legs = HashMap::from([(q, map)]);
            let preds = filters
                .iter()
                .map(|p| self.lower(p, &legs))
                .collect::<Result<_>>()?;
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                preds,
            };
        }
        Ok((plan, map))
    }

    /// Is `p` an equality between a column of `q` and an execution-time
    /// constant (literal or parameter)? Returns (column, key expression) —
    /// parameters qualify because index keys are evaluated at `eval` time,
    /// when the binding table is available.
    fn const_eq_on(&self, q: QunId, p: &ScalarExpr) -> Option<(usize, PhysExpr)> {
        fn as_const(e: &ScalarExpr) -> Option<PhysExpr> {
            match e {
                ScalarExpr::Literal(v) => Some(PhysExpr::Literal(v.clone())),
                ScalarExpr::Param(i) => Some(PhysExpr::Param(*i)),
                _ => None,
            }
        }
        if let ScalarExpr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = p
        {
            match (&**left, &**right) {
                (ScalarExpr::Col { qun, col }, other) if *qun == q => {
                    as_const(other).map(|k| (*col, k))
                }
                (other, ScalarExpr::Col { qun, col }) if *qun == q => {
                    as_const(other).map(|k| (*col, k))
                }
                _ => None,
            }
        } else {
            None
        }
    }

    /// Join the F legs with DP ordering; returns the combined plan and the
    /// final LegMap per quantifier.
    fn plan_join(
        &mut self,
        f_legs: &[QunId],
        leg_filters: &HashMap<QunId, Vec<ScalarExpr>>,
        join_preds: &[ScalarExpr],
    ) -> Result<(PhysPlan, HashMap<QunId, LegMap>)> {
        // Plan each leg.
        let mut leg_plans = Vec::with_capacity(f_legs.len());
        for &q in f_legs {
            let empty = Vec::new();
            let filters = leg_filters.get(&q).unwrap_or(&empty);
            leg_plans.push(self.plan_leg(q, filters)?);
        }
        // Choose an order.
        let order: Vec<usize> = if f_legs.len() <= 1 || !self.options.optimize_join_order {
            (0..f_legs.len()).collect()
        } else if f_legs.len() <= 12 {
            self.dp_order(f_legs, &leg_plans, join_preds)
        } else {
            self.greedy_order(f_legs, &leg_plans, join_preds)
        };

        // Assemble left-deep join tree in `order`, computing leg offsets.
        let mut legs: HashMap<QunId, LegMap> = HashMap::new();
        let first = order[0];
        let (mut plan, mut m0) = (leg_plans[first].0.clone(), leg_plans[first].1);
        m0.offset = 0;
        legs.insert(f_legs[first], m0);
        let mut width = m0.width;
        let mut used: Vec<QunId> = vec![f_legs[first]];
        let mut applied = vec![false; join_preds.len()];

        for &idx in &order[1..] {
            let q = f_legs[idx];
            let (leg_plan, mut lm) = (leg_plans[idx].0.clone(), leg_plans[idx].1);
            lm.offset = width;
            legs.insert(q, lm);
            used.push(q);
            width += lm.width;

            // Predicates now fully bound.
            let mut keys: Vec<(PhysExpr, PhysExpr)> = Vec::new();
            let mut residual: Vec<PhysExpr> = Vec::new();
            for (pi, p) in join_preds.iter().enumerate() {
                if applied[pi] {
                    continue;
                }
                let quns = p.quns();
                let local: Vec<QunId> = quns
                    .iter()
                    .copied()
                    .filter(|x| f_legs.contains(x))
                    .collect();
                if !local.iter().all(|x| used.contains(x)) || !local.contains(&q) {
                    continue;
                }
                applied[pi] = true;
                // Equi key: one side references only earlier legs, the other
                // only the new leg.
                if let ScalarExpr::Binary {
                    left,
                    op: BinOp::Eq,
                    right,
                } = p
                {
                    let lq = left.quns();
                    let rq = right.quns();
                    let left_old = lq.iter().all(|x| *x != q) && !lq.is_empty();
                    let right_new = !rq.is_empty() && rq.iter().all(|x| *x == q);
                    let left_new = !lq.is_empty() && lq.iter().all(|x| *x == q);
                    let right_old = rq.iter().all(|x| *x != q) && !rq.is_empty();
                    if left_old && right_new {
                        keys.push((
                            self.lower(left, &legs)?,
                            self.lower_local(right, q, &leg_plans[idx].1)?,
                        ));
                        continue;
                    }
                    if left_new && right_old {
                        keys.push((
                            self.lower(right, &legs)?,
                            self.lower_local(left, q, &leg_plans[idx].1)?,
                        ));
                        continue;
                    }
                }
                residual.push(self.lower(p, &legs)?);
            }
            plan = if keys.is_empty() {
                PhysPlan::NlJoin {
                    left: Box::new(plan),
                    right: Box::new(leg_plan),
                    preds: residual,
                }
            } else {
                PhysPlan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(leg_plan),
                    left_keys: keys.iter().map(|(l, _)| l.clone()).collect(),
                    right_keys: keys.iter().map(|(_, r)| r.clone()).collect(),
                    residual,
                }
            };
        }
        // Any join predicate not yet applied (e.g. references a single leg
        // plus outer correlation) becomes a filter.
        let leftovers: Vec<PhysExpr> = join_preds
            .iter()
            .enumerate()
            .filter(|(pi, _)| !applied[*pi])
            .map(|(_, p)| self.lower(p, &legs))
            .collect::<Result<_>>()?;
        if !leftovers.is_empty() {
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                preds: leftovers,
            };
        }
        Ok((plan, legs))
    }

    /// Greedy join order: start from the smallest leg, repeatedly add the
    /// leg with the lowest estimated joined cardinality.
    fn greedy_order(
        &mut self,
        f_legs: &[QunId],
        leg_plans: &[(PhysPlan, LegMap)],
        join_preds: &[ScalarExpr],
    ) -> Vec<usize> {
        let cards: Vec<f64> = f_legs.iter().map(|&q| self.leg_card(q)).collect();
        let n = f_legs.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let _ = leg_plans;
        remaining.sort_by(|&a, &b| cards[a].total_cmp(&cards[b]));
        let mut order = vec![remaining.remove(0)];
        while !remaining.is_empty() {
            // Prefer legs connected by a predicate to the current set.
            let connected_pos = remaining.iter().position(|&idx| {
                join_preds.iter().any(|p| {
                    let quns = p.quns();
                    quns.contains(&f_legs[idx])
                        && quns.iter().any(|x| order.iter().any(|&o| f_legs[o] == *x))
                })
            });
            let pos = connected_pos.unwrap_or(0);
            order.push(remaining.remove(pos));
        }
        order
    }

    /// System-R style DP over leg subsets (left-deep, hash-join aware).
    fn dp_order(
        &mut self,
        f_legs: &[QunId],
        leg_plans: &[(PhysPlan, LegMap)],
        join_preds: &[ScalarExpr],
    ) -> Vec<usize> {
        let n = f_legs.len();
        let cards: Vec<f64> = f_legs.iter().map(|&q| self.leg_card(q)).collect();
        let _ = leg_plans;
        // best[mask] = (cost, card, order)
        let mut best: Vec<Option<(f64, f64, Vec<usize>)>> = vec![None; 1 << n];
        for i in 0..n {
            best[1 << i] = Some((cards[i], cards[i], vec![i]));
        }
        for mask in 1..(1usize << n) {
            let Some((cost, card, order)) = best[mask].clone() else {
                continue;
            };
            for (add, &add_card) in cards.iter().enumerate() {
                if mask & (1 << add) != 0 {
                    continue;
                }
                let nm = mask | (1 << add);
                // Selectivity of predicates bound by adding `add`.
                let mut sel = 1.0;
                let mut connected = false;
                for p in join_preds {
                    let quns = p.quns();
                    let local: Vec<usize> = quns
                        .iter()
                        .filter_map(|x| f_legs.iter().position(|l| l == x))
                        .collect();
                    if local.contains(&add)
                        && local.iter().all(|&l| l == add || mask & (1 << l) != 0)
                    {
                        sel *= 0.1;
                        connected = true;
                    }
                }
                // Discourage cartesian products.
                let penalty = if connected || n == 1 { 1.0 } else { 10.0 };
                let new_card = (card * add_card * sel).max(1.0);
                let new_cost = cost + add_card + new_card * penalty;
                let mut new_order = order.clone();
                new_order.push(add);
                let better = match &best[nm] {
                    None => true,
                    Some((c, _, _)) => new_cost < *c,
                };
                if better {
                    best[nm] = Some((new_cost, new_card, new_order));
                }
            }
        }
        best[(1 << n) - 1]
            .clone()
            .map(|(_, _, o)| o)
            .unwrap_or_else(|| (0..n).collect())
    }

    /// Rough cardinality of a leg (for ordering decisions only).
    fn leg_card(&mut self, q: QunId) -> f64 {
        let b = self.qgm.quns[q].ranges_over;
        self.box_card(b)
    }

    fn box_card(&mut self, b: BoxId) -> f64 {
        if let Some(&c) = self.card_memo.get(&b) {
            return c;
        }
        self.card_memo.insert(b, 1000.0); // cycle guard
        let bx = self.qgm.boxed(b);
        let card = match &bx.kind {
            BoxKind::BaseTable { table, .. } => self
                .catalog
                .table(table)
                .map(|t| (t.stats().row_count as f64).max(1.0))
                .unwrap_or(1000.0),
            BoxKind::Select(_) => {
                let mut c = 1.0;
                for &q in &bx.quns {
                    if self.qgm.quns[q].kind == QunKind::Foreach {
                        c *= self.box_card(self.qgm.quns[q].ranges_over);
                    }
                }
                let sel: f64 = bx.preds.iter().map(pred_selectivity).product();
                (c * sel).max(1.0)
            }
            BoxKind::GroupBy(_) => {
                let input = bx
                    .quns
                    .first()
                    .map(|&q| self.box_card(self.qgm.quns[q].ranges_over))
                    .unwrap_or(1.0);
                (input / 2.0).max(1.0)
            }
            BoxKind::Union(_) => bx
                .quns
                .iter()
                .map(|&q| self.box_card(self.qgm.quns[q].ranges_over))
                .sum(),
            _ => 1000.0,
        };
        self.card_memo.insert(b, card);
        card
    }

    // ---------------------------------------------------------------
    // semi blocks
    // ---------------------------------------------------------------

    /// Plan the existential (Semi) block: join the semi legs on their
    /// internal predicates, then semijoin the outer plan against them.
    fn plan_semi_block(
        &mut self,
        outer: PhysPlan,
        outer_legs: &HashMap<QunId, LegMap>,
        semi_legs: &[QunId],
        leg_filters: &HashMap<QunId, Vec<ScalarExpr>>,
        semi_preds: &[ScalarExpr],
    ) -> Result<PhysPlan> {
        // Split semi predicates: internal (only semi legs) vs connecting.
        let mut internal = Vec::new();
        let mut connecting = Vec::new();
        for p in semi_preds {
            let quns = p.quns();
            if quns.iter().all(|q| semi_legs.contains(q)) {
                internal.push(p.clone());
            } else {
                connecting.push(p.clone());
            }
        }
        // Join semi legs (greedy order: as listed, joined via internal preds).
        let mut inner_legs: HashMap<QunId, LegMap> = HashMap::new();
        let mut inner_plan: Option<PhysPlan> = None;
        let mut width = 0;
        let mut applied = vec![false; internal.len()];
        for &q in semi_legs {
            let empty = Vec::new();
            let filters = leg_filters.get(&q).unwrap_or(&empty);
            let (leg_plan, mut lm) = self.plan_leg(q, filters)?;
            lm.offset = width;
            inner_legs.insert(q, lm);
            width += lm.width;
            inner_plan = Some(match inner_plan {
                None => leg_plan,
                Some(prev) => {
                    // Apply internal preds bound by adding q.
                    let mut keys = Vec::new();
                    let mut residual = Vec::new();
                    for (pi, p) in internal.iter().enumerate() {
                        if applied[pi] {
                            continue;
                        }
                        let quns = p.quns();
                        if !quns.iter().all(|x| inner_legs.contains_key(x)) || !quns.contains(&q) {
                            continue;
                        }
                        applied[pi] = true;
                        if let ScalarExpr::Binary {
                            left,
                            op: BinOp::Eq,
                            right,
                        } = p
                        {
                            let lq = left.quns();
                            let rq = right.quns();
                            let l_new = !lq.is_empty() && lq.iter().all(|x| *x == q);
                            let r_new = !rq.is_empty() && rq.iter().all(|x| *x == q);
                            if r_new && !l_new {
                                keys.push((
                                    self.lower(left, &inner_legs)?,
                                    self.lower_with_offset(right, &inner_legs, 0)?,
                                ));
                                continue;
                            }
                            if l_new && !r_new {
                                keys.push((
                                    self.lower(right, &inner_legs)?,
                                    self.lower_with_offset(left, &inner_legs, 0)?,
                                ));
                                continue;
                            }
                        }
                        residual.push(self.lower(p, &inner_legs)?);
                    }
                    if keys.is_empty() {
                        PhysPlan::NlJoin {
                            left: Box::new(prev),
                            right: Box::new(leg_plan),
                            preds: residual,
                        }
                    } else {
                        // Keys lowered against full inner mapping; since the
                        // new leg's offset is already set, both sides use the
                        // combined row coordinates. Hash join probes the
                        // right side with right-relative keys, so re-lower
                        // the new-leg side relative to the leg itself.
                        let right_rel: Vec<PhysExpr> = keys
                            .iter()
                            .map(|(_, r)| shift_cols(r, -(inner_legs[&q].offset as isize)))
                            .collect();
                        PhysPlan::HashJoin {
                            left: Box::new(prev),
                            right: Box::new(leg_plan),
                            left_keys: keys.iter().map(|(l, _)| l.clone()).collect(),
                            right_keys: right_rel,
                            residual,
                        }
                    }
                }
            });
        }
        let inner_plan = inner_plan.expect("semi block with legs");
        // Leftover internal preds (if any) as filter over the inner join.
        let leftovers: Vec<PhysExpr> = internal
            .iter()
            .enumerate()
            .filter(|(pi, _)| !applied[*pi])
            .map(|(_, p)| self.lower(p, &inner_legs))
            .collect::<Result<_>>()?;
        let inner_plan = if leftovers.is_empty() {
            inner_plan
        } else {
            PhysPlan::Filter {
                input: Box::new(inner_plan),
                preds: leftovers,
            }
        };

        // Connecting predicates: equi keys vs residual. Residuals evaluate
        // over outer ++ inner, with inner slots shifted by outer width.
        let outer_width: usize = outer_legs.values().map(|m| m.width).sum();
        let mut outer_keys = Vec::new();
        let mut inner_keys = Vec::new();
        let mut residual = Vec::new();
        for p in &connecting {
            if let ScalarExpr::Binary {
                left,
                op: BinOp::Eq,
                right,
            } = p
            {
                let l_outer = left.quns().iter().all(|x| outer_legs.contains_key(x));
                let r_inner = right.quns().iter().all(|x| inner_legs.contains_key(x));
                let l_inner = left.quns().iter().all(|x| inner_legs.contains_key(x));
                let r_outer = right.quns().iter().all(|x| outer_legs.contains_key(x));
                if l_outer && r_inner && !left.quns().is_empty() && !right.quns().is_empty() {
                    outer_keys.push(self.lower(left, outer_legs)?);
                    inner_keys.push(self.lower(right, &inner_legs)?);
                    continue;
                }
                if l_inner && r_outer && !left.quns().is_empty() && !right.quns().is_empty() {
                    outer_keys.push(self.lower(right, outer_legs)?);
                    inner_keys.push(self.lower(left, &inner_legs)?);
                    continue;
                }
            }
            // Residual over combined row: outer legs keep offsets, inner
            // legs shift by outer_width.
            let mut combined = outer_legs.clone();
            for (q, m) in &inner_legs {
                let mut m2 = *m;
                m2.offset += outer_width;
                combined.insert(*q, m2);
            }
            residual.push(self.lower(p, &combined)?);
        }
        Ok(if outer_keys.is_empty() {
            PhysPlan::NlSemiJoin {
                outer: Box::new(outer),
                inner: Box::new(inner_plan),
                preds: residual,
                anti: false,
            }
        } else {
            PhysPlan::HashSemiJoin {
                outer: Box::new(outer),
                inner: Box::new(inner_plan),
                outer_keys,
                inner_keys,
                residual,
                anti: false,
            }
        })
    }

    // ---------------------------------------------------------------
    // expression lowering
    // ---------------------------------------------------------------

    /// Lower an expression against a leg map; unknown quantifiers become
    /// `Outer` (correlation) references.
    fn lower(&self, e: &ScalarExpr, legs: &HashMap<QunId, LegMap>) -> Result<PhysExpr> {
        self.lower_with_offset(e, legs, 0)
    }

    fn lower_with_offset(
        &self,
        e: &ScalarExpr,
        legs: &HashMap<QunId, LegMap>,
        shift: isize,
    ) -> Result<PhysExpr> {
        Ok(match e {
            ScalarExpr::Literal(v) => PhysExpr::Literal(v.clone()),
            ScalarExpr::Param(i) => PhysExpr::Param(*i),
            ScalarExpr::Col { qun, col } => match legs.get(qun) {
                Some(m) => {
                    if *col == ROWID_COL {
                        if !m.has_rowid {
                            return Err(PlanError::Corrupt(
                                "rowid of a non-materialised quantifier".into(),
                            ));
                        }
                        PhysExpr::Col((m.offset as isize + shift) as usize)
                    } else {
                        PhysExpr::Col(
                            (m.offset as isize + m.col_base as isize + *col as isize + shift)
                                as usize,
                        )
                    }
                }
                None => PhysExpr::Outer {
                    qun: *qun,
                    col: *col,
                },
            },
            ScalarExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.lower_with_offset(expr, legs, shift)?),
            },
            ScalarExpr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(self.lower_with_offset(left, legs, shift)?),
                op: *op,
                right: Box::new(self.lower_with_offset(right, legs, shift)?),
            },
            ScalarExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.lower_with_offset(expr, legs, shift)?),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(self.lower_with_offset(expr, legs, shift)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(self.lower_with_offset(expr, legs, shift)?),
                list: list
                    .iter()
                    .map(|x| self.lower_with_offset(x, legs, shift))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            ScalarExpr::Func { func, args } => PhysExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|x| self.lower_with_offset(x, legs, shift))
                    .collect::<Result<_>>()?,
            },
            ScalarExpr::Agg { .. } => {
                return Err(PlanError::Corrupt("aggregate outside GroupBy box".into()))
            }
        })
    }

    /// Lower an expression that references only leg `q`, relative to the
    /// leg's own row (offset 0).
    fn lower_local(&self, e: &ScalarExpr, q: QunId, m: &LegMap) -> Result<PhysExpr> {
        let mut local = *m;
        local.offset = 0;
        let legs = HashMap::from([(q, local)]);
        self.lower(e, &legs)
    }
}

/// Shift every `Col` slot in a lowered expression by `delta`.
fn shift_cols(e: &PhysExpr, delta: isize) -> PhysExpr {
    match e {
        PhysExpr::Col(i) => PhysExpr::Col((*i as isize + delta) as usize),
        PhysExpr::Literal(v) => PhysExpr::Literal(v.clone()),
        PhysExpr::Param(i) => PhysExpr::Param(*i),
        PhysExpr::Outer { qun, col } => PhysExpr::Outer {
            qun: *qun,
            col: *col,
        },
        PhysExpr::Unary { op, expr } => PhysExpr::Unary {
            op: *op,
            expr: Box::new(shift_cols(expr, delta)),
        },
        PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
            left: Box::new(shift_cols(left, delta)),
            op: *op,
            right: Box::new(shift_cols(right, delta)),
        },
        PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
            expr: Box::new(shift_cols(expr, delta)),
            negated: *negated,
        },
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => PhysExpr::Like {
            expr: Box::new(shift_cols(expr, delta)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => PhysExpr::InList {
            expr: Box::new(shift_cols(expr, delta)),
            list: list.iter().map(|x| shift_cols(x, delta)).collect(),
            negated: *negated,
        },
        PhysExpr::Func { func, args } => PhysExpr::Func {
            func: *func,
            args: args.iter().map(|x| shift_cols(x, delta)).collect(),
        },
        PhysExpr::AggRef(i) => PhysExpr::AggRef(*i),
    }
}

/// Shape-based predicate selectivity (ordering heuristics only).
fn pred_selectivity(p: &ScalarExpr) -> f64 {
    match p {
        ScalarExpr::Binary { op: BinOp::Eq, .. } => 0.1,
        ScalarExpr::Binary {
            op: BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq,
            ..
        } => 0.33,
        ScalarExpr::Binary {
            op: BinOp::NotEq, ..
        } => 0.9,
        ScalarExpr::Like { .. } => 0.25,
        ScalarExpr::InList { list, .. } => (0.1 * list.len() as f64).min(1.0),
        _ => 0.5,
    }
}
