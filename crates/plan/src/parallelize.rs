//! Parallel plan selection: rewrite a serial physical plan into
//! morsel-driven parallel regions.
//!
//! The pass is bottom-up. A *worker pipeline* grows from a
//! [`PhysPlan::ParallelSeqScan`] leaf (any base-table or matview scan over
//! at least [`PlanOptions::parallel_min_pages`] heap pages): `Filter` and
//! `Project` fuse straight into it, a `HashJoin` whose probe (left) side
//! is a worker pipeline becomes a [`PhysPlan::ParallelHashJoin`] with its
//! build side behind an [`PhysPlan::ExchangeHashPartition`], and a
//! `HashAggregate` over a worker pipeline becomes the region root
//! [`PhysPlan::ParallelHashAggregate`] (partial→final aggregation). Every
//! other operator is a serial boundary: an open worker pipeline below it
//! is closed with an [`PhysPlan::ExchangeGather`], whose morsel-order
//! merge keeps the gathered row order identical to the serial plan's.
//!
//! Deliberately serial:
//! - `Limit` without a blocking `Sort` below it — the serial scan's
//!   early-out is worth more than parallel reads that get thrown away;
//! - `SubqueryFilter` subplans — they re-instantiate per outer tuple;
//! - `SharedScan` — common subexpressions are already materialised once
//!   (their *producing* plans parallelize on their own);
//! - `IndexEq` — point lookups have nothing to fan out.

use crate::physical::PhysPlan;
use crate::planner::PlanOptions;
use xnf_storage::Catalog;

/// Rewrite `plan` in place, introducing parallel regions where profitable.
/// A no-op when `options.dop <= 1`.
pub(crate) fn parallelize(catalog: &Catalog, plan: &mut PhysPlan, options: &PlanOptions) {
    if options.dop <= 1 {
        return;
    }
    let owned = std::mem::replace(plan, PhysPlan::Values { rows: Vec::new() });
    *plan = close(go(catalog, owned, options), options.dop);
}

/// A partially rewritten subtree: either an open worker pipeline (its
/// leaves are parallel scans; it still needs a region root) or a finished
/// serial plan.
enum Lowered {
    Pipeline(PhysPlan),
    Serial(PhysPlan),
}

/// Close an open worker pipeline with its gather region root.
fn close(l: Lowered, dop: usize) -> PhysPlan {
    match l {
        Lowered::Pipeline(p) => PhysPlan::ExchangeGather {
            input: Box::new(p),
            dop,
        },
        Lowered::Serial(p) => p,
    }
}

/// Is a scan of `name` (base table or matview backing table) big enough to
/// feed several workers? Uses the live heap page count, not ANALYZE stats,
/// so freshly loaded tables qualify without a stats pass.
fn scan_parallelizable(catalog: &Catalog, name: &str, options: &PlanOptions) -> bool {
    catalog
        .table(name)
        .map(|t| t.page_count() >= options.parallel_min_pages.max(1))
        .unwrap_or(false)
}

fn go(cat: &Catalog, plan: PhysPlan, o: &PlanOptions) -> Lowered {
    let dop = o.dop;
    match plan {
        PhysPlan::SeqScan { table, filter } if scan_parallelizable(cat, &table, o) => {
            Lowered::Pipeline(PhysPlan::ParallelSeqScan { table, filter })
        }
        PhysPlan::MatViewScan { view, filter } if scan_parallelizable(cat, &view, o) => {
            Lowered::Pipeline(PhysPlan::ParallelSeqScan {
                table: view,
                filter,
            })
        }
        PhysPlan::Filter { input, preds } => match go(cat, *input, o) {
            Lowered::Pipeline(p) => Lowered::Pipeline(PhysPlan::Filter {
                input: Box::new(p),
                preds,
            }),
            Lowered::Serial(s) => Lowered::Serial(PhysPlan::Filter {
                input: Box::new(s),
                preds,
            }),
        },
        PhysPlan::Project { input, exprs } => match go(cat, *input, o) {
            Lowered::Pipeline(p) => Lowered::Pipeline(PhysPlan::Project {
                input: Box::new(p),
                exprs,
            }),
            Lowered::Serial(s) => Lowered::Serial(PhysPlan::Project {
                input: Box::new(s),
                exprs,
            }),
        },
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let build = Box::new(PhysPlan::ExchangeHashPartition {
                input: Box::new(close(go(cat, *right, o), dop)),
                keys: right_keys.clone(),
                dop,
            });
            match go(cat, *left, o) {
                Lowered::Pipeline(probe) => Lowered::Pipeline(PhysPlan::ParallelHashJoin {
                    probe: Box::new(probe),
                    build,
                    probe_keys: left_keys,
                    residual,
                }),
                Lowered::Serial(l) => {
                    // Serial probe side: keep the serial join, but unwrap
                    // the partition exchange we built speculatively.
                    let PhysPlan::ExchangeHashPartition { input, .. } = *build else {
                        unreachable!()
                    };
                    Lowered::Serial(PhysPlan::HashJoin {
                        left: Box::new(l),
                        right: input,
                        left_keys,
                        right_keys,
                        residual,
                    })
                }
            }
        }
        PhysPlan::HashAggregate {
            input,
            group,
            aggs,
            having,
            output,
        } => match go(cat, *input, o) {
            Lowered::Pipeline(p) => Lowered::Serial(PhysPlan::ParallelHashAggregate {
                input: Box::new(p),
                group,
                aggs,
                having,
                output,
                dop,
            }),
            Lowered::Serial(s) => Lowered::Serial(PhysPlan::HashAggregate {
                input: Box::new(s),
                group,
                aggs,
                having,
                output,
            }),
        },
        PhysPlan::Sort { input, specs } => Lowered::Serial(PhysPlan::Sort {
            input: Box::new(close(go(cat, *input, o), dop)),
            specs,
        }),
        PhysPlan::HashDistinct { input } => Lowered::Serial(PhysPlan::HashDistinct {
            // The gather's morsel-order merge preserves the serial row
            // order, so first-occurrence DISTINCT semantics are unchanged.
            input: Box::new(close(go(cat, *input, o), dop)),
        }),
        PhysPlan::UnionAll { inputs } => Lowered::Serial(PhysPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|i| close(go(cat, i, o), dop))
                .collect(),
        }),
        PhysPlan::NlJoin { left, right, preds } => Lowered::Serial(PhysPlan::NlJoin {
            left: Box::new(close(go(cat, *left, o), dop)),
            right: Box::new(close(go(cat, *right, o), dop)),
            preds,
        }),
        PhysPlan::HashSemiJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
            anti,
        } => Lowered::Serial(PhysPlan::HashSemiJoin {
            outer: Box::new(close(go(cat, *outer, o), dop)),
            inner: Box::new(close(go(cat, *inner, o), dop)),
            outer_keys,
            inner_keys,
            residual,
            anti,
        }),
        PhysPlan::NlSemiJoin {
            outer,
            inner,
            preds,
            anti,
        } => Lowered::Serial(PhysPlan::NlSemiJoin {
            outer: Box::new(close(go(cat, *outer, o), dop)),
            inner: Box::new(close(go(cat, *inner, o), dop)),
            preds,
            anti,
        }),
        PhysPlan::SubqueryFilter {
            input,
            subplan,
            bindings,
            anti,
        } => Lowered::Serial(PhysPlan::SubqueryFilter {
            input: Box::new(close(go(cat, *input, o), dop)),
            // The subplan re-instantiates per outer tuple; spawning a
            // worker fleet per tuple would be a pessimisation.
            subplan,
            bindings,
            anti,
        }),
        PhysPlan::Limit { input, n } => {
            // Parallel scans read whole pages ahead of the merge, so a
            // streaming Limit keeps its serial early-out. A blocking Sort
            // below the Limit already reads everything — descend into it.
            let input = match *input {
                sort @ PhysPlan::Sort { .. } => close(go(cat, sort, o), dop),
                other => other,
            };
            Lowered::Serial(PhysPlan::Limit {
                input: Box::new(input),
                n,
            })
        }
        // Serial leaves (and any plan this pass already processed).
        other => Lowered::Serial(other),
    }
}
