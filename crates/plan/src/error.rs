//! Planning errors.

use std::fmt;

use xnf_storage::StorageError;

/// Errors raised during plan optimization / refinement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A structural invariant of the lowered QGM was violated.
    Corrupt(String),
    /// Construct not supported by the physical algebra.
    Unsupported(String),
    /// Catalog lookup failed.
    Storage(StorageError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Corrupt(m) => write!(f, "planner invariant violated: {m}"),
            PlanError::Unsupported(m) => write!(f, "unsupported in planner: {m}"),
            PlanError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

pub type Result<T> = std::result::Result<T, PlanError>;
