//! The shared rule engine (Sect. 4.4).
//!
//! The paper's implementation keeps *two* rewrite components — one for XNF
//! semantics, one for NF — but both use the same transformation technique
//! (rule-based rewriting), the same rule representation and the same rule
//! engine. This module is that engine: a set of [`Rule`]s applied to a QGM
//! graph until fixpoint, with per-rule firing counts reported.

use xnf_qgm::Qgm;

use crate::error::Result;

/// A rewrite rule: tries to transform the graph once; reports whether it
/// changed anything.
pub trait Rule {
    fn name(&self) -> &'static str;
    /// Attempt one application anywhere in the graph.
    fn apply(&self, qgm: &mut Qgm) -> Result<bool>;
}

/// Outcome of an engine run.
#[derive(Debug, Clone, Default)]
pub struct RewriteReport {
    /// `(rule name, firings)` in rule order.
    pub firings: Vec<(String, u64)>,
    pub passes: u64,
}

impl RewriteReport {
    pub fn fired(&self, rule: &str) -> u64 {
        self.firings
            .iter()
            .find(|(n, _)| n == rule)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.firings.iter().map(|(_, c)| c).sum()
    }
}

/// A rule set executed to fixpoint.
pub struct RuleEngine {
    rules: Vec<Box<dyn Rule>>,
    max_passes: u64,
}

impl RuleEngine {
    pub fn new(rules: Vec<Box<dyn Rule>>) -> Self {
        RuleEngine {
            rules,
            max_passes: 10_000,
        }
    }

    /// Apply all rules round-robin until none fires (or the pass budget is
    /// exhausted, which indicates a non-confluent rule set — reported via
    /// the pass count rather than an error so callers can assert on it).
    pub fn run(&self, qgm: &mut Qgm) -> Result<RewriteReport> {
        let mut report = RewriteReport {
            firings: self
                .rules
                .iter()
                .map(|r| (r.name().to_string(), 0))
                .collect(),
            passes: 0,
        };
        loop {
            report.passes += 1;
            let mut changed = false;
            for (i, rule) in self.rules.iter().enumerate() {
                while rule.apply(qgm)? {
                    report.firings[i].1 += 1;
                    changed = true;
                    if report.firings[i].1 + report.passes > self.max_passes {
                        return Ok(report);
                    }
                }
            }
            if !changed || report.passes >= self.max_passes {
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_qgm::{BoxKind, SelectBox};

    /// A rule that renames at most `n` boxes, one per application.
    struct RenameOnce;

    impl Rule for RenameOnce {
        fn name(&self) -> &'static str {
            "rename_once"
        }
        fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
            for b in &mut qgm.boxes {
                if b.label.starts_with("old") {
                    b.label = format!("new{}", &b.label[3..]);
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }

    #[test]
    fn engine_runs_to_fixpoint_and_counts() {
        let mut g = Qgm::new();
        for i in 0..3 {
            g.add_box(BoxKind::Select(SelectBox::default()), format!("old{i}"));
        }
        let engine = RuleEngine::new(vec![Box::new(RenameOnce)]);
        let report = engine.run(&mut g).unwrap();
        assert_eq!(report.fired("rename_once"), 3);
        assert!(g.boxes.iter().all(|b| b.label.starts_with("new")));
    }

    #[test]
    fn empty_rule_set_terminates() {
        let mut g = Qgm::new();
        let engine = RuleEngine::new(vec![]);
        let report = engine.run(&mut g).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(report.passes, 1);
    }
}
