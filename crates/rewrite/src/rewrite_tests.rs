//! Tests reproducing the paper's rewrite figures structurally.

use std::sync::Arc;

use xnf_qgm::{build_select_query, build_xnf_query, display, OutputKind, QunKind};
use xnf_sql::{parse_select, parse_xnf};
use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema};

use crate::{rewrite, RewriteError, RewriteOptions};

fn paper_catalog() -> Catalog {
    let cat = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 256)));
    cat.create_table(
        "DEPT",
        Schema::from_pairs(&[
            ("dno", DataType::Int),
            ("dname", DataType::Str),
            ("loc", DataType::Str),
        ]),
    )
    .unwrap();
    cat.create_table(
        "EMP",
        Schema::from_pairs(&[
            ("eno", DataType::Int),
            ("ename", DataType::Str),
            ("edno", DataType::Int),
            ("sal", DataType::Double),
        ]),
    )
    .unwrap();
    cat.create_table(
        "PROJ",
        Schema::from_pairs(&[
            ("pno", DataType::Int),
            ("pname", DataType::Str),
            ("pdno", DataType::Int),
        ]),
    )
    .unwrap();
    cat.create_table(
        "SKILLS",
        Schema::from_pairs(&[("sno", DataType::Int), ("sname", DataType::Str)]),
    )
    .unwrap();
    cat.create_table(
        "EMPSKILLS",
        Schema::from_pairs(&[("eseno", DataType::Int), ("essno", DataType::Int)]),
    )
    .unwrap();
    cat.create_table(
        "PROJSKILLS",
        Schema::from_pairs(&[("pspno", DataType::Int), ("pssno", DataType::Int)]),
    )
    .unwrap();
    cat
}

const DEPS_ARC: &str = "\
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)
TAKE *";

/// Fig. 3: the existential subquery over DEPT is converted to a semijoin
/// and merged into the EMP select box — one box, two quantifiers (F EMP,
/// Semi DEPT), both predicates local.
#[test]
fn fig3_exists_to_join_and_merge() {
    let cat = paper_catalog();
    let q = parse_select(
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    )
    .unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();

    // Initial graph (Fig. 3a): outer box has an E quantifier.
    let body = g.quns[g.outputs[0].qun].ranges_over;
    assert!(g
        .boxed(body)
        .quns
        .iter()
        .any(|&q| g.quns[q].kind == QunKind::Existential));

    let report = rewrite(&mut g, RewriteOptions::default()).unwrap();
    assert!(report.fired("e_to_f") >= 1, "E-to-F must fire");
    assert!(report.fired("select_merge") >= 1, "SELECT merge must fire");

    // Final graph (Fig. 3c): a single Select box joining EMP and DEPT.
    g.check().unwrap();
    let body = g.quns[g.outputs[0].qun].ranges_over;
    let b = g.boxed(body);
    assert_eq!(
        b.quns.len(),
        2,
        "one box, two quantifiers:\n{}",
        display::render(&g)
    );
    let kinds: Vec<QunKind> = b.quns.iter().map(|&q| g.quns[q].kind).collect();
    assert!(kinds.contains(&QunKind::Foreach) && kinds.contains(&QunKind::Semi));
    // Both the location restriction and the join predicate are local now.
    assert_eq!(b.preds.len(), 2);
    // Only EMP, DEPT and the select + top boxes remain.
    assert_eq!(g.count_kind("Select"), 1);
    assert_eq!(g.count_kind("BaseTable"), 2);
}

/// Without E-to-F the existential subquery survives (the naive baseline).
#[test]
fn fig3_naive_mode_keeps_existential() {
    let cat = paper_catalog();
    let q = parse_select(
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    )
    .unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    rewrite(
        &mut g,
        RewriteOptions {
            e_to_f: false,
            simplify: true,
        },
    )
    .unwrap();
    let has_existential = g.quns.iter().any(|q| q.kind == QunKind::Existential);
    assert!(
        has_existential,
        "naive mode must keep the E quantifier:\n{}",
        display::render(&g)
    );
}

/// Fig. 5: lowering deps_ARC. The xdept derivation is shared: it feeds its
/// own output stream, both child reachability semijoins and both connection
/// boxes — common subexpressions installed once (Fig. 6 / Table 1).
#[test]
fn fig5_deps_arc_lowering_shares_xdept() {
    let cat = paper_catalog();
    let q = parse_xnf(DEPS_ARC).unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    g.check().unwrap();

    // 8 output streams: 4 node streams + 4 connection streams.
    assert_eq!(g.outputs.len(), 8);
    let nodes = g
        .outputs
        .iter()
        .filter(|o| o.kind == OutputKind::Node)
        .count();
    assert_eq!(nodes, 4);
    let conns = g
        .outputs
        .iter()
        .filter(|o| matches!(o.kind, OutputKind::Connection { .. }))
        .count();
    assert_eq!(conns, 4);

    // No XNF box survives.
    assert_eq!(g.count_kind("XNF"), 0);

    // The xdept box (Select over DEPT with the 'ARC' predicate) is
    // referenced by: its output qun, xemp path, xproj path, employment
    // connection, ownership connection = 5 references.
    let xdept = g
        .boxes
        .iter()
        .find(|b| b.label == "xdept" && b.is_select())
        .unwrap_or_else(|| panic!("xdept box missing:\n{}", display::render(&g)));
    let refs = g.ref_counts();
    assert_eq!(
        refs[xdept.id],
        5,
        "xdept must be shared 5 ways:\n{}",
        display::render(&g)
    );

    // xskills is derived per path and unioned (object sharing).
    let union_count = g.count_kind("Union");
    assert_eq!(
        union_count,
        1,
        "xskills should be the only union:\n{}",
        display::render(&g)
    );
}

/// A single-parent child lowers to exactly the Fig. 5b shape after NF
/// rewrite: Select { F EMP, Semi xdept } with the relationship predicate.
#[test]
fn fig5_child_shape() {
    let cat = paper_catalog();
    let q = parse_xnf(
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE *",
    )
    .unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();

    let xemp_out = g.outputs.iter().find(|o| o.name == "xemp").unwrap();
    let body = g.quns[xemp_out.qun].ranges_over;
    let b = g.boxed(body);
    // After SELECT merge the EMP base table is joined directly.
    assert_eq!(b.quns.len(), 2, "{}", display::render(&g));
    let kinds: Vec<(QunKind, &str)> = b
        .quns
        .iter()
        .map(|&q| {
            (
                g.quns[q].kind,
                g.boxes[g.quns[q].ranges_over].label.as_str(),
            )
        })
        .collect();
    assert!(kinds.contains(&(QunKind::Foreach, "EMP")), "{kinds:?}");
    assert!(
        kinds
            .iter()
            .any(|(k, l)| *k == QunKind::Semi && *l == "xdept"),
        "{kinds:?}"
    );
}

/// Recursive schema graphs are rejected by the standard rewrite (they take
/// the fixpoint path).
#[test]
fn recursive_co_rejected() {
    let cat = paper_catalog();
    cat.create_table(
        "PARTS",
        Schema::from_pairs(&[("pid", DataType::Int), ("pname", DataType::Str)]),
    )
    .unwrap();
    cat.create_table(
        "BOM",
        Schema::from_pairs(&[("parent", DataType::Int), ("child", DataType::Int)]),
    )
    .unwrap();
    let q = parse_xnf(
        "OUT OF ROOT part AS (SELECT * FROM PARTS WHERE pid = 1),
                uses AS (RELATE part VIA sub, part USING BOM b
                         WHERE part.pid = b.parent AND b.child = sub.pid)
         TAKE *",
    )
    .unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    assert!(matches!(
        rewrite(&mut g, RewriteOptions::default()),
        Err(RewriteError::RecursiveCo)
    ));
}

/// Predicate pushdown moves a derived-table filter into the derivation.
#[test]
fn pushdown_moves_filters_down() {
    let cat = paper_catalog();
    let q = parse_select("SELECT * FROM (SELECT eno, sal FROM EMP) e WHERE e.sal > 100").unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    let report = rewrite(&mut g, RewriteOptions::default()).unwrap();
    // Merge may subsume pushdown here; either way the final graph is a
    // single select over EMP with the predicate local.
    assert!(report.fired("select_merge") + report.fired("predicate_pushdown") >= 1);
    let body = g.quns[g.outputs[0].qun].ranges_over;
    assert_eq!(g.boxed(body).preds.len(), 1);
    assert_eq!(g.count_kind("Select"), 1);
}

/// SELECT merge must not fire on shared boxes (common subexpressions) —
/// sharing is exactly what the XNF derivation relies on.
#[test]
fn merge_respects_sharing() {
    let cat = paper_catalog();
    let q = parse_xnf(
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                xproj AS PROJ,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno),
                ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = xproj.pdno)
         TAKE *",
    )
    .unwrap();
    let mut g = build_xnf_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    let xdept = g.boxes.iter().find(|b| b.label == "xdept" && b.is_select());
    assert!(
        xdept.is_some(),
        "shared xdept must survive merge:\n{}",
        display::render(&g)
    );
}

/// GroupBy boxes flow through the rewrite unharmed.
#[test]
fn group_by_survives_rewrite() {
    let cat = paper_catalog();
    let q = parse_select("SELECT edno, COUNT(*) AS n FROM EMP GROUP BY edno").unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    g.check().unwrap();
    assert_eq!(g.count_kind("GroupBy"), 1);
}

/// Constant folding removes tautologies and folds literal arithmetic.
#[test]
fn constant_folding_cleans_predicates() {
    let cat = paper_catalog();
    let q =
        parse_select("SELECT eno FROM EMP WHERE 1 = 1 AND sal > 50 + 50 AND NOT (2 > 3)").unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    let report = rewrite(&mut g, RewriteOptions::default()).unwrap();
    assert!(report.fired("constant_folding") >= 1);
    let body = g.quns[g.outputs[0].qun].ranges_over;
    // Only the real predicate survives, with the sum folded.
    assert_eq!(g.boxed(body).preds.len(), 1, "{}", display::render(&g));
    assert!(
        g.boxed(body).preds[0].to_string().contains("100"),
        "{}",
        display::render(&g)
    );
}

/// A contradiction folds to FALSE and stays (the executor yields no rows).
#[test]
fn contradiction_folds_to_false() {
    let cat = paper_catalog();
    let q = parse_select("SELECT eno FROM EMP WHERE 1 = 2").unwrap();
    let mut g = build_select_query(&cat, &q).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    let body = g.quns[g.outputs[0].qun].ranges_over;
    assert_eq!(g.boxed(body).preds.len(), 1);
    assert_eq!(g.boxed(body).preds[0].to_string(), "false");
}
