//! # xnf-rewrite — rule-based query rewrite (NF + XNF semantic rewrite)
//!
//! Reproduces the paper's two-component rewrite architecture (Sect. 4.4):
//! a shared [`engine`] runs both the **XNF semantic rewrite** (lowering the
//! XNF operator to NF QGM with reachability semijoins and shared component
//! derivations — Sect. 4.2) and the **NF rules** (E-to-F quantifier
//! conversion, SELECT merge, predicate pushdown, unused-box removal —
//! Sect. 3.2 / Fig. 3).
//!
//! Entry point: [`rewrite`] (in place over a QGM; returns a
//! [`RewriteReport`] of rule firings).
//!
//! ```
//! use std::sync::Arc;
//! use xnf_qgm::build_select_query;
//! use xnf_rewrite::{rewrite, RewriteOptions};
//! use xnf_sql::parse_select;
//! use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema};
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 16));
//! let catalog = Catalog::new(pool);
//! catalog
//!     .create_table("EMP", Schema::from_pairs(&[("eno", DataType::Int)]))
//!     .unwrap();
//! let s = parse_select(
//!     "SELECT eno FROM EMP WHERE EXISTS (SELECT 1 FROM EMP e WHERE e.eno = EMP.eno)",
//! )
//! .unwrap();
//! let mut qgm = build_select_query(&catalog, &s).unwrap();
//! let report = rewrite(&mut qgm, RewriteOptions::default()).unwrap();
//! assert!(report.total() > 0, "E-to-F and friends fired");
//! ```

pub mod engine;
pub mod error;
pub mod rules_nf;
pub mod xnf_lowering;

pub use engine::{RewriteReport, Rule, RuleEngine};
pub use error::{Result, RewriteError};
pub use rules_nf::{
    nf_rules, nf_rules_no_etof, xnf_cleanup_rules, ConstantFolding, EToF, PredicatePushdown,
    RemoveUnusedBoxes, SelectMerge,
};
pub use xnf_lowering::xnf_semantic_rewrite;

use xnf_qgm::Qgm;

/// Rewrite options.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Apply the E-to-F (existential subquery → semijoin) conversion.
    /// Disabling this reproduces the naive execution strategy of Fig. 3.
    pub e_to_f: bool,
    /// Apply SELECT merge and predicate pushdown.
    pub simplify: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            e_to_f: true,
            simplify: true,
        }
    }
}

/// Full rewrite pipeline: XNF semantic rewrite (when an XNF operator is
/// present), then NF rules to fixpoint.
pub fn rewrite(qgm: &mut Qgm, options: RewriteOptions) -> Result<RewriteReport> {
    xnf_semantic_rewrite(qgm)?;
    let rules = match (options.e_to_f, options.simplify) {
        (true, true) => nf_rules(),
        (false, true) => nf_rules_no_etof(),
        (true, false) => vec![Box::new(EToF) as Box<dyn Rule>, Box::new(RemoveUnusedBoxes)],
        (false, false) => vec![Box::new(RemoveUnusedBoxes) as Box<dyn Rule>],
    };
    let engine = RuleEngine::new(rules);
    engine.run(qgm)
}

#[cfg(test)]
mod rewrite_tests;
