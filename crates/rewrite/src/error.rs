//! Rewrite errors.

use std::fmt;

use xnf_qgm::QgmError;

/// Errors raised by rewrite rules or the XNF lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// Structural invariant violated mid-rewrite (a bug, surfaced loudly).
    Corrupt(String),
    /// The query needs the recursive-CO evaluation path (cyclic schema
    /// graph) and cannot be lowered by the standard rewrite.
    RecursiveCo,
    /// Underlying semantic error.
    Qgm(QgmError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Corrupt(m) => write!(f, "rewrite invariant violated: {m}"),
            RewriteError::RecursiveCo => {
                write!(
                    f,
                    "recursive composite object: use the fixpoint evaluation path"
                )
            }
            RewriteError::Qgm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<QgmError> for RewriteError {
    fn from(e: QgmError) -> Self {
        RewriteError::Qgm(e)
    }
}

pub type Result<T> = std::result::Result<T, RewriteError>;
