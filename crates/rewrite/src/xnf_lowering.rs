//! XNF semantic rewrite (Sect. 4.2, Fig. 5): replace the XNF operator by NF
//! boxes.
//!
//! For every non-root node component `N`, reachability is rewritten into a
//! semijoin of `N`'s own derivation against the *final* derivation of its
//! parent component, through the relationship predicate — exactly Fig. 5b:
//! the parent's derived table (e.g. `dept_arc`) is fed both to the output
//! and to the computation of the child component. A node reachable through
//! several relationships is derived per path and combined with a
//! duplicate-removing UNION (object sharing: a tuple exists once however
//! many paths reach it).
//!
//! Because every path/connection box *references the shared component
//! boxes* instead of re-deriving them, the multi-table XNF query graph gets
//! common-subexpression treatment for free (Fig. 6 / Table 1).
//!
//! Connection (relationship) streams are Select boxes joining the final
//! partner derivations and projecting the partners' ROWID pseudo-columns;
//! the CO cache uses those ids to swizzle pointers (Sect. 5).

use std::collections::HashMap;

use xnf_qgm::{
    schema_graph_has_cycle, BoxId, BoxKind, HeadColumn, OutputDesc, OutputKind, Qgm, QunId,
    QunKind, ScalarExpr, SelectBox, UnionBox, XnfBox, XnfComponent, XnfComponentKind, ROWID_COL,
};

use crate::error::{Result, RewriteError};

/// Apply the XNF semantic rewrite in place. No-op for graphs without an XNF
/// operator. Fails with [`RewriteError::RecursiveCo`] for cyclic schema
/// graphs (those take the fixpoint evaluation path in `xnf-core`).
pub fn xnf_semantic_rewrite(qgm: &mut Qgm) -> Result<()> {
    let Some((xnf_id, xnf)) = find_xnf(qgm) else {
        return Ok(());
    };
    if schema_graph_has_cycle(&xnf) {
        return Err(RewriteError::RecursiveCo);
    }
    let components = xnf.components;

    // Index components and collect relationships per child.
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for (i, c) in components.iter().enumerate() {
        by_name.insert(c.name.to_ascii_lowercase(), i);
    }
    let rels: Vec<(usize, &XnfComponent)> = components
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.kind, XnfComponentKind::Relationship { .. }))
        .collect();

    // Topological order over nodes (parents before children).
    let order = topo_nodes(&components, &by_name)?;

    // Derive final boxes per node.
    let mut final_box: HashMap<String, BoxId> = HashMap::new();
    for &ni in &order {
        let node = &components[ni];
        let (root, _) = match node.kind {
            XnfComponentKind::Node { root, reachable } => (root, reachable),
            _ => unreachable!("order contains nodes only"),
        };
        if root {
            final_box.insert(node.name.to_ascii_lowercase(), node.body);
            continue;
        }
        // Incoming relationships.
        let incoming: Vec<&XnfComponent> = rels
            .iter()
            .map(|(_, r)| *r)
            .filter(|r| match &r.kind {
                XnfComponentKind::Relationship { children, .. } => {
                    children.iter().any(|c| c.eq_ignore_ascii_case(&node.name))
                }
                _ => false,
            })
            .collect();
        debug_assert!(!incoming.is_empty(), "builder guarantees reachability");

        let node_name = components[ni].name.clone();
        let node_body = components[ni].body;
        let mut paths = Vec::with_capacity(incoming.len());
        let incoming: Vec<XnfComponent> = incoming.into_iter().cloned().collect();
        for rel in &incoming {
            let p = build_path_box(
                qgm,
                &components,
                &by_name,
                &final_box,
                &node_name,
                node_body,
                rel,
            )?;
            paths.push(p);
        }
        let fin = if paths.len() == 1 {
            paths[0]
        } else {
            // Object sharing: distinct union over the per-path derivations.
            let ub = qgm.add_box(
                BoxKind::Union(UnionBox { all: false }),
                format!("{node_name}_paths"),
            );
            let mut first = None;
            for (i, p) in paths.iter().enumerate() {
                let q = qgm.add_qun(ub, QunKind::Foreach, *p, format!("p{i}"));
                if i == 0 {
                    first = Some(q);
                }
            }
            let fq = first.unwrap();
            let names: Vec<String> = qgm
                .boxed(node_body)
                .head
                .iter()
                .map(|h| h.name.clone())
                .collect();
            for (i, name) in names.into_iter().enumerate() {
                qgm.boxes[ub].head.push(HeadColumn {
                    name,
                    expr: ScalarExpr::col(fq, i),
                });
            }
            ub
        };
        final_box.insert(node_name.to_ascii_lowercase(), fin);
    }

    // Connection boxes for taken relationships.
    let mut conn_box: HashMap<String, BoxId> = HashMap::new();
    for (_, rel) in &rels {
        if !rel.taken {
            continue;
        }
        let cb = build_connection_box(qgm, &final_box, rel)?;
        conn_box.insert(rel.name.to_ascii_lowercase(), cb);
    }

    // Wire the Top box: node streams (definition order), then connections.
    let top = qgm
        .top
        .ok_or_else(|| RewriteError::Corrupt("XNF graph without Top".into()))?;
    qgm.boxes[top].quns.clear();
    qgm.outputs.clear();
    for c in &components {
        if !c.taken {
            continue;
        }
        match &c.kind {
            XnfComponentKind::Node { .. } => {
                let fin = final_box[&c.name.to_ascii_lowercase()];
                let over = match &c.projection {
                    None => fin,
                    Some(ords) => {
                        // The paper's 'output' boxes: a projection Select box
                        // over the component derivation. Order-preserving, so
                        // stream position still equals the component rowid.
                        let ob = qgm.add_box(
                            BoxKind::Select(SelectBox::default()),
                            format!("{}_out", c.name),
                        );
                        let q = qgm.add_qun(ob, QunKind::Foreach, fin, c.name.as_str());
                        let cols: Vec<(String, usize)> = ords
                            .iter()
                            .map(|&o| (qgm.boxed(fin).head[o].name.clone(), o))
                            .collect();
                        for (name, o) in cols {
                            qgm.boxes[ob].head.push(HeadColumn {
                                name,
                                expr: ScalarExpr::col(q, o),
                            });
                        }
                        ob
                    }
                };
                let tq = qgm.add_qun(top, QunKind::Foreach, over, c.name.as_str());
                qgm.outputs.push(OutputDesc {
                    qun: tq,
                    name: c.name.clone(),
                    kind: OutputKind::Node,
                });
            }
            XnfComponentKind::Relationship {
                parent,
                role,
                children,
            } => {
                let cb = conn_box[&c.name.to_ascii_lowercase()];
                let tq = qgm.add_qun(top, QunKind::Foreach, cb, c.name.as_str());
                qgm.outputs.push(OutputDesc {
                    qun: tq,
                    name: c.name.clone(),
                    kind: OutputKind::Connection {
                        relationship: c.name.clone(),
                        parent: parent.clone(),
                        children: children.clone(),
                        role: role.clone(),
                    },
                });
            }
        }
    }

    // The XNF operator box is now unreferenced; physically remove it.
    let _ = xnf_id;
    qgm.compact();
    qgm.check().map_err(RewriteError::Corrupt)?;
    Ok(())
}

/// Locate and detach the XNF box payload.
fn find_xnf(qgm: &Qgm) -> Option<(BoxId, XnfBox)> {
    qgm.boxes.iter().find_map(|b| match &b.kind {
        BoxKind::Xnf(x) => Some((b.id, x.clone())),
        _ => None,
    })
}

/// Topological order of node components (Kahn's algorithm over the schema
/// graph).
fn topo_nodes(components: &[XnfComponent], by_name: &HashMap<String, usize>) -> Result<Vec<usize>> {
    let node_ids: Vec<usize> = components
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.kind, XnfComponentKind::Node { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut indegree: HashMap<usize, usize> = node_ids.iter().map(|&i| (i, 0)).collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in components {
        if let XnfComponentKind::Relationship {
            parent, children, ..
        } = &c.kind
        {
            let p = by_name[&parent.to_ascii_lowercase()];
            for ch in children {
                let c = by_name[&ch.to_ascii_lowercase()];
                edges.push((p, c));
                *indegree.get_mut(&c).unwrap() += 1;
            }
        }
    }
    let mut queue: Vec<usize> = node_ids
        .iter()
        .copied()
        .filter(|i| indegree[i] == 0)
        .collect();
    let mut order = Vec::with_capacity(node_ids.len());
    while let Some(n) = queue.pop() {
        order.push(n);
        for &(p, c) in &edges {
            if p == n {
                let d = indegree.get_mut(&c).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                }
            }
        }
    }
    if order.len() != node_ids.len() {
        return Err(RewriteError::RecursiveCo);
    }
    Ok(order)
}

/// The quantifiers of a relationship body box, split positionally as the
/// XNF builder laid them out: parent, children..., using tables.
struct RelQuns {
    parent: QunId,
    children: Vec<QunId>,
    using: Vec<QunId>,
}

fn rel_quns(qgm: &Qgm, rel: &XnfComponent) -> Result<RelQuns> {
    let XnfComponentKind::Relationship { children, .. } = &rel.kind else {
        return Err(RewriteError::Corrupt("rel_quns on a node".into()));
    };
    let quns = &qgm.boxed(rel.body).quns;
    if quns.len() < 1 + children.len() {
        return Err(RewriteError::Corrupt(format!(
            "relationship '{}' body has too few quantifiers",
            rel.name
        )));
    }
    for &q in quns {
        if qgm.qun(q).kind != QunKind::Foreach {
            return Err(RewriteError::Corrupt(format!(
                "relationship '{}' predicates may not contain subqueries",
                rel.name
            )));
        }
    }
    Ok(RelQuns {
        parent: quns[0],
        children: quns[1..1 + children.len()].to_vec(),
        using: quns[1 + children.len()..].to_vec(),
    })
}

/// Build the per-path derivation box for `node` reachable via `rel`
/// (Fig. 5b): F over the node's own derivation, Semi over the parent's
/// final derivation (and over sibling partners / USING tables), with the
/// relationship predicate re-homed onto the new quantifiers.
fn build_path_box(
    qgm: &mut Qgm,
    components: &[XnfComponent],
    by_name: &HashMap<String, usize>,
    final_box: &HashMap<String, BoxId>,
    node_name: &str,
    node_body: BoxId,
    rel: &XnfComponent,
) -> Result<BoxId> {
    let XnfComponentKind::Relationship {
        parent, children, ..
    } = &rel.kind
    else {
        unreachable!()
    };
    let rq = rel_quns(qgm, rel)?;

    let p = qgm.add_box(
        BoxKind::Select(SelectBox::default()),
        format!("{node_name}_via_{}", rel.name),
    );

    // Map old (relationship-body) quantifiers to new ones in the path box.
    let mut qun_map: HashMap<QunId, QunId> = HashMap::new();

    // The node itself: the F leg. If the node appears several times among
    // the children (self-ish n-ary), the first occurrence is the F leg and
    // the rest are Semi legs.
    let f_qun = qgm.add_qun(p, QunKind::Foreach, node_body, node_name);

    // Parent: Semi over its final derivation (reachability).
    let parent_fin = *final_box
        .get(&parent.to_ascii_lowercase())
        .ok_or_else(|| RewriteError::Corrupt(format!("parent '{parent}' not derived yet")))?;
    let pq = qgm.add_qun(p, QunKind::Semi, parent_fin, parent.as_str());
    qun_map.insert(rq.parent, pq);

    let mut node_mapped = false;
    for (child_name, &old_q) in children.iter().zip(&rq.children) {
        if child_name.eq_ignore_ascii_case(node_name) && !node_mapped {
            qun_map.insert(old_q, f_qun);
            node_mapped = true;
        } else {
            // Sibling partner of an n-ary relationship: existential leg over
            // its own (pre-reachability) derivation.
            let sibling_idx = by_name[&child_name.to_ascii_lowercase()];
            let sq = qgm.add_qun(
                p,
                QunKind::Semi,
                components[sibling_idx].body,
                child_name.as_str(),
            );
            qun_map.insert(old_q, sq);
        }
    }
    for &old_q in &rq.using {
        let over = qgm.qun(old_q).ranges_over;
        let name = qgm.qun(old_q).name.clone();
        let uq = qgm.add_qun(p, QunKind::Semi, over, name);
        qun_map.insert(old_q, uq);
    }

    // Re-home the relationship predicates.
    let preds: Vec<ScalarExpr> = qgm.boxed(rel.body).preds.clone();
    for pred in preds {
        let mapped = pred.map_cols(&mut |q, c| {
            let nq = qun_map.get(&q).copied().unwrap_or(q);
            ScalarExpr::Col { qun: nq, col: c }
        });
        qgm.boxes[p].preds.push(mapped);
    }

    // Head: the node's own columns.
    let names: Vec<String> = qgm
        .boxed(node_body)
        .head
        .iter()
        .map(|h| h.name.clone())
        .collect();
    for (i, name) in names.into_iter().enumerate() {
        qgm.boxes[p].head.push(HeadColumn {
            name,
            expr: ScalarExpr::col(f_qun, i),
        });
    }
    Ok(p)
}

/// Build the connection box of a relationship: an F-join of the partners'
/// final derivations (plus USING tables) projecting partner ROWIDs.
fn build_connection_box(
    qgm: &mut Qgm,
    final_box: &HashMap<String, BoxId>,
    rel: &XnfComponent,
) -> Result<BoxId> {
    let XnfComponentKind::Relationship {
        parent, children, ..
    } = &rel.kind
    else {
        unreachable!()
    };
    let rq = rel_quns(qgm, rel)?;
    let cb = qgm.add_box(BoxKind::Select(SelectBox::default()), rel.name.clone());
    let mut qun_map: HashMap<QunId, QunId> = HashMap::new();

    let parent_fin = *final_box
        .get(&parent.to_ascii_lowercase())
        .ok_or_else(|| RewriteError::Corrupt(format!("parent '{parent}' not derived")))?;
    let pq = qgm.add_qun(cb, QunKind::Foreach, parent_fin, parent.as_str());
    qun_map.insert(rq.parent, pq);

    let mut child_quns = Vec::new();
    for (child_name, &old_q) in children.iter().zip(&rq.children) {
        let child_fin = *final_box
            .get(&child_name.to_ascii_lowercase())
            .ok_or_else(|| RewriteError::Corrupt(format!("child '{child_name}' not derived")))?;
        let cq = qgm.add_qun(cb, QunKind::Foreach, child_fin, child_name.as_str());
        qun_map.insert(old_q, cq);
        child_quns.push(cq);
    }
    for &old_q in &rq.using {
        let over = qgm.qun(old_q).ranges_over;
        let name = qgm.qun(old_q).name.clone();
        let uq = qgm.add_qun(cb, QunKind::Foreach, over, name);
        qun_map.insert(old_q, uq);
    }

    let preds: Vec<ScalarExpr> = qgm.boxed(rel.body).preds.clone();
    for pred in preds {
        let mapped = pred.map_cols(&mut |q, c| {
            let nq = qun_map.get(&q).copied().unwrap_or(q);
            ScalarExpr::Col { qun: nq, col: c }
        });
        qgm.boxes[cb].preds.push(mapped);
    }

    qgm.boxes[cb].head.push(HeadColumn {
        name: format!("{parent}_id"),
        expr: ScalarExpr::Col {
            qun: pq,
            col: ROWID_COL,
        },
    });
    for (child_name, cq) in children.iter().zip(&child_quns) {
        qgm.boxes[cb].head.push(HeadColumn {
            name: format!("{child_name}_id"),
            expr: ScalarExpr::Col {
                qun: *cq,
                col: ROWID_COL,
            },
        });
    }
    Ok(cb)
}
