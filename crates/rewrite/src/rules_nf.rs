//! NF (relational) rewrite rules.
//!
//! The three rules the paper leans on (Sect. 3.2, Fig. 3, \[39\]):
//!
//! - [`EToF`] — *E-to-F quantifier conversion*: an existential subquery
//!   quantifier becomes a set-oriented `Semi` quantifier, turning per-tuple
//!   subquery evaluation into a semijoin (Fig. 3a → 3b). Disabling this rule
//!   is what the Fig. 3 experiment uses as the naive baseline.
//! - [`SelectMerge`] — merges a single-reference Select box into its
//!   consumer (Fig. 3b → 3c), enabling join-order optimization across the
//!   former box boundary.
//! - [`PredicatePushdown`] — moves single-quantifier predicates into the box
//!   the quantifier ranges over, so scans see their filters.
//!
//! Plus the clean-up rule [`RemoveUnusedBoxes`] (Sect. 4.4) shared with the
//! XNF rewrite component.

use xnf_qgm::{BoxId, BoxKind, Qgm, QunId, QunKind, ScalarExpr, ROWID_COL};

use crate::engine::Rule;
use crate::error::Result;

/// Replace every reference to `qun`'s columns, everywhere in the graph,
/// using the head expressions in `head_map` (indexable by column ordinal).
fn substitute_qun_globally(qgm: &mut Qgm, qun: QunId, head_map: &[ScalarExpr]) {
    let rewrite = |e: &ScalarExpr| {
        e.map_cols(&mut |q, c| {
            if q == qun {
                head_map[c].clone()
            } else {
                ScalarExpr::Col { qun: q, col: c }
            }
        })
    };
    for b in &mut qgm.boxes {
        for h in &mut b.head {
            h.expr = rewrite(&h.expr);
        }
        for p in &mut b.preds {
            *p = rewrite(p);
        }
        if let BoxKind::GroupBy(g) = &mut b.kind {
            for e in &mut g.group_by {
                *e = rewrite(e);
            }
        }
    }
}

/// Is `Col{qun, ROWID_COL}` referenced anywhere? (Such quantifiers feed CO
/// connection streams and must not be merged away.)
fn rowid_observed(qgm: &Qgm, qun: QunId) -> bool {
    let check = |e: &ScalarExpr| -> bool {
        let mut found = false;
        let _ = e.map_cols(&mut |q, c| {
            if q == qun && c == ROWID_COL {
                found = true;
            }
            ScalarExpr::Col { qun: q, col: c }
        });
        found
    };
    qgm.boxes.iter().any(|b| {
        b.head.iter().any(|h| check(&h.expr))
            || b.preds.iter().any(check)
            || match &b.kind {
                BoxKind::GroupBy(g) => g.group_by.iter().any(check),
                _ => false,
            }
    })
}

/// E-to-F quantifier conversion (existential subquery → semijoin).
pub struct EToF;

impl Rule for EToF {
    fn name(&self) -> &'static str {
        "e_to_f"
    }

    fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
        let reachable = qgm.reachable_boxes();
        for b in &qgm.boxes {
            if !reachable[b.id] {
                continue;
            }
            for &q in &b.quns {
                if qgm.quns[q].kind == QunKind::Existential {
                    let qid = q;
                    qgm.quns[qid].kind = QunKind::Semi;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }
}

/// Merge a Select box that is referenced exactly once into its consumer.
pub struct SelectMerge;

impl SelectMerge {
    /// Find a `(consumer, qun, inner)` merge candidate.
    fn candidate(qgm: &Qgm) -> Option<(BoxId, QunId, BoxId)> {
        let reachable = qgm.reachable_boxes();
        let refs = qgm.ref_counts();
        for b in &qgm.boxes {
            if !reachable[b.id] || !b.is_select() {
                continue;
            }
            for &q in &b.quns {
                let qk = qgm.quns[q].kind;
                if qk != QunKind::Foreach && qk != QunKind::Semi {
                    continue;
                }
                let inner = qgm.quns[q].ranges_over;
                let ib = qgm.boxed(inner);
                if !ib.is_select() || refs[inner] != 1 {
                    continue;
                }
                // A DISTINCT inner box can only merge under a Semi consumer
                // (semijoins ignore duplicate inner rows).
                let inner_distinct = ib.as_select().map(|s| s.distinct).unwrap_or(false);
                if inner_distinct && qk != QunKind::Semi {
                    continue;
                }
                // When merging under Foreach, the inner box must not contain
                // Semi/E/Anti groups that would change meaning? They keep
                // their joint semantics inside the consumer, so they are
                // fine. Only rowid observation blocks the merge.
                if rowid_observed(qgm, q) {
                    continue;
                }
                // Inner head must be pure column/literal expressions when the
                // consumer references them under aggregation? Aggregates sit
                // in GroupBy boxes (never Select), so plain substitution is
                // sound here.
                return Some((b.id, q, inner));
            }
        }
        None
    }
}

impl Rule for SelectMerge {
    fn name(&self) -> &'static str {
        "select_merge"
    }

    fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
        let Some((outer, q, inner)) = Self::candidate(qgm) else {
            return Ok(false);
        };
        let merged_as_semi = qgm.quns[q].kind == QunKind::Semi;

        // 1. Substitute inner head expressions for references to q.
        let head_map: Vec<ScalarExpr> = qgm
            .boxed(inner)
            .head
            .iter()
            .map(|h| h.expr.clone())
            .collect();
        substitute_qun_globally(qgm, q, &head_map);

        // 2. Move inner quantifiers into the outer box, replacing q in
        //    place (keeps join-order hints stable). Under a Semi consumer
        //    every transferred F/Semi quantifier becomes Semi (the whole
        //    inner binding is existential).
        let inner_quns: Vec<QunId> = qgm.boxed(inner).quns.clone();
        let pos = qgm.boxes[outer]
            .quns
            .iter()
            .position(|&x| x == q)
            .expect("qun in owner");
        qgm.boxes[outer].quns.remove(pos);
        for (i, iq) in inner_quns.iter().enumerate() {
            qgm.boxes[outer].quns.insert(pos + i, *iq);
            if merged_as_semi {
                let k = qgm.quns[*iq].kind;
                if k == QunKind::Foreach {
                    qgm.quns[*iq].kind = QunKind::Semi;
                }
            }
        }
        qgm.boxes[inner].quns.clear();

        // 3. Move inner predicates up.
        let inner_preds = std::mem::take(&mut qgm.boxes[inner].preds);
        qgm.boxes[outer].preds.extend(inner_preds);

        // The inner box is now unreferenced; RemoveUnusedBoxes reclaims it.
        Ok(true)
    }
}

/// Push single-quantifier predicates into the (solely referenced) Select box
/// the quantifier ranges over.
pub struct PredicatePushdown;

impl Rule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
        let reachable = qgm.reachable_boxes();
        let refs = qgm.ref_counts();
        let mut target: Option<(BoxId, usize, QunId, BoxId)> = None;
        'outer: for b in &qgm.boxes {
            if !reachable[b.id] || !b.is_select() {
                continue;
            }
            for (pi, p) in b.preds.iter().enumerate() {
                let quns = p.quns();
                if quns.len() != 1 {
                    continue;
                }
                let q = quns[0];
                if !b.quns.contains(&q) {
                    continue; // correlated predicate, owned elsewhere
                }
                let inner = qgm.quns[q].ranges_over;
                let ib = qgm.boxed(inner);
                if !ib.is_select() || refs[inner] != 1 {
                    continue;
                }
                // ROWID references cannot be mapped through a head.
                let mut has_rowid = false;
                let _ = p.map_cols(&mut |qq, c| {
                    if c == ROWID_COL {
                        has_rowid = true;
                    }
                    ScalarExpr::Col { qun: qq, col: c }
                });
                if has_rowid {
                    continue;
                }
                target = Some((b.id, pi, q, inner));
                break 'outer;
            }
        }
        let Some((outer, pi, q, inner)) = target else {
            return Ok(false);
        };
        let pred = qgm.boxes[outer].preds.remove(pi);
        let head_map: Vec<ScalarExpr> = qgm
            .boxed(inner)
            .head
            .iter()
            .map(|h| h.expr.clone())
            .collect();
        let pushed = pred.map_cols(&mut |qq, c| {
            if qq == q {
                head_map[c].clone()
            } else {
                ScalarExpr::Col { qun: qq, col: c }
            }
        });
        qgm.boxes[inner].preds.push(pushed);
        Ok(true)
    }
}

/// Remove boxes unreachable from Top (clean-up; shared with XNF rewrite).
pub struct RemoveUnusedBoxes;

impl Rule for RemoveUnusedBoxes {
    fn name(&self) -> &'static str {
        "remove_unused_boxes"
    }

    fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
        let before = qgm.boxes.len();
        let reachable = qgm.reachable_boxes();
        if reachable.iter().all(|&r| r) {
            return Ok(false);
        }
        qgm.compact();
        Ok(qgm.boxes.len() < before)
    }
}

/// The standard NF rule set, in the order the paper motivates: convert
/// existentials, merge boxes, push predicates, clean up.
pub fn nf_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ConstantFolding),
        Box::new(EToF),
        Box::new(SelectMerge),
        Box::new(PredicatePushdown),
        Box::new(RemoveUnusedBoxes),
    ]
}

/// NF rules *without* E-to-F: the naive baseline for the Fig. 3 experiment
/// (existential subqueries stay tuple-at-a-time).
pub fn nf_rules_no_etof() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ConstantFolding),
        Box::new(SelectMerge),
        Box::new(PredicatePushdown),
        Box::new(RemoveUnusedBoxes),
    ]
}

/// The NF simplification subset made available to the XNF rewrite component
/// (Sect. 4.4: "removal of unused boxes, box merge, and other clean-up").
pub fn xnf_cleanup_rules() -> Vec<Box<dyn Rule>> {
    vec![Box::new(SelectMerge), Box::new(RemoveUnusedBoxes)]
}

/// Constant folding + trivial predicate elimination: literal-only
/// subexpressions are evaluated at rewrite time; predicates that fold to
/// TRUE are dropped. (Starburst's rewrite had a family of such clean-up
/// rules; this keeps EXPLAIN output and op counts honest when queries carry
/// tautologies like `1 = 1`.)
pub struct ConstantFolding;

fn fold(e: &ScalarExpr) -> ScalarExpr {
    use xnf_qgm::ScalarExpr as S;
    use xnf_sql::{BinOp, UnaryOp};
    use xnf_storage::Value;
    match e {
        S::Binary { left, op, right } => {
            let l = fold(left);
            let r = fold(right);
            if let (S::Literal(a), S::Literal(b)) = (&l, &r) {
                let folded = match op {
                    BinOp::Eq
                    | BinOp::NotEq
                    | BinOp::Lt
                    | BinOp::LtEq
                    | BinOp::Gt
                    | BinOp::GtEq => match a.sql_cmp(b) {
                        None => Some(Value::Null),
                        Some(ord) => Some(Value::Bool(match op {
                            BinOp::Eq => ord.is_eq(),
                            BinOp::NotEq => !ord.is_eq(),
                            BinOp::Lt => ord.is_lt(),
                            BinOp::LtEq => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::GtEq => ord.is_ge(),
                            _ => unreachable!(),
                        })),
                    },
                    BinOp::And => match (a, b) {
                        (Value::Bool(false), _) | (_, Value::Bool(false)) => {
                            Some(Value::Bool(false))
                        }
                        (Value::Bool(true), Value::Bool(true)) => Some(Value::Bool(true)),
                        _ => None,
                    },
                    BinOp::Or => match (a, b) {
                        (Value::Bool(true), _) | (_, Value::Bool(true)) => Some(Value::Bool(true)),
                        (Value::Bool(false), Value::Bool(false)) => Some(Value::Bool(false)),
                        _ => None,
                    },
                    // Arithmetic folding: integers only (floats keep their
                    // runtime semantics; overflow aborts folding).
                    BinOp::Add | BinOp::Sub | BinOp::Mul => match (a, b) {
                        (Value::Int(x), Value::Int(y)) => {
                            let v = match op {
                                BinOp::Add => x.checked_add(*y),
                                BinOp::Sub => x.checked_sub(*y),
                                BinOp::Mul => x.checked_mul(*y),
                                _ => unreachable!(),
                            };
                            v.map(Value::Int)
                        }
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(v) = folded {
                    return S::Literal(v);
                }
            }
            // Short-circuit simplifications with one literal side.
            if *op == BinOp::And {
                if matches!(l, S::Literal(Value::Bool(true))) {
                    return r;
                }
                if matches!(r, S::Literal(Value::Bool(true))) {
                    return l;
                }
            }
            if *op == BinOp::Or {
                if matches!(l, S::Literal(Value::Bool(false))) {
                    return r;
                }
                if matches!(r, S::Literal(Value::Bool(false))) {
                    return l;
                }
            }
            S::Binary {
                left: Box::new(l),
                op: *op,
                right: Box::new(r),
            }
        }
        S::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            let inner = fold(expr);
            if let S::Literal(Value::Bool(b)) = inner {
                return S::Literal(Value::Bool(!b));
            }
            S::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            }
        }
        S::Unary { op, expr } => S::Unary {
            op: *op,
            expr: Box::new(fold(expr)),
        },
        S::IsNull { expr, negated } => {
            let inner = fold(expr);
            if let S::Literal(v) = &inner {
                return S::Literal(Value::Bool(v.is_null() != *negated));
            }
            S::IsNull {
                expr: Box::new(inner),
                negated: *negated,
            }
        }
        S::Like {
            expr,
            pattern,
            negated,
        } => S::Like {
            expr: Box::new(fold(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        S::InList {
            expr,
            list,
            negated,
        } => S::InList {
            expr: Box::new(fold(expr)),
            list: list.iter().map(fold).collect(),
            negated: *negated,
        },
        S::Func { func, args } => S::Func {
            func: *func,
            args: args.iter().map(fold).collect(),
        },
        S::Agg {
            func,
            arg,
            distinct,
        } => S::Agg {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(fold(a))),
            distinct: *distinct,
        },
        // Parameters are opaque constants at rewrite time: their value is
        // unknown until bind, so they never fold.
        S::Literal(_) | S::Param(_) | S::Col { .. } => e.clone(),
    }
}

impl Rule for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant_folding"
    }

    fn apply(&self, qgm: &mut Qgm) -> Result<bool> {
        use xnf_qgm::ScalarExpr as S;
        use xnf_storage::Value;
        let mut changed = false;
        for b in &mut qgm.boxes {
            for h in &mut b.head {
                let folded = fold(&h.expr);
                if folded.signature() != h.expr.signature() {
                    h.expr = folded;
                    changed = true;
                }
            }
            let before = b.preds.len();
            let mut new_preds = Vec::with_capacity(before);
            for p in &b.preds {
                let folded = fold(p);
                if matches!(folded, S::Literal(Value::Bool(true))) {
                    changed = true;
                    continue; // tautology: drop
                }
                if folded.signature() != p.signature() {
                    changed = true;
                }
                new_preds.push(folded);
            }
            b.preds = new_preds;
        }
        Ok(changed)
    }
}
