//! # xnf-sql — SQL + XNF front end (Starburst "CORONA" parser analog)
//!
//! A hand-written lexer and recursive-descent parser for:
//!
//! - a practical SQL subset (SELECT with joins/EXISTS/IN/GROUP BY/HAVING/
//!   ORDER BY/UNION, INSERT/UPDATE/DELETE, CREATE TABLE/INDEX/VIEW, ANALYZE);
//! - the **XNF composite-object constructor** of the paper:
//!   `OUT OF <component tables, RELATE relationships> TAKE <projection>`,
//!   including the `VIA` role clause, `USING` mapping tables, the base-table
//!   shortcut (`xemp AS EMP`), `TAKE *` vs item projection, inlining of
//!   existing XNF views by name, and an explicit `ROOT` marker for recursive
//!   COs.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use error::{ParseError, Result};
pub use parser::{
    parse_expr, parse_select, parse_statement, parse_statement_params, parse_statements, parse_xnf,
};

#[cfg(test)]
mod parser_tests;
