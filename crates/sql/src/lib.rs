//! # xnf-sql — SQL + XNF front end (Starburst "CORONA" parser analog)
//!
//! The first stage of the paper's compilation pipeline (Sect. 4, Fig. 2):
//! a hand-written lexer ([`lexer`]) and recursive-descent parser
//! ([`parser`]) producing the ASTs of [`ast`] for:
//!
//! - a practical SQL subset (SELECT with joins/EXISTS/IN/GROUP BY/HAVING/
//!   ORDER BY/UNION, INSERT/UPDATE/DELETE, CREATE TABLE/INDEX/VIEW —
//!   plain and `MATERIALIZED`, with `REFRESH MATERIALIZED VIEW` — and
//!   ANALYZE);
//! - the **XNF composite-object constructor** of the paper (Sect. 2,
//!   Fig. 1): `OUT OF <component tables, RELATE relationships> TAKE
//!   <projection>`, including the `VIA` role clause, `USING` mapping
//!   tables, the base-table shortcut (`xemp AS EMP`), `TAKE *` vs item
//!   projection, inlining of existing XNF views by name, and an explicit
//!   `ROOT` marker for recursive COs.
//!
//! Entry points: [`parse_statement`] / [`parse_statements`] (scripts),
//! [`parse_statement_params`] (prepared statements, counting `?`
//! placeholders), [`parse_select`] / [`parse_xnf`] for single query kinds.
//!
//! ```
//! use xnf_sql::{parse_statement, Statement};
//!
//! let stmt = parse_statement(
//!     "CREATE MATERIALIZED VIEW hot AS SELECT eno FROM EMP WHERE sal > 100",
//! )
//! .unwrap();
//! assert!(matches!(stmt, Statement::CreateView { materialized: true, .. }));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use error::{ParseError, Result};
pub use parser::{
    parse_expr, parse_select, parse_statement, parse_statement_params, parse_statements, parse_xnf,
};

#[cfg(test)]
mod parser_tests;
