//! Recursive-descent parser for the SQL dialect and the XNF extension.
//!
//! The grammar follows the paper's surface syntax for XNF (Sect. 2, Fig. 1)
//! with one addition: an optional `ROOT` marker on component definitions so
//! recursive COs (cyclic schema graphs) can name their anchors explicitly.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Words that cannot be used as implicit (AS-less) aliases.
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "BY",
    "LIMIT",
    "UNION",
    "ALL",
    "DISTINCT",
    "AS",
    "ON",
    "JOIN",
    "INNER",
    "AND",
    "OR",
    "NOT",
    "IN",
    "EXISTS",
    "LIKE",
    "BETWEEN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "VIEW",
    "UNIQUE",
    "DROP",
    "ANALYZE",
    "OUT",
    "OF",
    "TAKE",
    "RELATE",
    "VIA",
    "USING",
    "ROOT",
    "ASC",
    "DESC",
    "MATERIALIZED",
    "REFRESH",
];

/// Parse a sequence of semicolon-separated statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

/// Parse exactly one statement.
pub fn parse_statement(input: &str) -> Result<Statement> {
    Ok(parse_statement_params(input)?.0)
}

/// Parse exactly one statement, also returning the number of `?` parameter
/// placeholders it contains (the prepared-statement signature).
pub fn parse_statement_params(input: &str) -> Result<(Statement, usize)> {
    let mut p = Parser::new(input)?;
    while p.eat(&TokenKind::Semicolon) {}
    if p.at_eof() {
        return Err(ParseError::new("empty input", 1, 1));
    }
    let stmt = p.statement()?;
    while p.eat(&TokenKind::Semicolon) {}
    if !p.at_eof() {
        return Err(ParseError::new("expected a single statement", 1, 1));
    }
    Ok((stmt, p.params))
}

/// Parse a SELECT query.
pub fn parse_select(input: &str) -> Result<Select> {
    match parse_statement(input)? {
        Statement::Select(s) => Ok(s),
        _ => Err(ParseError::new("expected a SELECT statement", 1, 1)),
    }
}

/// Parse an XNF query (`OUT OF ... TAKE ...`).
pub fn parse_xnf(input: &str) -> Result<XnfQuery> {
    match parse_statement(input)? {
        Statement::Xnf(q) => Ok(q),
        _ => Err(ParseError::new("expected an XNF (OUT OF) query", 1, 1)),
    }
}

/// Parse a standalone expression (used by tests and the API layer).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err_here("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far (assigns positional ordinals).
    params: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
            params: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(msg, t.line, t.col)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!("expected '{}', found '{}'", kind, self.peek().kind)))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().kind.is_kw(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected '{kw}', found '{}'", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found '{other}'"))),
        }
    }

    /// An identifier usable as an implicit alias (not reserved).
    fn maybe_alias(&mut self) -> Option<String> {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) {
                let s = s.clone();
                self.advance();
                return Some(s);
            }
        }
        None
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.at_kw("OUT") {
            return Ok(Statement::Xnf(self.xnf_query()?));
        }
        if self.at_kw("INSERT") {
            return self.insert();
        }
        if self.at_kw("UPDATE") {
            return self.update();
        }
        if self.at_kw("DELETE") {
            return self.delete();
        }
        if self.at_kw("CREATE") {
            return self.create();
        }
        if self.at_kw("DROP") {
            return self.drop();
        }
        if self.eat_kw("REFRESH") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            return Ok(Statement::RefreshView {
                name: self.ident()?,
            });
        }
        if self.eat_kw("ANALYZE") {
            let table = if let TokenKind::Ident(_) = self.peek().kind {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("VACUUM") {
            let table = if let TokenKind::Ident(_) = self.peek().kind {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::Vacuum { table });
        }
        Err(self.err_here(format!(
            "expected a statement, found '{}'",
            self.peek().kind
        )))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = self.type_name()?;
                let mut not_null = false;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                }
                columns.push(ColumnDef {
                    name: cname,
                    ty,
                    not_null,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            });
        }
        if unique {
            return Err(self.err_here("expected INDEX after UNIQUE"));
        }
        let materialized = self.eat_kw("MATERIALIZED");
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let body = if self.at_kw("OUT") {
                ViewBody::Xnf(self.xnf_query()?)
            } else {
                ViewBody::Select(self.select()?)
            };
            return Ok(Statement::CreateView {
                name,
                body,
                materialized,
            });
        }
        if materialized {
            return Err(self.err_here("expected VIEW after MATERIALIZED"));
        }
        Err(self.err_here("expected TABLE, INDEX or VIEW after CREATE"))
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            return Ok(Statement::DropTable {
                name: self.ident()?,
            });
        }
        // `DROP [MATERIALIZED] VIEW`: materialized views drop through the
        // same path (the catalog tears down backing storage either way).
        let materialized = self.eat_kw("MATERIALIZED");
        if self.eat_kw("VIEW") {
            return Ok(Statement::DropView {
                name: self.ident()?,
            });
        }
        if materialized {
            return Err(self.err_here("expected VIEW after MATERIALIZED"));
        }
        Err(self.err_here("expected TABLE or VIEW after DROP"))
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let name = self.ident()?;
        let up = name.to_ascii_uppercase();
        match up.as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(TypeName::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" => Ok(TypeName::Double),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => {
                // Optional length: VARCHAR(30).
                if self.eat(&TokenKind::LParen) {
                    self.expect_int()?;
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(TypeName::Varchar)
            }
            "BOOLEAN" | "BOOL" => Ok(TypeName::Boolean),
            _ => Err(self.err_here(format!("unknown type '{name}'"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.peek().kind {
            TokenKind::Int(i) => {
                self.advance();
                Ok(i)
            }
            _ => Err(self.err_here("expected integer literal")),
        }
    }

    // -- SELECT -------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        let mut q = self.select_core()?;
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            // Parse the branch with select_core so `A UNION B UNION C`
            // flattens into one list instead of right-nesting.
            let rhs = self.select_core()?;
            q.unions.push((all, rhs));
        }
        Ok(q)
    }

    fn select_core(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let mut q = Select::empty();
        q.distinct = self.eat_kw("DISTINCT");
        if q.distinct {
            // `SELECT DISTINCT ALL` is not a thing; but accept plain ALL.
        } else {
            self.eat_kw("ALL");
        }
        loop {
            q.items.push(self.select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                q.from.push(self.table_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            while self.at_kw("JOIN") || self.at_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                q.joins.push(Join { table, on });
            }
        }
        if self.eat_kw("WHERE") {
            q.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                q.group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            q.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                q.order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            q.limit = Some(self.expect_int()? as u64);
        }
        Ok(q)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let TokenKind::Ident(q) = &self.peek().kind {
            if self.peek_at(1).kind == TokenKind::Dot && self.peek_at(2).kind == TokenKind::Star {
                let q = q.clone();
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            self.maybe_alias()
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&TokenKind::LParen) {
            let select = self.select()?;
            self.expect(&TokenKind::RParen)?;
            let alias = if self.eat_kw("AS") {
                self.ident()?
            } else {
                self.maybe_alias()
                    .ok_or_else(|| self.err_here("derived table requires an alias"))?
            };
            return Ok(TableRef::Derived {
                select: Box::new(select),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            self.maybe_alias()
        };
        Ok(TableRef::Named { name, alias })
    }

    // -- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.at_kw("NOT")
            && (self.peek_at(1).kind.is_kw("LIKE")
                || self.peek_at(1).kind.is_kw("BETWEEN")
                || self.peek_at(1).kind.is_kw("IN"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = match &self.peek().kind {
                TokenKind::Str(s) => {
                    let s = s.clone();
                    self.advance();
                    s
                }
                _ => return Err(self.err_here("LIKE requires a string literal pattern")),
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.at_kw("SELECT") {
                let sub = self.select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected LIKE, BETWEEN or IN after NOT"));
        }
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Placeholder => {
                self.advance();
                let ordinal = self.params;
                self.params += 1;
                Ok(Expr::Param(ordinal))
            }
            TokenKind::LParen => {
                self.advance();
                if self.at_kw("SELECT") {
                    return Err(
                        self.err_here("scalar subqueries are not supported; use EXISTS or IN")
                    );
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if name.eq_ignore_ascii_case("EXISTS") {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let sub = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Exists {
                        subquery: Box::new(sub),
                        negated: false,
                    });
                }
                // Function call?
                if self.peek_at(1).kind == TokenKind::LParen {
                    if let Some(agg) = agg_func(&name) {
                        self.advance();
                        self.advance();
                        if agg == AggFunc::Count && self.eat(&TokenKind::Star) {
                            self.expect(&TokenKind::RParen)?;
                            return Ok(Expr::Agg {
                                func: agg,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Agg {
                            func: agg,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                    if let Some(sf) = scalar_func(&name) {
                        self.advance();
                        self.advance();
                        let mut args = Vec::new();
                        if self.peek().kind != TokenKind::RParen {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Func { func: sf, args });
                    }
                    return Err(self.err_here(format!("unknown function '{name}'")));
                }
                // Reserved words (other than the literals and EXISTS handled
                // above) cannot begin an expression: `SELECT FROM t` must
                // error on FROM rather than read it as a column.
                if RESERVED.iter().any(|r| name.eq_ignore_ascii_case(r)) {
                    return Err(
                        self.err_here(format!("expected expression, found keyword '{name}'"))
                    );
                }
                // Column reference, possibly qualified.
                self.advance();
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(self.err_here(format!("expected expression, found '{other}'"))),
        }
    }

    // -- XNF ------------------------------------------------------------

    fn xnf_query(&mut self) -> Result<XnfQuery> {
        self.expect_kw("OUT")?;
        self.expect_kw("OF")?;
        let mut defs = Vec::new();
        loop {
            defs.push(self.xnf_def()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("TAKE")?;
        let take = if self.eat(&TokenKind::Star) {
            XnfTake::All
        } else {
            let mut items = Vec::new();
            loop {
                let name = self.ident()?;
                let columns = if self.eat(&TokenKind::LParen) {
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.ident()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Some(cols)
                } else {
                    None
                };
                items.push(XnfTakeItem { name, columns });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            XnfTake::Items(items)
        };
        let restriction = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(XnfQuery {
            defs,
            take,
            restriction,
        })
    }

    fn xnf_def(&mut self) -> Result<XnfDef> {
        let root = self.eat_kw("ROOT");
        let name = self.ident()?;
        if !self.eat_kw("AS") {
            if root {
                return Err(self.err_here("ROOT requires a component definition (name AS ...)"));
            }
            return Ok(XnfDef::ViewRef { name });
        }
        // Parenthesised body: (SELECT ...) or (RELATE ...).
        if self.eat(&TokenKind::LParen) {
            if self.at_kw("RELATE") {
                let rel = self.relate(name)?;
                self.expect(&TokenKind::RParen)?;
                if root {
                    return Err(
                        self.err_here("ROOT applies to component tables, not relationships")
                    );
                }
                return Ok(XnfDef::Relationship(rel));
            }
            let select = self.select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(XnfDef::Table {
                name,
                select: Box::new(select),
                root,
            });
        }
        // Unparenthesised RELATE (as printed for `employment` in Fig. 1).
        if self.at_kw("RELATE") {
            let rel = self.relate(name)?;
            if root {
                return Err(self.err_here("ROOT applies to component tables, not relationships"));
            }
            return Ok(XnfDef::Relationship(rel));
        }
        // Shortcut: `xemp AS EMP` means SELECT * FROM EMP.
        let base = self.ident()?;
        let select = Select {
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::Named {
                name: base,
                alias: None,
            }],
            ..Select::empty()
        };
        Ok(XnfDef::Table {
            name,
            select: Box::new(select),
            root,
        })
    }

    fn relate(&mut self, name: String) -> Result<XnfRelationship> {
        self.expect_kw("RELATE")?;
        let parent = self.ident()?;
        self.expect_kw("VIA")?;
        let role = self.ident()?;
        self.expect(&TokenKind::Comma)?;
        let mut children = vec![self.ident()?];
        // Further children: `, ident` as long as the ident is not the start
        // of the next OUT OF definition (i.e. not followed by AS).
        while self.peek().kind == TokenKind::Comma {
            if let TokenKind::Ident(_) = self.peek_at(1).kind {
                if self.peek_at(2).kind.is_kw("AS") {
                    break;
                }
                self.advance(); // comma
                children.push(self.ident()?);
            } else {
                break;
            }
        }
        let mut using = Vec::new();
        if self.eat_kw("USING") {
            loop {
                let t = self.ident()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    self.maybe_alias()
                };
                using.push((t, alias));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("WHERE")?;
        let predicate = self.expr()?;
        Ok(XnfRelationship {
            name,
            parent,
            role,
            children,
            using,
            predicate,
        })
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    let up = name.to_ascii_uppercase();
    match up.as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn scalar_func(name: &str) -> Option<ScalarFunc> {
    let up = name.to_ascii_uppercase();
    match up.as_str() {
        "ABS" => Some(ScalarFunc::Abs),
        "UPPER" => Some(ScalarFunc::Upper),
        "LOWER" => Some(ScalarFunc::Lower),
        "LENGTH" => Some(ScalarFunc::Length),
        _ => None,
    }
}
