//! Parser unit tests, including the full deps_ARC query from Fig. 1.

use crate::ast::*;
use crate::parser::*;

/// The paper's running example (Fig. 1), lightly normalised (balanced
/// parentheses; the published figure drops one opening paren).
pub const DEPS_ARC: &str = "\
CREATE VIEW deps_ARC AS
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp
                      WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj
                     WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills
                       USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND
                             es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills
                        USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND
                              ps.pssno = xskills.sno)
TAKE *";

#[test]
fn parses_simple_select() {
    let s = parse_select("SELECT a, b AS bb FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5").unwrap();
    assert_eq!(s.items.len(), 2);
    assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bb"));
    assert_eq!(s.from.len(), 1);
    assert!(s.where_clause.is_some());
    assert!(s.order_by[0].desc);
    assert_eq!(s.limit, Some(5));
}

#[test]
fn parses_implicit_alias_but_not_keywords() {
    let s = parse_select("SELECT e.eno FROM EMP e WHERE e.eno = 1").unwrap();
    assert_eq!(s.from[0].binding(), "e");
    // WHERE must not be eaten as an alias.
    assert!(s.where_clause.is_some());
}

#[test]
fn parses_exists_subquery() {
    let s = parse_select(
        "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    )
    .unwrap();
    match s.where_clause.unwrap() {
        Expr::Exists {
            subquery,
            negated: false,
        } => {
            assert_eq!(subquery.from[0].binding(), "d");
        }
        other => panic!("expected EXISTS, got {other:?}"),
    }
}

#[test]
fn parses_not_exists_and_in() {
    let e = parse_expr("NOT EXISTS (SELECT 1 FROM T)").unwrap();
    assert!(matches!(
        e,
        Expr::Unary {
            op: UnaryOp::Not,
            ..
        }
    ));
    let e = parse_expr("x IN (1, 2, 3)").unwrap();
    assert!(matches!(e, Expr::InList { ref list, negated: false, .. } if list.len() == 3));
    let e = parse_expr("x NOT IN (SELECT y FROM T)").unwrap();
    assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
}

#[test]
fn parses_aggregates_and_group_by() {
    let s =
        parse_select("SELECT dno, COUNT(*), AVG(sal) FROM EMP GROUP BY dno HAVING COUNT(*) > 2")
            .unwrap();
    assert_eq!(s.group_by.len(), 1);
    assert!(s.having.is_some());
    assert!(matches!(
        &s.items[1],
        SelectItem::Expr {
            expr: Expr::Agg {
                func: AggFunc::Count,
                arg: None,
                ..
            },
            ..
        }
    ));
}

#[test]
fn parses_joins_and_derived_tables() {
    let s = parse_select(
        "SELECT * FROM (SELECT dno FROM DEPT WHERE loc = 'ARC') d JOIN EMP e ON d.dno = e.edno",
    )
    .unwrap();
    assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "d"));
    assert_eq!(s.joins.len(), 1);
}

#[test]
fn parses_union() {
    let s =
        parse_select("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v").unwrap();
    assert_eq!(s.unions.len(), 2);
    assert!(s.unions[0].0, "first union is ALL");
    assert!(!s.unions[1].0);
}

#[test]
fn parses_ddl_and_dml() {
    let stmts = parse_statements(
        "CREATE TABLE DEPT (dno INT NOT NULL, dname VARCHAR(30), loc VARCHAR(20));
         CREATE UNIQUE INDEX dept_pk ON DEPT (dno);
         INSERT INTO DEPT (dno, dname, loc) VALUES (1, 'tools', 'ARC'), (2, 'db', 'HDC');
         UPDATE DEPT SET loc = 'YKT' WHERE dno = 2;
         DELETE FROM DEPT WHERE dno = 1;
         ANALYZE DEPT;",
    )
    .unwrap();
    assert_eq!(stmts.len(), 6);
    assert!(matches!(&stmts[0], Statement::CreateTable { columns, .. }
        if columns.len() == 3 && columns[0].not_null && !columns[1].not_null));
    assert!(matches!(
        &stmts[1],
        Statement::CreateIndex { unique: true, .. }
    ));
    assert!(matches!(&stmts[2], Statement::Insert { rows, .. } if rows.len() == 2));
    assert!(matches!(&stmts[5], Statement::Analyze { table: Some(t) } if t == "DEPT"));
}

#[test]
fn parses_vacuum() {
    let stmts = parse_statements("VACUUM; VACUUM DEPT;").unwrap();
    assert_eq!(stmts.len(), 2);
    assert!(matches!(&stmts[0], Statement::Vacuum { table: None }));
    assert!(matches!(&stmts[1], Statement::Vacuum { table: Some(t) } if t == "DEPT"));
    // Case-insensitive keyword, like every other statement head.
    assert!(matches!(
        parse_statement("vacuum emp").unwrap(),
        Statement::Vacuum { table: Some(t) } if t == "emp"
    ));
}

#[test]
fn parses_deps_arc_view() {
    let stmt = parse_statement(DEPS_ARC).unwrap();
    let Statement::CreateView {
        name,
        body: ViewBody::Xnf(q),
        materialized: false,
    } = stmt
    else {
        panic!("expected XNF view");
    };
    assert_eq!(name, "deps_ARC");
    assert_eq!(q.defs.len(), 8);
    assert!(matches!(q.take, XnfTake::All));

    // Component tables.
    let tables: Vec<&str> = q
        .defs
        .iter()
        .filter_map(|d| match d {
            XnfDef::Table { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(tables, vec!["xdept", "xemp", "xproj", "xskills"]);

    // Relationships with roles and mapping tables.
    let rels: Vec<&XnfRelationship> = q
        .defs
        .iter()
        .filter_map(|d| match d {
            XnfDef::Relationship(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(rels.len(), 4);
    assert_eq!(rels[0].name, "employment");
    assert_eq!(rels[0].parent, "xdept");
    assert_eq!(rels[0].role, "EMPLOYS");
    assert_eq!(rels[0].children, vec!["xemp"]);
    assert!(rels[0].using.is_empty());
    assert_eq!(rels[2].name, "empproperty");
    assert_eq!(
        rels[2].using,
        vec![("EMPSKILLS".to_string(), Some("es".to_string()))]
    );
}

#[test]
fn parses_unparenthesised_relate() {
    // The figure's employment definition drops the opening paren; accept it.
    let q = parse_xnf(
        "OUT OF xdept AS DEPT, xemp AS EMP,
                employment AS RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno
         TAKE xdept, employment, xemp",
    )
    .unwrap();
    assert_eq!(q.defs.len(), 3);
    let XnfTake::Items(items) = &q.take else {
        panic!()
    };
    assert_eq!(items.len(), 3);
}

#[test]
fn parses_take_with_column_projection_and_restriction() {
    let q = parse_xnf(
        "OUT OF xdept AS DEPT, xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE xdept(dno, dname), employment, xemp
         WHERE xemp.sal > 100",
    )
    .unwrap();
    let XnfTake::Items(items) = &q.take else {
        panic!()
    };
    assert_eq!(
        items[0].columns.as_ref().unwrap(),
        &vec!["dno".to_string(), "dname".to_string()]
    );
    assert!(q.restriction.is_some());
}

#[test]
fn parses_root_marker_and_view_ref() {
    let q = parse_xnf(
        "OUT OF ROOT part AS (SELECT * FROM PARTS WHERE pid = 1),
                contains AS (RELATE part VIA uses, part USING BOM b
                             WHERE part.pid = b.parent AND b.child = part.pid)
         TAKE *",
    )
    .unwrap();
    assert!(matches!(&q.defs[0], XnfDef::Table { root: true, .. }));

    let q = parse_xnf("OUT OF deps_ARC TAKE xdept, xemp").unwrap();
    assert!(matches!(&q.defs[0], XnfDef::ViewRef { name } if name == "deps_ARC"));
}

#[test]
fn parses_nary_relationship() {
    let q = parse_xnf(
        "OUT OF a AS TA, b AS TB, c AS TC,
                r AS (RELATE a VIA links, b, c WHERE a.x = b.x AND a.y = c.y)
         TAKE *",
    )
    .unwrap();
    let XnfDef::Relationship(r) = &q.defs[3] else {
        panic!()
    };
    assert_eq!(r.children, vec!["b", "c"]);
}

#[test]
fn display_roundtrips_through_parser() {
    for sql in [
        "SELECT DISTINCT a, b FROM t WHERE (a = 1 AND b > 2) OR c IS NULL",
        "SELECT e.eno FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.dno = e.edno)",
        "SELECT dno, COUNT(*) FROM EMP GROUP BY dno HAVING COUNT(*) > 1 ORDER BY dno",
        "SELECT a FROM t UNION ALL SELECT a FROM u",
    ] {
        let ast = parse_select(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(
            ast, reparsed,
            "roundtrip failed for: {sql}\nprinted: {printed}"
        );
    }
}

#[test]
fn xnf_display_roundtrips() {
    let q = parse_xnf(
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'), xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE xdept, employment, xemp(eno)",
    )
    .unwrap();
    let printed = q.to_string();
    let reparsed = parse_xnf(&printed).unwrap();
    assert_eq!(q, reparsed, "printed: {printed}");
}

#[test]
fn error_messages_carry_positions() {
    let err = parse_select("SELECT FROM t").unwrap_err();
    assert!(err.line >= 1 && err.col > 1);
    let err = parse_statement("CREATE SOMETHING x").unwrap_err();
    assert!(err.message.contains("TABLE, INDEX or VIEW"));
}

#[test]
fn rejects_scalar_subquery() {
    let err = parse_select("SELECT * FROM t WHERE a = (SELECT b FROM u)").unwrap_err();
    assert!(err.message.contains("scalar subqueries"));
}

#[test]
fn parses_between_like_arithmetic() {
    let e = parse_expr("a + 2 * b BETWEEN 1 AND 10").unwrap();
    assert!(matches!(e, Expr::Between { .. }));
    let e = parse_expr("name LIKE 'A%'").unwrap();
    assert!(matches!(e, Expr::Like { .. }));
    // Precedence: 1 + 2 * 3 parses as 1 + (2 * 3).
    let e = parse_expr("1 + 2 * 3").unwrap();
    match e {
        Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } => {
            assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
        }
        other => panic!("bad precedence: {other:?}"),
    }
}

#[test]
fn parses_materialized_view_ddl() {
    let stmt = parse_statement("CREATE MATERIALIZED VIEW mv AS SELECT a FROM t").unwrap();
    let Statement::CreateView {
        name,
        body: ViewBody::Select(_),
        materialized: true,
    } = stmt
    else {
        panic!("expected materialized SQL view, got {stmt:?}");
    };
    assert_eq!(name, "mv");

    // XNF bodies materialize too.
    let stmt =
        parse_statement("CREATE MATERIALIZED VIEW co AS OUT OF x AS (SELECT * FROM t) TAKE *")
            .unwrap();
    assert!(matches!(
        stmt,
        Statement::CreateView {
            body: ViewBody::Xnf(_),
            materialized: true,
            ..
        }
    ));

    let stmt = parse_statement("REFRESH MATERIALIZED VIEW mv").unwrap();
    assert!(matches!(stmt, Statement::RefreshView { name } if name == "mv"));

    let stmt = parse_statement("DROP MATERIALIZED VIEW mv").unwrap();
    assert!(matches!(stmt, Statement::DropView { name } if name == "mv"));

    // Errors keep their shape.
    assert!(parse_statement("CREATE MATERIALIZED TABLE t (a INT)").is_err());
    assert!(parse_statement("REFRESH VIEW mv").is_err());
    assert!(parse_statement("DROP MATERIALIZED TABLE t").is_err());
}
