//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl ParseError {
    pub fn new(message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

pub type Result<T> = std::result::Result<T, ParseError>;
