//! Hand-written lexer for the SQL/XNF dialect.

use crate::error::{ParseError, Result};
use crate::token::{Token, TokenKind};

/// Tokenize an input string. Comments (`-- …` to end of line) and whitespace
/// are skipped. Returns tokens ending with a single [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>> {
    Lexer {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                ',' => self.single(TokenKind::Comma),
                '.' => {
                    // A dot directly followed by a digit begins a float only
                    // after another number; standalone `.5` is not supported —
                    // qualified names dominate in this dialect.
                    self.single(TokenKind::Dot)
                }
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                '*' => self.single(TokenKind::Star),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '/' => self.single(TokenKind::Slash),
                '%' => self.single(TokenKind::Percent),
                ';' => self.single(TokenKind::Semicolon),
                '?' => self.single(TokenKind::Placeholder),
                '=' => self.single(TokenKind::Eq),
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            TokenKind::LtEq
                        }
                        Some('>') => {
                            self.bump();
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        return Err(ParseError::new("expected '=' after '!'", line, col));
                    }
                }
                '\'' => self.string(line, col)?,
                c if c.is_ascii_digit() => self.number(line, col)?,
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character '{other}'"),
                        line,
                        col,
                    ))
                }
            };
            out.push(Token { kind, line, col });
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new("unterminated string literal", line, col)),
                Some('\'') => {
                    // '' is an escaped quote.
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) -> Result<TokenKind> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: only if '.' is followed by a digit (so `t.c`
        // style qualified names never collide with numbers).
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let f: f64 = s
                .parse()
                .map_err(|_| ParseError::new(format!("invalid float '{s}'"), line, col))?;
            return Ok(TokenKind::Float(f));
        }
        let i: i64 = s
            .parse()
            .map_err(|_| ParseError::new(format!("invalid integer '{s}'"), line, col))?;
        Ok(TokenKind::Int(i))
    }

    fn ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM emp WHERE a <= 10"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("emp".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::LtEq,
                TokenKind::Int(10),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn qualified_names_vs_floats() {
        assert_eq!(
            kinds("t.c 1.5 2.x"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into()),
                TokenKind::Float(1.5),
                TokenKind::Int(2),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'AR''C'"),
            vec![TokenKind::Str("AR'C".into()), TokenKind::Eof]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_and_newlines() {
        let toks = lex("SELECT -- comment\n 1").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Int(1));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn placeholders() {
        assert_eq!(
            kinds("eno = ? AND sal > ?"),
            vec![
                TokenKind::Ident("eno".into()),
                TokenKind::Eq,
                TokenKind::Placeholder,
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("sal".into()),
                TokenKind::Gt,
                TokenKind::Placeholder,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
    }
}
