//! Abstract syntax trees for the SQL dialect and the XNF extension.
//!
//! The XNF constructor follows the paper's surface syntax (Fig. 1):
//!
//! ```sql
//! OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
//!        xemp  AS EMP,
//!        employment AS (RELATE xdept VIA EMPLOYS, xemp
//!                       WHERE xdept.dno = xemp.edno)
//! TAKE *
//! ```

use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Literal values in the AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Scalar (non-aggregate) builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Upper,
    Lower,
    Length,
}

impl fmt::Display for ScalarFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Length => "LENGTH",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    /// `?` — positional parameter, numbered left-to-right from 0 in parse
    /// order. Compiled as an opaque constant and bound at execution time.
    Param(usize),
    /// Column reference, optionally qualified: `alias.col` or `col`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr LIKE 'pattern'`.
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr IN (SELECT ...)`.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Select>,
        negated: bool,
    },
    /// `EXISTS (SELECT ...)`.
    Exists {
        subquery: Box<Select>,
        negated: bool,
    },
    /// Aggregate call; `COUNT(*)` is `Agg { func: Count, arg: None, .. }`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// Scalar function call.
    Func {
        func: ScalarFunc,
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinOp::And,
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinOp::Eq,
            right: Box::new(right),
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Does this expression contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } => false,
            Expr::Func { args, .. } => args.iter().any(|e| e.contains_aggregate()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            // Parameters are numbered in textual order, so printing the bare
            // `?` round-trips: re-parsing assigns the same ordinals.
            Expr::Param(_) => write!(f, "?"),
            Expr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "-{expr}"),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "NOT ({expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull {
                expr,
                negated: false,
            } => write!(f, "{expr} IS NULL"),
            Expr::IsNull {
                expr,
                negated: true,
            } => write!(f, "{expr} IS NOT NULL"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{pattern}'",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}IN ({subquery})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Exists { subquery, negated } => {
                write!(
                    f,
                    "{}EXISTS ({subquery})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Agg {
                func, arg: None, ..
            } => write!(f, "{func}(*)"),
            Expr::Agg {
                func,
                arg: Some(a),
                distinct,
            } => {
                write!(f, "{func}({}{a})", if *distinct { "DISTINCT " } else { "" })
            }
            Expr::Func { func, args } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "{func}({})", items.join(", "))
            }
        }
    }
}

/// One item in a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS name]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]` — a base table or view.
    Named { name: String, alias: Option<String> },
    /// `(SELECT ...) AS alias` — a derived table (table expression).
    Derived { select: Box<Select>, alias: String },
}

impl TableRef {
    /// The binding name this reference introduces.
    pub fn binding(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A SELECT query (possibly with UNION branches).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    /// UNION / UNION ALL continuations.
    pub unions: Vec<(bool /* all */, Select)>,
}

impl Select {
    pub fn empty() -> Select {
        Select {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            unions: Vec::new(),
        }
    }
}

/// An explicit `JOIN ... ON ...` clause (inner joins only; the dialect's
/// outer-join needs are covered by XNF relationships).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: Expr,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let items: Vec<String> = self
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } => format!("{expr} AS {a}"),
                SelectItem::Expr { expr, alias: None } => expr.to_string(),
            })
            .collect();
        write!(f, "{}", items.join(", "))?;
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            let tables: Vec<String> = self
                .from
                .iter()
                .map(|t| match t {
                    TableRef::Named {
                        name,
                        alias: Some(a),
                    } => format!("{name} AS {a}"),
                    TableRef::Named { name, alias: None } => name.clone(),
                    TableRef::Derived { select, alias } => format!("({select}) AS {alias}"),
                })
                .collect();
            write!(f, "{}", tables.join(", "))?;
        }
        for j in &self.joins {
            let t = match &j.table {
                TableRef::Named {
                    name,
                    alias: Some(a),
                } => format!("{name} AS {a}"),
                TableRef::Named { name, alias: None } => name.clone(),
                TableRef::Derived { select, alias } => format!("({select}) AS {alias}"),
            };
            write!(f, " JOIN {t} ON {}", j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let g: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", g.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self
                .order_by
                .iter()
                .map(|i| format!("{}{}", i.expr, if i.desc { " DESC" } else { "" }))
                .collect();
            write!(f, " ORDER BY {}", o.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        for (all, s) in &self.unions {
            write!(f, " UNION {}{s}", if *all { "ALL " } else { "" })?;
        }
        Ok(())
    }
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: TypeName,
    pub not_null: bool,
}

/// Type names in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Int,
    Double,
    Varchar,
    Boolean,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Select),
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    CreateView {
        name: String,
        body: ViewBody,
        /// `CREATE MATERIALIZED VIEW`: the view's contents are stored in a
        /// backing table and kept fresh by incremental delta maintenance.
        materialized: bool,
    },
    DropTable {
        name: String,
    },
    DropView {
        name: String,
    },
    /// `REFRESH MATERIALIZED VIEW name`: full recompute of a materialized
    /// view's backing storage (the fallback when incremental maintenance is
    /// not applicable, and an explicit repair hammer).
    RefreshView {
        name: String,
    },
    Analyze {
        table: Option<String>,
    },
    /// `VACUUM [table]`: run MVCC garbage collection — reclaim dead tuple
    /// versions no live snapshot can see, freeze old committed versions and
    /// prune the commit-stamp table behind the live-snapshot low-watermark.
    /// With no table, every heap (base tables and materialized-view backing
    /// streams) is vacuumed; naming a materialized view vacuums all of its
    /// backing streams.
    Vacuum {
        table: Option<String>,
    },
    /// An XNF query at statement level.
    Xnf(XnfQuery),
}

/// The body of a CREATE VIEW: relational or XNF.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewBody {
    Select(Select),
    Xnf(XnfQuery),
}

// ---------------------------------------------------------------------------
// XNF AST
// ---------------------------------------------------------------------------

/// An XNF composite-object query: `OUT OF <defs> TAKE <take> [WHERE <restriction>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct XnfQuery {
    pub defs: Vec<XnfDef>,
    pub take: XnfTake,
    /// Optional restriction predicates; each conjunct must reference a single
    /// component (node or relationship) and is attached to its derivation.
    pub restriction: Option<Expr>,
}

/// A definition inside OUT OF.
#[derive(Debug, Clone, PartialEq)]
pub enum XnfDef {
    /// `name AS (SELECT ...)` or the shortcut `name AS BASETABLE`.
    Table {
        name: String,
        select: Box<Select>,
        root: bool,
    },
    /// `name AS (RELATE parent VIA role, child1 [, child2 ...]
    ///           [USING t1 a1, ...] WHERE pred)`.
    Relationship(XnfRelationship),
    /// `name` alone: include (inline) a previously defined XNF view.
    ViewRef { name: String },
}

/// A RELATE definition.
#[derive(Debug, Clone, PartialEq)]
pub struct XnfRelationship {
    pub name: String,
    pub parent: String,
    /// Role name from the VIA clause (e.g. EMPLOYS).
    pub role: String,
    /// One or more child components (n-ary relationships allowed).
    pub children: Vec<String>,
    /// Auxiliary tables from USING (e.g. mapping tables): (table, alias).
    pub using: Vec<(String, Option<String>)>,
    /// The relationship predicate.
    pub predicate: Expr,
}

/// The TAKE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum XnfTake {
    /// `TAKE *` — all components, all columns, all relationships.
    All,
    /// Explicit projection list.
    Items(Vec<XnfTakeItem>),
}

/// One projected element.
#[derive(Debug, Clone, PartialEq)]
pub struct XnfTakeItem {
    /// Component (node or relationship) name.
    pub name: String,
    /// Optional column projection for nodes: `xemp(eno, ename)`.
    pub columns: Option<Vec<String>>,
}

impl fmt::Display for XnfQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OUT OF ")?;
        let defs: Vec<String> = self
            .defs
            .iter()
            .map(|d| match d {
                XnfDef::Table { name, select, root } => {
                    format!("{}{name} AS ({select})", if *root { "ROOT " } else { "" })
                }
                XnfDef::Relationship(r) => {
                    let mut s = format!(
                        "{} AS (RELATE {} VIA {}, {}",
                        r.name,
                        r.parent,
                        r.role,
                        r.children.join(", ")
                    );
                    if !r.using.is_empty() {
                        let us: Vec<String> = r
                            .using
                            .iter()
                            .map(|(t, a)| match a {
                                Some(a) => format!("{t} {a}"),
                                None => t.clone(),
                            })
                            .collect();
                        s.push_str(&format!(" USING {}", us.join(", ")));
                    }
                    s.push_str(&format!(" WHERE {})", r.predicate));
                    s
                }
                XnfDef::ViewRef { name } => name.clone(),
            })
            .collect();
        write!(f, "{}", defs.join(", "))?;
        match &self.take {
            XnfTake::All => write!(f, " TAKE *")?,
            XnfTake::Items(items) => {
                let is: Vec<String> = items
                    .iter()
                    .map(|i| match &i.columns {
                        Some(cols) => format!("{}({})", i.name, cols.join(", ")),
                        None => i.name.clone(),
                    })
                    .collect();
                write!(f, " TAKE {}", is.join(", "))?;
            }
        }
        if let Some(r) = &self.restriction {
            write!(f, " WHERE {r}")?;
        }
        Ok(())
    }
}
