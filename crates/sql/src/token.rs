//! Tokens produced by the lexer.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// The kinds of tokens in the SQL/XNF dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser; the
    /// lexer uppercases nothing — case-insensitivity is handled at match
    /// sites so identifiers keep their original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `?` — positional parameter placeholder (prepared statements).
    Placeholder,

    // Punctuation / operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Placeholder => write!(f, "?"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

impl TokenKind {
    /// Is this an identifier equal (case-insensitively) to `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}
