//! Execution errors.

use std::fmt;

use xnf_storage::StorageError;

/// Errors raised at query runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Type error during expression evaluation.
    Type(String),
    /// Arithmetic fault (division by zero, overflow).
    Arithmetic(&'static str),
    /// Missing correlation binding (planner bug).
    MissingBinding(String),
    /// Storage failure.
    Storage(StorageError),
    /// API misuse (e.g. asking a CO result for its single table).
    Api(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            ExecError::MissingBinding(m) => write!(f, "missing outer binding: {m}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::Api(m) => write!(f, "api misuse: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

pub type Result<T> = std::result::Result<T, ExecError>;
