//! The execution engine: materialises shared subplans ("table queues") as
//! batch sequences and delivers the output streams of a QEP.

use std::sync::Arc;

use xnf_plan::{Qep, QepOutput};
use xnf_qgm::OutputKind;
use xnf_storage::Catalog;

use crate::batch::RowBatch;
use crate::error::{ExecError, Result};
use crate::eval::{Params, Row};
use crate::ops::{build_operator, ExecStats, Runtime};

/// One delivered output stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    pub name: String,
    pub kind: OutputKind,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

/// The complete result of a QEP: all output streams, in delivery order.
/// For a plain SQL query there is exactly one stream; for an XNF query the
/// streams form the heterogeneous CO result (node streams + connection
/// streams, Sect. 5.0).
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub streams: Vec<StreamResult>,
    pub stats: ExecStats,
}

impl QueryResult {
    /// The single relational result, or an error when this is a CO result
    /// with several streams (or none).
    pub fn try_table(&self) -> Result<&StreamResult> {
        match self.streams.as_slice() {
            [one] => Ok(one),
            streams => Err(ExecError::Api(format!(
                "expected a single relational stream, got {}",
                streams.len()
            ))),
        }
    }

    /// Find a stream by name.
    pub fn stream(&self, name: &str) -> Option<&StreamResult> {
        self.streams
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }
}

/// Execute a QEP against a catalog.
pub fn execute_qep(catalog: &Catalog, qep: &Qep) -> Result<QueryResult> {
    execute_qep_with_params(catalog, qep, Params::default())
}

/// Materialise the QEP's shared subplans into the runtime, in id order
/// (ids are topologically sorted: a shared plan only references lower ids).
/// Each shared result is a table queue kept in batch form, so its consumers
/// re-stream it chunk-at-a-time.
fn materialize_shared(rt: &mut Runtime<'_>, qep: &Qep) -> Result<()> {
    for plan in &qep.shared {
        let mut op = build_operator(plan);
        let mut batches: Vec<RowBatch> = Vec::new();
        while let Some(batch) = op.next_batch(rt)? {
            rt.stats.note_batch(batch.len());
            batches.push(batch);
        }
        rt.shared.push(Arc::new(batches));
    }
    Ok(())
}

/// Execute a QEP with prepared-statement parameter bindings resolved at
/// `eval` time (the prepare-once/execute-many path). Reads run against a
/// fresh latest-committed snapshot.
pub fn execute_qep_with_params(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
) -> Result<QueryResult> {
    execute_qep_with_visibility(catalog, qep, params, None)
}

/// Execute a QEP with parameter bindings under an explicit visibility
/// handle: `Some(snapshot)` pins every scan and index lookup of the run to
/// that MVCC snapshot (reads inside an open transaction), `None` reads the
/// latest committed state (autocommit).
pub fn execute_qep_with_visibility(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
    visibility: crate::eval::Visibility,
) -> Result<QueryResult> {
    let mut rt = Runtime::with_ctx(
        catalog,
        crate::eval::OuterCtx::with_params_and_visibility(params, visibility),
    );
    rt.batch_size = qep.batch_size.max(1);
    materialize_shared(&mut rt, qep)?;
    let mut streams = Vec::with_capacity(qep.outputs.len());
    for out in &qep.outputs {
        streams.push(run_output(&mut rt, out)?);
    }
    let stats = rt.stats;
    Ok(QueryResult { streams, stats })
}

fn run_output(rt: &mut Runtime<'_>, out: &QepOutput) -> Result<StreamResult> {
    let mut op = build_operator(&out.plan);
    let mut rows: Vec<Row> = Vec::new();
    while let Some(batch) = op.next_batch(rt)? {
        rt.stats.note_batch(batch.len());
        rt.stats.rows_emitted += batch.len() as u64;
        rows.extend(batch.into_rows());
    }
    Ok(StreamResult {
        name: out.name.clone(),
        kind: out.kind.clone(),
        columns: out.columns.clone(),
        rows,
    })
}

/// Execute a QEP delivering the output streams **in parallel**, after
/// sequentially materialising the shared subplans they all read. This is
/// the parallelism opportunity the paper calls out for set-oriented CO
/// extraction (Sect. 5.1 / Sect. 6 "parallelism technology … become\[s\]
/// automatically available to XNF"): the heterogeneous output streams are
/// independent once the common subexpressions exist. The streams are
/// dispatched over a worker pool capped at the QEP's degree of
/// parallelism ([`Qep::dop`]), so a CO view with dozens of streams no
/// longer spawns dozens of threads on a small host.
pub fn execute_qep_parallel(catalog: &Catalog, qep: &Qep) -> Result<QueryResult> {
    execute_qep_parallel_with_params(catalog, qep, Params::default())
}

/// [`execute_qep_parallel`] with a parameter binding table shared across the
/// stream threads.
pub fn execute_qep_parallel_with_params(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
) -> Result<QueryResult> {
    execute_qep_parallel_with_visibility(catalog, qep, params, None)
}

/// [`execute_qep_parallel_with_params`] under an explicit visibility
/// handle. The snapshot resolved for the shared-subplan pass is pinned and
/// handed to every stream thread, so all streams of one CO extraction read
/// the same consistent state.
pub fn execute_qep_parallel_with_visibility(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
    visibility: crate::eval::Visibility,
) -> Result<QueryResult> {
    let mut rt = Runtime::with_ctx(
        catalog,
        crate::eval::OuterCtx::with_params_and_visibility(params.clone(), visibility),
    );
    rt.batch_size = qep.batch_size.max(1);
    materialize_shared(&mut rt, qep)?;
    let shared = rt.shared.clone();
    let base_stats = rt.stats;
    let batch_size = rt.batch_size;
    let snapshot = rt.snapshot.clone();

    // Worker pool capped at the plan's degree of parallelism: workers
    // claim stream indices from a shared counter, so a CO view with many
    // streams runs at most `dop` of them concurrently.
    let pool = qep.dop.max(1).min(qep.outputs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut joined: Vec<(usize, Result<(StreamResult, ExecStats)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|_| {
                let shared = shared.clone();
                let params = params.clone();
                let snapshot = snapshot.clone();
                let next = &next;
                scope.spawn(move || {
                    let mut rt = Runtime::with_ctx(
                        catalog,
                        crate::eval::OuterCtx::with_params_and_visibility(params, Some(snapshot)),
                    );
                    rt.shared = shared;
                    rt.batch_size = batch_size;
                    let mut done: Vec<(usize, Result<(StreamResult, ExecStats)>)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(out) = qep.outputs.get(idx) else {
                            break;
                        };
                        rt.stats = ExecStats::default();
                        let r = run_output(&mut rt, out).map(|sr| (sr, rt.stats));
                        done.push((idx, r));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream thread panicked"))
            .collect()
    });
    joined.sort_by_key(|(idx, _)| *idx);

    let mut streams = Vec::with_capacity(joined.len());
    let mut stats = base_stats;
    for (_, r) in joined {
        let (sr, s) = r?;
        stats.merge(&s);
        streams.push(sr);
    }
    Ok(QueryResult { streams, stats })
}
