//! The execution engine: materialises shared subplans ("table queues") and
//! delivers the output streams of a QEP.

use std::sync::Arc;

use xnf_plan::{Qep, QepOutput};
use xnf_qgm::OutputKind;
use xnf_storage::Catalog;

use crate::error::Result;
use crate::eval::{Params, Row};
use crate::ops::{build_operator, drain, ExecStats, Runtime};

/// One delivered output stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    pub name: String,
    pub kind: OutputKind,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

/// The complete result of a QEP: all output streams, in delivery order.
/// For a plain SQL query there is exactly one stream; for an XNF query the
/// streams form the heterogeneous CO result (node streams + connection
/// streams, Sect. 5.0).
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub streams: Vec<StreamResult>,
    pub stats: ExecStats,
}

impl QueryResult {
    /// The single relational result (panics if this is a CO result).
    pub fn table(&self) -> &StreamResult {
        assert_eq!(self.streams.len(), 1, "expected a single relational stream");
        &self.streams[0]
    }

    /// Find a stream by name.
    pub fn stream(&self, name: &str) -> Option<&StreamResult> {
        self.streams
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }
}

/// Execute a QEP against a catalog.
pub fn execute_qep(catalog: &Catalog, qep: &Qep) -> Result<QueryResult> {
    execute_qep_with_params(catalog, qep, Params::default())
}

/// Execute a QEP with prepared-statement parameter bindings resolved at
/// `eval` time (the prepare-once/execute-many path).
pub fn execute_qep_with_params(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
) -> Result<QueryResult> {
    let mut rt = Runtime::with_params(catalog, params);
    // Materialise shared subplans in id order (ids are topologically
    // sorted: a shared plan only references lower ids).
    for plan in &qep.shared {
        let mut op = build_operator(plan);
        let rows = drain(op.as_mut(), &mut rt)?;
        rt.shared.push(Arc::new(rows));
    }
    let mut streams = Vec::with_capacity(qep.outputs.len());
    for out in &qep.outputs {
        streams.push(run_output(&mut rt, out)?);
    }
    let stats = rt.stats;
    Ok(QueryResult { streams, stats })
}

fn run_output(rt: &mut Runtime<'_>, out: &QepOutput) -> Result<StreamResult> {
    let mut op = build_operator(&out.plan);
    let rows = drain(op.as_mut(), rt)?;
    rt.stats.rows_emitted += rows.len() as u64;
    Ok(StreamResult {
        name: out.name.clone(),
        kind: out.kind.clone(),
        columns: out.columns.clone(),
        rows,
    })
}

/// Execute a QEP delivering the output streams **in parallel** (one thread
/// per stream), after sequentially materialising the shared subplans they
/// all read. This is the parallelism opportunity the paper calls out for
/// set-oriented CO extraction (Sect. 5.1 / Sect. 6 "parallelism technology
/// … become[s] automatically available to XNF"): the heterogeneous output
/// streams are independent once the common subexpressions exist.
pub fn execute_qep_parallel(catalog: &Catalog, qep: &Qep) -> Result<QueryResult> {
    execute_qep_parallel_with_params(catalog, qep, Params::default())
}

/// [`execute_qep_parallel`] with a parameter binding table shared across the
/// stream threads.
pub fn execute_qep_parallel_with_params(
    catalog: &Catalog,
    qep: &Qep,
    params: Params,
) -> Result<QueryResult> {
    let mut rt = Runtime::with_params(catalog, params.clone());
    for plan in &qep.shared {
        let mut op = build_operator(plan);
        let rows = drain(op.as_mut(), &mut rt)?;
        rt.shared.push(Arc::new(rows));
    }
    let shared = rt.shared.clone();
    let base_stats = rt.stats;

    let joined: Vec<Result<(StreamResult, ExecStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = qep
            .outputs
            .iter()
            .map(|out| {
                let shared = shared.clone();
                let params = params.clone();
                scope.spawn(move || {
                    let mut rt = Runtime::with_params(catalog, params);
                    rt.shared = shared;
                    run_output(&mut rt, out).map(|sr| (sr, rt.stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream thread panicked"))
            .collect()
    });

    let mut streams = Vec::with_capacity(joined.len());
    let mut stats = base_stats;
    for r in joined {
        let (sr, s) = r?;
        stats.rows_scanned += s.rows_scanned;
        stats.subquery_invocations += s.subquery_invocations;
        stats.rows_emitted += s.rows_emitted;
        streams.push(sr);
    }
    Ok(QueryResult { streams, stats })
}
