//! A small, fast, non-cryptographic hasher for the executor's internal
//! hash tables (join build sides, aggregate groups, DISTINCT sets).
//!
//! These tables are keyed once per input row, so hasher throughput sits on
//! the hot path of every hash join and aggregation. std's default SipHash
//! is HashDoS-resistant but several times slower on the short keys we hash
//! here; the tables never outlive one query and are never keyed by
//! attacker-chosen collision targets at scale, so an FxHash-style
//! multiply-xor hash is the right trade.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style word-at-a-time hasher (rotate, xor, multiply).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Avalanche finisher: the multiply above only propagates entropy
        // upward, but our key bytes often carry their entropy in the HIGH
        // bits (e.g. integer Values hash as f64 bits, whose low mantissa
        // bits are zero) while hashbrown indexes buckets by the LOW bits.
        // Fold the high bits back down before handing the hash out.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the executor hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the executor hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_and_is_deterministic() {
        let hash_of = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash_of(b"abcdefgh"), hash_of(b"abcdefgh"));
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefgi"));
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        // Tail handling: same prefix, different short tails.
        assert_ne!(hash_of(b"123456789"), hash_of(b"12345678X"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(vec![i, i * 2], i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get([500i64, 1000i64].as_slice()), Some(&500));
    }
}
