//! Volcano-style operators: each interprets one QEP node, pulling rows from
//! its inputs on demand ("table queue evaluation", Sect. 3.1).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use xnf_plan::{AggSpec, PhysExpr, PhysPlan};
use xnf_sql::AggFunc;
use xnf_storage::{Catalog, Value};

use crate::error::{ExecError, Result};
use crate::eval::{eval, passes, truthy, OuterCtx, Row};

/// Execution statistics (per engine run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by scans (base, index and shared).
    pub rows_scanned: u64,
    /// Correlated subquery instantiations (the naive path's cost driver).
    pub subquery_invocations: u64,
    /// Rows emitted by all output streams.
    pub rows_emitted: u64,
}

/// Shared runtime state threaded through the operator tree.
pub struct Runtime<'a> {
    pub catalog: &'a Catalog,
    /// Materialised shared subplans (by [`xnf_plan::SharedId`]).
    pub shared: Vec<Arc<Vec<Row>>>,
    /// Correlation bindings for `Outer` references.
    pub outer: OuterCtx,
    pub stats: ExecStats,
}

impl<'a> Runtime<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Runtime {
            catalog,
            shared: Vec::new(),
            outer: OuterCtx::new(),
            stats: ExecStats::default(),
        }
    }

    /// A runtime with prepared-statement parameter bindings available to
    /// every operator via the evaluation context.
    pub fn with_params(catalog: &'a Catalog, params: crate::eval::Params) -> Self {
        Runtime {
            catalog,
            shared: Vec::new(),
            outer: OuterCtx::with_params(params),
            stats: ExecStats::default(),
        }
    }
}

/// A demand-driven operator.
pub trait Operator {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>>;
}

/// Instantiate the operator tree for a plan.
pub fn build_operator(plan: &PhysPlan) -> Box<dyn Operator> {
    match plan {
        PhysPlan::Values { rows } => Box::new(ValuesOp {
            rows: rows.clone(),
            idx: 0,
        }),
        PhysPlan::SeqScan { table, filter } => Box::new(SeqScanOp {
            table: table.clone(),
            filter: filter.clone(),
            buf: None,
            idx: 0,
        }),
        PhysPlan::IndexEq {
            table,
            index,
            key,
            filter,
        } => Box::new(IndexEqOp {
            table: table.clone(),
            index: index.clone(),
            key: key.clone(),
            filter: filter.clone(),
            buf: None,
            idx: 0,
        }),
        PhysPlan::SharedScan { id } => Box::new(SharedScanOp { id: *id, idx: 0 }),
        PhysPlan::Filter { input, preds } => Box::new(FilterOp {
            input: build_operator(input),
            preds: preds.clone(),
        }),
        PhysPlan::Project { input, exprs } => Box::new(ProjectOp {
            input: build_operator(input),
            exprs: exprs.clone(),
        }),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => Box::new(HashJoinOp {
            left: build_operator(left),
            right: build_operator(right),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            residual: residual.clone(),
            table: None,
            current: None,
        }),
        PhysPlan::NlJoin { left, right, preds } => Box::new(NlJoinOp {
            left: build_operator(left),
            right: build_operator(right),
            preds: preds.clone(),
            right_buf: None,
            current: None,
        }),
        PhysPlan::HashSemiJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
            anti,
        } => Box::new(HashSemiJoinOp {
            outer: build_operator(outer),
            inner: build_operator(inner),
            outer_keys: outer_keys.clone(),
            inner_keys: inner_keys.clone(),
            residual: residual.clone(),
            anti: *anti,
            table: None,
        }),
        PhysPlan::NlSemiJoin {
            outer,
            inner,
            preds,
            anti,
        } => Box::new(NlSemiJoinOp {
            outer: build_operator(outer),
            inner: build_operator(inner),
            preds: preds.clone(),
            anti: *anti,
            inner_buf: None,
        }),
        PhysPlan::SubqueryFilter {
            input,
            subplan,
            bindings,
            anti,
        } => Box::new(SubqueryFilterOp {
            input: build_operator(input),
            subplan: (**subplan).clone(),
            bindings: bindings.clone(),
            anti: *anti,
        }),
        PhysPlan::HashAggregate {
            input,
            group,
            aggs,
            having,
            output,
        } => Box::new(HashAggregateOp {
            input: build_operator(input),
            group: group.clone(),
            aggs: aggs.clone(),
            having: having.clone(),
            output: output.clone(),
            results: None,
            idx: 0,
        }),
        PhysPlan::HashDistinct { input } => Box::new(HashDistinctOp {
            input: build_operator(input),
            seen: HashSet::new(),
        }),
        PhysPlan::UnionAll { inputs } => Box::new(UnionAllOp {
            inputs: inputs.iter().map(|p| build_operator(p)).collect(),
            idx: 0,
        }),
        PhysPlan::Sort { input, specs } => Box::new(SortOp {
            input: build_operator(input),
            specs: specs.clone(),
            buf: None,
            idx: 0,
        }),
        PhysPlan::Limit { input, n } => Box::new(LimitOp {
            input: build_operator(input),
            n: *n,
            taken: 0,
        }),
    }
}

/// Drain an operator into a vector.
pub fn drain(op: &mut dyn Operator, rt: &mut Runtime<'_>) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next(rt)? {
        out.push(row);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------

struct ValuesOp {
    rows: Vec<Vec<PhysExpr>>,
    idx: usize,
}

impl Operator for ValuesOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.idx >= self.rows.len() {
            return Ok(None);
        }
        let exprs = &self.rows[self.idx];
        self.idx += 1;
        let mut row = Vec::with_capacity(exprs.len());
        for e in exprs {
            row.push(eval(e, &[], &rt.outer, &[])?);
        }
        Ok(Some(row))
    }
}

struct SeqScanOp {
    table: String,
    filter: Vec<PhysExpr>,
    buf: Option<Vec<Row>>,
    idx: usize,
}

impl Operator for SeqScanOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.buf.is_none() {
            let t = rt.catalog.table(&self.table)?;
            let mut raw = Vec::new();
            t.for_each(|_, tuple| {
                raw.push(tuple.values);
                Ok(true)
            })?;
            rt.stats.rows_scanned += raw.len() as u64;
            let mut rows = Vec::with_capacity(raw.len());
            for row in raw {
                if passes(&self.filter, &row, &rt.outer)? {
                    rows.push(row);
                }
            }
            self.buf = Some(rows);
        }
        let buf = self.buf.as_ref().unwrap();
        if self.idx >= buf.len() {
            return Ok(None);
        }
        let row = buf[self.idx].clone();
        self.idx += 1;
        Ok(Some(row))
    }
}

struct IndexEqOp {
    table: String,
    index: String,
    key: Vec<PhysExpr>,
    filter: Vec<PhysExpr>,
    buf: Option<Vec<Row>>,
    idx: usize,
}

impl Operator for IndexEqOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.buf.is_none() {
            let t = rt.catalog.table(&self.table)?;
            let mut key = Vec::with_capacity(self.key.len());
            for e in &self.key {
                key.push(eval(e, &[], &rt.outer, &[])?);
            }
            let rids = t.index_lookup(&self.index, &key)?;
            let mut rows = Vec::with_capacity(rids.len());
            for rid in rids {
                let row = t.get(rid)?.values;
                rt.stats.rows_scanned += 1;
                if passes(&self.filter, &row, &rt.outer)? {
                    rows.push(row);
                }
            }
            self.buf = Some(rows);
        }
        let buf = self.buf.as_ref().unwrap();
        if self.idx >= buf.len() {
            return Ok(None);
        }
        let row = buf[self.idx].clone();
        self.idx += 1;
        Ok(Some(row))
    }
}

struct SharedScanOp {
    id: usize,
    idx: usize,
}

impl Operator for SharedScanOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        let rows = rt
            .shared
            .get(self.id)
            .ok_or_else(|| ExecError::Type(format!("shared result cse{} missing", self.id)))?;
        if self.idx >= rows.len() {
            return Ok(None);
        }
        // Emit [rowid, cols...].
        let mut row = Vec::with_capacity(rows[self.idx].len() + 1);
        row.push(Value::Int(self.idx as i64));
        row.extend(rows[self.idx].iter().cloned());
        self.idx += 1;
        rt.stats.rows_scanned += 1;
        Ok(Some(row))
    }
}

struct FilterOp {
    input: Box<dyn Operator>,
    preds: Vec<PhysExpr>,
}

impl Operator for FilterOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(rt)? {
            if passes(&self.preds, &row, &rt.outer)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectOp {
    input: Box<dyn Operator>,
    exprs: Vec<PhysExpr>,
}

impl Operator for ProjectOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        match self.input.next(rt)? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(eval(e, &row, &rt.outer, &[])?);
                }
                Ok(Some(out))
            }
        }
    }
}

/// Join keys with SQL semantics: any NULL key never matches.
fn key_of(exprs: &[PhysExpr], row: &[Value], outer: &OuterCtx) -> Result<Option<Vec<Value>>> {
    let mut key = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = eval(e, row, outer, &[])?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(v);
    }
    Ok(Some(key))
}

struct HashJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<PhysExpr>,
    right_keys: Vec<PhysExpr>,
    residual: Vec<PhysExpr>,
    /// Build side (right input), keyed.
    table: Option<HashMap<Vec<Value>, Vec<Row>>>,
    /// Current probe row and the remaining matches.
    current: Option<(Row, Vec<Row>, usize)>,
}

impl Operator for HashJoinOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.table.is_none() {
            let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
            while let Some(row) = self.right.next(rt)? {
                if let Some(key) = key_of(&self.right_keys, &row, &rt.outer)? {
                    table.entry(key).or_default().push(row);
                }
            }
            self.table = Some(table);
        }
        loop {
            if let Some((lrow, matches, idx)) = &mut self.current {
                while *idx < matches.len() {
                    let rrow = &matches[*idx];
                    *idx += 1;
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    if passes(&self.residual, &combined, &rt.outer)? {
                        return Ok(Some(combined));
                    }
                }
                self.current = None;
            }
            match self.left.next(rt)? {
                None => return Ok(None),
                Some(lrow) => {
                    let table = self.table.as_ref().unwrap();
                    if let Some(key) = key_of(&self.left_keys, &lrow, &rt.outer)? {
                        if let Some(matches) = table.get(&key) {
                            self.current = Some((lrow, matches.clone(), 0));
                        }
                    }
                }
            }
        }
    }
}

struct NlJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    preds: Vec<PhysExpr>,
    right_buf: Option<Vec<Row>>,
    current: Option<(Row, usize)>,
}

impl Operator for NlJoinOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.right_buf.is_none() {
            self.right_buf = Some(drain(self.right.as_mut(), rt)?);
        }
        loop {
            if let Some((lrow, idx)) = &mut self.current {
                let right = self.right_buf.as_ref().unwrap();
                while *idx < right.len() {
                    let rrow = &right[*idx];
                    *idx += 1;
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    if passes(&self.preds, &combined, &rt.outer)? {
                        return Ok(Some(combined));
                    }
                }
                self.current = None;
            }
            match self.left.next(rt)? {
                None => return Ok(None),
                Some(lrow) => self.current = Some((lrow, 0)),
            }
        }
    }
}

struct HashSemiJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    outer_keys: Vec<PhysExpr>,
    inner_keys: Vec<PhysExpr>,
    residual: Vec<PhysExpr>,
    anti: bool,
    table: Option<HashMap<Vec<Value>, Vec<Row>>>,
}

impl Operator for HashSemiJoinOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.table.is_none() {
            let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
            while let Some(row) = self.inner.next(rt)? {
                if let Some(key) = key_of(&self.inner_keys, &row, &rt.outer)? {
                    // Residual-free semijoins only need key presence.
                    if self.residual.is_empty() {
                        table.entry(key).or_default();
                    } else {
                        table.entry(key).or_default().push(row);
                    }
                }
            }
            self.table = Some(table);
        }
        'outer: while let Some(orow) = self.outer.next(rt)? {
            let table = self.table.as_ref().unwrap();
            let matched = match key_of(&self.outer_keys, &orow, &rt.outer)? {
                None => false,
                Some(key) => match table.get(&key) {
                    None => false,
                    Some(rows) if self.residual.is_empty() => {
                        let _ = rows;
                        true
                    }
                    Some(rows) => {
                        let mut hit = false;
                        for irow in rows {
                            let mut combined = Vec::with_capacity(orow.len() + irow.len());
                            combined.extend(orow.iter().cloned());
                            combined.extend(irow.iter().cloned());
                            if passes(&self.residual, &combined, &rt.outer)? {
                                hit = true;
                                break;
                            }
                        }
                        hit
                    }
                },
            };
            if matched != self.anti {
                return Ok(Some(orow));
            }
            continue 'outer;
        }
        Ok(None)
    }
}

struct NlSemiJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    preds: Vec<PhysExpr>,
    anti: bool,
    inner_buf: Option<Vec<Row>>,
}

impl Operator for NlSemiJoinOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.inner_buf.is_none() {
            self.inner_buf = Some(drain(self.inner.as_mut(), rt)?);
        }
        while let Some(orow) = self.outer.next(rt)? {
            let inner = self.inner_buf.as_ref().unwrap();
            let mut matched = false;
            for irow in inner {
                let mut combined = Vec::with_capacity(orow.len() + irow.len());
                combined.extend(orow.iter().cloned());
                combined.extend(irow.iter().cloned());
                if passes(&self.preds, &combined, &rt.outer)? {
                    matched = true;
                    break;
                }
            }
            if matched != self.anti {
                return Ok(Some(orow));
            }
        }
        Ok(None)
    }
}

struct SubqueryFilterOp {
    input: Box<dyn Operator>,
    subplan: PhysPlan,
    bindings: Vec<(usize, usize, usize)>,
    anti: bool,
}

impl Operator for SubqueryFilterOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(rt)? {
            // Bind the outer quantifiers, remembering shadowed entries.
            let mut saved: Vec<(usize, Option<Row>)> = Vec::with_capacity(self.bindings.len());
            for (qun, offset, width) in &self.bindings {
                let slice = row[*offset..*offset + *width].to_vec();
                saved.push((*qun, rt.outer.insert(*qun, slice)));
            }
            rt.stats.subquery_invocations += 1;
            let mut sub = build_operator(&self.subplan);
            let has_row = sub.next(rt)?.is_some();
            // Restore bindings.
            for (qun, old) in saved {
                match old {
                    Some(v) => {
                        rt.outer.insert(qun, v);
                    }
                    None => {
                        rt.outer.remove(&qun);
                    }
                }
            }
            if has_row != self.anti {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Aggregate accumulator.
enum Acc {
    Count(i64),
    Sum {
        ints: i64,
        doubles: f64,
        any_double: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                ints: 0,
                doubles: 0.0,
                any_double: false,
                seen: false,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(n) => {
                // COUNT(*) passes None-as-row-marker via Some(non-null);
                // COUNT(expr) skips NULLs (handled by caller passing None).
                if v.is_some() {
                    *n += 1;
                }
            }
            Acc::Sum {
                ints,
                doubles,
                any_double,
                seen,
            } => {
                if let Some(v) = v {
                    *seen = true;
                    match v {
                        Value::Int(i) => *ints += *i,
                        Value::Double(d) => {
                            *doubles += *d;
                            *any_double = true;
                        }
                        other => {
                            return Err(ExecError::Type(format!("SUM of {}", other.type_name())))
                        }
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(v) = v {
                    *sum += v.as_double().map_err(ExecError::from)?;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if let Some(v) = v {
                    if m.as_ref().map(|cur| v < cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(v) = v {
                    if m.as_ref().map(|cur| v > cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::Sum {
                ints,
                doubles,
                any_double,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_double {
                    Value::Double(*doubles + *ints as f64)
                } else {
                    Value::Int(*ints)
                }
            }
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *n as f64)
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone().unwrap_or(Value::Null),
        }
    }
}

struct GroupState {
    accs: Vec<Acc>,
    distinct_seen: Vec<Option<HashSet<Value>>>,
}

struct HashAggregateOp {
    input: Box<dyn Operator>,
    group: Vec<PhysExpr>,
    aggs: Vec<AggSpec>,
    having: Vec<PhysExpr>,
    output: Vec<PhysExpr>,
    results: Option<Vec<Row>>,
    idx: usize,
}

impl Operator for HashAggregateOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.results.is_none() {
            let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
            let mut saw_input = false;
            while let Some(row) = self.input.next(rt)? {
                saw_input = true;
                let mut key = Vec::with_capacity(self.group.len());
                for g in &self.group {
                    key.push(eval(g, &row, &rt.outer, &[])?);
                }
                let state = groups.entry(key).or_insert_with(|| GroupState {
                    accs: self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
                    distinct_seen: self
                        .aggs
                        .iter()
                        .map(|a| {
                            if a.distinct {
                                Some(HashSet::new())
                            } else {
                                None
                            }
                        })
                        .collect(),
                });
                for (i, spec) in self.aggs.iter().enumerate() {
                    let arg_val = match &spec.arg {
                        None => Some(Value::Bool(true)), // COUNT(*): every row
                        Some(e) => {
                            let v = eval(e, &row, &rt.outer, &[])?;
                            if v.is_null() {
                                None
                            } else {
                                Some(v)
                            }
                        }
                    };
                    let Some(v) = arg_val else { continue };
                    if let Some(seen) = &mut state.distinct_seen[i] {
                        if !seen.insert(v.clone()) {
                            continue;
                        }
                    }
                    state.accs[i].update(Some(&v))?;
                }
            }
            // Grand total for empty input with no GROUP BY: one row of
            // "empty" aggregates (COUNT = 0, SUM = NULL, ...).
            if groups.is_empty() && self.group.is_empty() && !saw_input {
                groups.insert(
                    Vec::new(),
                    GroupState {
                        accs: self.aggs.iter().map(|a| Acc::new(a.func)).collect(),
                        distinct_seen: vec![None; self.aggs.len()],
                    },
                );
            }
            let mut rows = Vec::with_capacity(groups.len());
            for (key, state) in groups {
                let agg_vals: Vec<Value> = state.accs.iter().map(|a| a.finish()).collect();
                // HAVING over [group values] with agg slots.
                let mut ok = true;
                for h in &self.having {
                    if !truthy(&eval(h, &key, &rt.outer, &agg_vals)?) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                let mut out = Vec::with_capacity(self.output.len());
                for e in &self.output {
                    out.push(eval(e, &key, &rt.outer, &agg_vals)?);
                }
                rows.push(out);
            }
            // Deterministic order for tests: sort rows by value.
            rows.sort();
            self.results = Some(rows);
        }
        let rows = self.results.as_ref().unwrap();
        if self.idx >= rows.len() {
            return Ok(None);
        }
        let row = rows[self.idx].clone();
        self.idx += 1;
        Ok(Some(row))
    }
}

struct HashDistinctOp {
    input: Box<dyn Operator>,
    seen: HashSet<Vec<Value>>,
}

impl Operator for HashDistinctOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(rt)? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct UnionAllOp {
    inputs: Vec<Box<dyn Operator>>,
    idx: usize,
}

impl Operator for UnionAllOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        while self.idx < self.inputs.len() {
            if let Some(row) = self.inputs[self.idx].next(rt)? {
                return Ok(Some(row));
            }
            self.idx += 1;
        }
        Ok(None)
    }
}

struct SortOp {
    input: Box<dyn Operator>,
    specs: Vec<xnf_plan::SortSpec>,
    buf: Option<Vec<Row>>,
    idx: usize,
}

impl Operator for SortOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.buf.is_none() {
            let mut rows = drain(self.input.as_mut(), rt)?;
            let specs = self.specs.clone();
            rows.sort_by(|a, b| {
                for s in &specs {
                    let ord = a[s.col].total_cmp(&b[s.col]);
                    let ord = if s.desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.buf = Some(rows);
        }
        let buf = self.buf.as_ref().unwrap();
        if self.idx >= buf.len() {
            return Ok(None);
        }
        let row = buf[self.idx].clone();
        self.idx += 1;
        Ok(Some(row))
    }
}

struct LimitOp {
    input: Box<dyn Operator>,
    n: u64,
    taken: u64,
}

impl Operator for LimitOp {
    fn next(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Row>> {
        if self.taken >= self.n {
            return Ok(None);
        }
        match self.input.next(rt)? {
            None => Ok(None),
            Some(row) => {
                self.taken += 1;
                Ok(Some(row))
            }
        }
    }
}
