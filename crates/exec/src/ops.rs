//! Vectorized operators: each interprets one QEP node, pulling *batches* of
//! rows from its inputs on demand (the paper's "table queue evaluation",
//! Sect. 3.1, with streams chunked into [`RowBatch`]es so per-tuple virtual
//! dispatch amortises over a whole chunk).

use std::collections::HashSet;
use std::sync::Arc;

use xnf_plan::{AggSpec, PhysExpr, PhysPlan, DEFAULT_BATCH_SIZE};
use xnf_sql::AggFunc;
use xnf_storage::{Catalog, Table, Value};

use crate::batch::{BatchBuilder, RowBatch};
use crate::error::{ExecError, Result};
use crate::eval::{eval, filter_batch, passes, truthy, CompiledPreds, OuterCtx, Row};
use crate::hash::{FxHashMap, FxHashSet};

/// Execution statistics (per engine run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by scans (base, index and shared).
    pub rows_scanned: u64,
    /// Correlated subquery instantiations (the naive path's cost driver).
    pub subquery_invocations: u64,
    /// Rows emitted by all output streams.
    pub rows_emitted: u64,
    /// Batches delivered at pipeline sinks (output streams and shared
    /// table-queue materialisations).
    pub batches_emitted: u64,
    /// Largest single batch observed at a sink (pipeline granularity).
    pub peak_batch_rows: u64,
    /// Commit-stamp of the MVCC snapshot this run read against (0 = the
    /// initial, pre-first-commit state).
    pub snapshot_seq: u64,
    /// Tuple versions scans and index lookups skipped because the snapshot
    /// could not see them (uncommitted, superseded, or committed after the
    /// snapshot was taken).
    pub rows_skipped_visibility: u64,
    /// Dead tuple versions physically reclaimed by garbage collection
    /// during this run (non-zero only for `VACUUM` statements).
    pub gc_versions_reclaimed: u64,
    /// Version headers rewritten to the committed-forever sentinel by GC
    /// during this run (non-zero only for `VACUUM` statements).
    pub gc_versions_frozen: u64,
    /// Commit-stamp entries pruned behind the live-snapshot low-watermark
    /// during this run (non-zero only for `VACUUM` statements).
    pub gc_stamps_pruned: u64,
    /// Write-ahead-log bytes this run appended (zero for pure reads and on
    /// in-memory databases, which have no log).
    pub wal_bytes_logged: u64,
    /// Log fsyncs this run forced (group commit batches many commits into
    /// one, so this is usually far below the commit count).
    pub wal_fsyncs: u64,
    /// Parallel regions (gather / partial-aggregate roots) this run
    /// executed. Zero for fully serial plans (dop = 1).
    pub parallel_regions: u64,
    /// Worker pipelines spawned across all parallel regions of this run.
    pub parallel_workers: u64,
    /// Page morsels parallel scans claimed and processed (past-the-end
    /// probes excluded).
    pub morsels_dispatched: u64,
    /// Composite-object root keys re-extracted by materialized-view
    /// maintenance (one per root subtree spliced into a view's streams).
    pub mv_roots_respliced: u64,
    /// Stored view nodes maintenance kept because they were value-identical
    /// to (or in-place updatable into) the re-extracted result, instead of
    /// being deleted and re-derived.
    pub mv_nodes_reused: u64,
    /// Wall-clock microseconds spent in commit-time view maintenance
    /// (precompute + stamp-ordered apply).
    pub mv_maint_us: u64,
    /// Page reads whose torn-page trailer checksum was verified (file
    /// backend; zero on in-memory databases).
    pub pages_verified: u64,
    /// Torn in-place pages restored from the double-write buffer at open.
    pub torn_pages_repaired: u64,
    /// Double-write batches fsynced ahead of their in-place page writes.
    pub dw_batches: u64,
}

impl ExecStats {
    /// Record one sink-side batch.
    pub fn note_batch(&mut self, rows: usize) {
        self.batches_emitted += 1;
        self.peak_batch_rows = self.peak_batch_rows.max(rows as u64);
    }

    /// Fold another run's counters into this one (parallel stream delivery).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.subquery_invocations += other.subquery_invocations;
        self.rows_emitted += other.rows_emitted;
        self.batches_emitted += other.batches_emitted;
        self.peak_batch_rows = self.peak_batch_rows.max(other.peak_batch_rows);
        self.snapshot_seq = self.snapshot_seq.max(other.snapshot_seq);
        self.rows_skipped_visibility += other.rows_skipped_visibility;
        self.gc_versions_reclaimed += other.gc_versions_reclaimed;
        self.gc_versions_frozen += other.gc_versions_frozen;
        self.gc_stamps_pruned += other.gc_stamps_pruned;
        self.wal_bytes_logged += other.wal_bytes_logged;
        self.wal_fsyncs += other.wal_fsyncs;
        self.parallel_regions += other.parallel_regions;
        self.parallel_workers += other.parallel_workers;
        self.morsels_dispatched += other.morsels_dispatched;
        self.mv_roots_respliced += other.mv_roots_respliced;
        self.mv_nodes_reused += other.mv_nodes_reused;
        self.mv_maint_us += other.mv_maint_us;
        self.pages_verified += other.pages_verified;
        self.torn_pages_repaired += other.torn_pages_repaired;
        self.dw_batches += other.dw_batches;
    }
}

/// Shared runtime state threaded through the operator tree.
pub struct Runtime<'a> {
    pub catalog: &'a Catalog,
    /// Materialised shared subplans (by [`xnf_plan::SharedId`]): each is a
    /// table queue stored as a batch sequence.
    pub shared: Vec<Arc<Vec<RowBatch>>>,
    /// Correlation bindings for `Outer` references.
    pub outer: OuterCtx,
    pub stats: ExecStats,
    /// Target rows per streamed batch (from the QEP; ≥ 1).
    pub batch_size: usize,
    /// The MVCC snapshot every scan and index lookup of this run filters
    /// against: the visibility handle from the evaluation context when the
    /// caller pinned one (reads inside an open transaction), otherwise a
    /// fresh latest-committed snapshot (autocommit statement reads).
    pub snapshot: xnf_storage::Snapshot,
}

impl<'a> Runtime<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_ctx(catalog, OuterCtx::new())
    }

    /// A runtime with prepared-statement parameter bindings available to
    /// every operator via the evaluation context.
    pub fn with_params(catalog: &'a Catalog, params: crate::eval::Params) -> Self {
        Self::with_ctx(catalog, OuterCtx::with_params(params))
    }

    /// A runtime over an explicit evaluation context (parameters +
    /// visibility handle).
    pub fn with_ctx(catalog: &'a Catalog, outer: OuterCtx) -> Self {
        let snapshot = outer
            .visibility()
            .clone()
            .unwrap_or_else(|| catalog.latest_snapshot());
        let stats = ExecStats {
            snapshot_seq: snapshot.seq,
            ..ExecStats::default()
        };
        Runtime {
            catalog,
            shared: Vec::new(),
            outer,
            stats,
            batch_size: DEFAULT_BATCH_SIZE,
            snapshot,
        }
    }
}

/// A demand-driven batch operator. `None` signals end-of-stream; produced
/// batches are never empty.
pub trait Operator {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>>;
}

/// Instantiate the operator tree for a plan.
pub fn build_operator(plan: &PhysPlan) -> Box<dyn Operator> {
    match plan {
        PhysPlan::Values { rows } => Box::new(ValuesOp {
            rows: rows.clone(),
            done: false,
        }),
        PhysPlan::SeqScan { table, filter } => Box::new(SeqScanOp {
            table: table.clone(),
            filter: filter.clone(),
            table_ref: None,
            page_idx: 0,
            pending: BatchBuilder::default(),
            done: false,
        }),
        // A matview scan is a seq scan of the view's backing table: the
        // catalog resolves the view name to its backing storage.
        PhysPlan::MatViewScan { view, filter } => Box::new(SeqScanOp {
            table: view.clone(),
            filter: filter.clone(),
            table_ref: None,
            page_idx: 0,
            pending: BatchBuilder::default(),
            done: false,
        }),
        PhysPlan::IndexEq {
            table,
            index,
            key,
            filter,
        } => Box::new(IndexEqOp {
            table: table.clone(),
            index: index.clone(),
            key: key.clone(),
            filter: filter.clone(),
            rids: None,
            pos: 0,
        }),
        PhysPlan::SharedScan { id } => Box::new(SharedScanOp {
            id: *id,
            batch_idx: 0,
            row_offset: 0,
        }),
        PhysPlan::Filter { input, preds } => Box::new(FilterOp {
            input: build_operator(input),
            preds: preds.clone(),
        }),
        PhysPlan::Project { input, exprs } => Box::new(ProjectOp {
            input: build_operator(input),
            exprs: exprs.clone(),
        }),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => Box::new(HashJoinOp {
            left: build_operator(left),
            right: build_operator(right),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            residual: residual.clone(),
            table: None,
            probe: None,
        }),
        PhysPlan::NlJoin { left, right, preds } => Box::new(NlJoinOp {
            left: build_operator(left),
            right: build_operator(right),
            preds: preds.clone(),
            right_buf: None,
            current: None,
        }),
        PhysPlan::HashSemiJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
            anti,
        } => Box::new(HashSemiJoinOp {
            outer: build_operator(outer),
            inner: build_operator(inner),
            outer_keys: outer_keys.clone(),
            inner_keys: inner_keys.clone(),
            residual: residual.clone(),
            anti: *anti,
            table: None,
        }),
        PhysPlan::NlSemiJoin {
            outer,
            inner,
            preds,
            anti,
        } => Box::new(NlSemiJoinOp {
            outer: build_operator(outer),
            inner: build_operator(inner),
            preds: preds.clone(),
            anti: *anti,
            inner_buf: None,
        }),
        PhysPlan::SubqueryFilter {
            input,
            subplan,
            bindings,
            anti,
        } => Box::new(SubqueryFilterOp {
            input: build_operator(input),
            subplan: (**subplan).clone(),
            bindings: bindings.clone(),
            anti: *anti,
        }),
        PhysPlan::HashAggregate {
            input,
            group,
            aggs,
            having,
            output,
        } => Box::new(HashAggregateOp {
            input: build_operator(input),
            group: group.clone(),
            aggs: aggs.clone(),
            having: having.clone(),
            output: output.clone(),
            results: None,
            idx: 0,
        }),
        PhysPlan::HashDistinct { input } => Box::new(HashDistinctOp {
            input: build_operator(input),
            seen: FxHashSet::default(),
        }),
        PhysPlan::UnionAll { inputs } => Box::new(UnionAllOp {
            inputs: inputs.iter().map(|p| build_operator(p)).collect(),
            idx: 0,
        }),
        PhysPlan::Sort { input, specs } => Box::new(SortOp {
            input: build_operator(input),
            specs: specs.clone(),
            buf: None,
            idx: 0,
        }),
        PhysPlan::Limit { input, n } => Box::new(LimitOp {
            input: build_operator(input),
            n: *n,
            taken: 0,
        }),
        PhysPlan::ExchangeGather { input, dop } => Box::new(
            crate::parallel::ExchangeGatherOp::new((**input).clone(), *dop),
        ),
        PhysPlan::ParallelHashAggregate {
            input,
            group,
            aggs,
            having,
            output,
            dop,
        } => Box::new(crate::parallel::ParallelHashAggregateOp::new(
            (**input).clone(),
            group.clone(),
            aggs.clone(),
            having.clone(),
            output.clone(),
            *dop,
        )),
        // Worker-pipeline-only nodes: these execute inside a parallel
        // region (see `crate::parallel`); reaching one here means the
        // planner emitted a region body without its root.
        PhysPlan::ParallelSeqScan { .. }
        | PhysPlan::ExchangeHashPartition { .. }
        | PhysPlan::ParallelHashJoin { .. } => Box::new(InvalidPlanOp {
            msg: "parallel worker operator outside a parallel region",
        }),
    }
}

/// Placeholder for plan nodes that are only valid inside a parallel
/// region: errors on first pull instead of panicking at build time.
struct InvalidPlanOp {
    msg: &'static str,
}

impl Operator for InvalidPlanOp {
    fn next_batch(&mut self, _rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        Err(ExecError::Type(self.msg.to_string()))
    }
}

/// Drain an operator into a flat row vector.
pub fn drain(op: &mut dyn Operator, rt: &mut Runtime<'_>) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch(rt)? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------

struct ValuesOp {
    rows: Vec<Vec<PhysExpr>>,
    done: bool,
}

impl Operator for ValuesOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.done || self.rows.is_empty() {
            return Ok(None);
        }
        self.done = true;
        let mut batch = RowBatch::with_capacity(
            self.rows.first().map(|r| r.len()).unwrap_or(0),
            self.rows.len(),
        );
        for exprs in &self.rows {
            let mut row = Vec::with_capacity(exprs.len());
            for e in exprs {
                row.push(eval(e, &[], &rt.outer, &[])?);
            }
            batch.push(row);
        }
        Ok(Some(batch))
    }
}

struct SeqScanOp {
    table: String,
    filter: Vec<PhysExpr>,
    table_ref: Option<Arc<Table>>,
    /// Next heap page to pull (scans stream page-at-a-time; the whole table
    /// is never buffered in the operator).
    page_idx: usize,
    pending: BatchBuilder,
    done: bool,
}

impl Operator for SeqScanOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.done {
            return Ok(None);
        }
        if self.table_ref.is_none() {
            self.table_ref = Some(rt.catalog.table(&self.table)?);
            self.pending = BatchBuilder::new(0, rt.batch_size);
        }
        let t = self.table_ref.as_ref().unwrap().clone();
        // Classify the residual filter once per emitted batch; each decoded
        // tuple is then tested inline while pages stream through.
        let compiled = CompiledPreds::compile(&self.filter);
        loop {
            if let Some(full) = self.pending.take_full() {
                return Ok(Some(full));
            }
            match t.scan_page_snapshot(self.page_idx, &rt.snapshot)? {
                None => {
                    self.done = true;
                    return Ok(self.pending.take_rest());
                }
                Some((page, skipped)) => {
                    self.page_idx += 1;
                    rt.stats.rows_scanned += page.len() as u64;
                    rt.stats.rows_skipped_visibility += skipped;
                    for (_, tuple) in page {
                        if compiled.is_empty() || compiled.matches(&tuple.values, &rt.outer)? {
                            self.pending.push(tuple.values);
                        }
                    }
                }
            }
        }
    }
}

struct IndexEqOp {
    table: String,
    index: String,
    key: Vec<PhysExpr>,
    filter: Vec<PhysExpr>,
    /// Postings from the index probe (plus the probed key and index
    /// definition for per-posting re-verification); streamed out in
    /// batch-sized slices.
    rids: Option<(Vec<xnf_storage::Rid>, Vec<Value>, xnf_storage::IndexDef)>,
    pos: usize,
}

impl Operator for IndexEqOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        let t = rt.catalog.table(&self.table)?;
        if self.rids.is_none() {
            let mut key = Vec::with_capacity(self.key.len());
            for e in &self.key {
                key.push(eval(e, &[], &rt.outer, &[])?);
            }
            let def = t
                .index_def(&self.index)
                .ok_or_else(|| ExecError::Type(format!("unknown index '{}'", self.index)))?;
            self.rids = Some((t.index_lookup(&self.index, &key)?, key, def));
        }
        let (rids, key, def) = self.rids.as_ref().unwrap();
        let compiled = CompiledPreds::compile(&self.filter);
        loop {
            if self.pos >= rids.len() {
                return Ok(None);
            }
            let end = (self.pos + rt.batch_size).min(rids.len());
            let chunk = &rids[self.pos..end];
            self.pos = end;
            let mut batch = RowBatch::with_capacity(0, chunk.len());
            for rid in chunk {
                // Postings cover every tuple version (and may dangle after
                // a concurrent rollback reclaims one); only versions that
                // are visible to this run's snapshot and still carry the
                // probed key count as scanned rows.
                let Some(tuple) = t.resolve_posting(*rid, &rt.snapshot, def, key)? else {
                    rt.stats.rows_skipped_visibility += 1;
                    continue;
                };
                rt.stats.rows_scanned += 1;
                let values = tuple.values;
                if compiled.is_empty() || compiled.matches(&values, &rt.outer)? {
                    batch.push(values);
                }
            }
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }
}

struct SharedScanOp {
    id: usize,
    batch_idx: usize,
    /// Running rowid of the first tuple of the next batch.
    row_offset: usize,
}

impl Operator for SharedScanOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        let shared = Arc::clone(
            rt.shared
                .get(self.id)
                .ok_or_else(|| ExecError::Type(format!("shared result cse{} missing", self.id)))?,
        );
        let Some(src) = shared.get(self.batch_idx) else {
            return Ok(None);
        };
        self.batch_idx += 1;
        rt.stats.rows_scanned += src.len() as u64;
        // Emit [rowid, cols...] — the system-generated identifier CO
        // connection streams project (Sect. 5.0).
        let mut out = RowBatch::with_capacity(src.columns() + 1, src.len());
        for (i, row) in src.iter().enumerate() {
            let mut with_id = Vec::with_capacity(row.len() + 1);
            with_id.push(Value::Int((self.row_offset + i) as i64));
            with_id.extend(row.iter().cloned());
            out.push(with_id);
        }
        self.row_offset += src.len();
        Ok(Some(out))
    }
}

pub(crate) struct FilterOp {
    pub(crate) input: Box<dyn Operator>,
    pub(crate) preds: Vec<PhysExpr>,
}

impl Operator for FilterOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        while let Some(mut batch) = self.input.next_batch(rt)? {
            filter_batch(&self.preds, &mut batch, &rt.outer)?;
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

pub(crate) struct ProjectOp {
    pub(crate) input: Box<dyn Operator>,
    pub(crate) exprs: Vec<PhysExpr>,
}

impl Operator for ProjectOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        match self.input.next_batch(rt)? {
            None => Ok(None),
            Some(batch) => Ok(Some(crate::eval::project_batch(
                &self.exprs,
                &batch,
                &rt.outer,
            )?)),
        }
    }
}

/// Join keys with SQL semantics: any NULL key never matches.
pub(crate) fn key_of(
    exprs: &[PhysExpr],
    row: &[Value],
    outer: &OuterCtx,
) -> Result<Option<Vec<Value>>> {
    let mut key = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = eval(e, row, outer, &[])?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(v);
    }
    Ok(Some(key))
}

/// [`key_of`] into a reusable buffer (probe sides evaluate one key per
/// input row; reusing the scratch vector avoids a heap allocation per
/// probe). Returns `false` when any key value is NULL (no match).
pub(crate) fn key_into(
    exprs: &[PhysExpr],
    row: &[Value],
    outer: &OuterCtx,
    buf: &mut Vec<Value>,
) -> Result<bool> {
    buf.clear();
    for e in exprs {
        let v = eval(e, row, outer, &[])?;
        if v.is_null() {
            return Ok(false);
        }
        buf.push(v);
    }
    Ok(true)
}

/// The build side shared by [`HashJoinOp`] and [`HashSemiJoinOp`]: a hash
/// table from join-key values to the build rows (or to key presence only,
/// when the consumer needs no row payload).
struct JoinTable {
    map: FxHashMap<Vec<Value>, Vec<Row>>,
}

impl JoinTable {
    /// Drain `input` batch-at-a-time and index its rows by `keys`. With
    /// `keep_rows == false` only key presence is recorded (residual-free
    /// semijoins never look at the matched rows).
    fn build(
        input: &mut dyn Operator,
        rt: &mut Runtime<'_>,
        keys: &[PhysExpr],
        keep_rows: bool,
    ) -> Result<JoinTable> {
        let mut map: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
        while let Some(batch) = input.next_batch(rt)? {
            for row in batch {
                if let Some(key) = key_of(keys, &row, &rt.outer)? {
                    let bucket = map.entry(key).or_default();
                    if keep_rows {
                        bucket.push(row);
                    }
                }
            }
        }
        Ok(JoinTable { map })
    }

    fn get(&self, key: &[Value]) -> Option<&[Row]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    fn contains(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }
}

struct HashJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<PhysExpr>,
    right_keys: Vec<PhysExpr>,
    residual: Vec<PhysExpr>,
    /// Build side (right input), keyed.
    table: Option<JoinTable>,
    /// Probe batch still being expanded (and the next row to probe in it),
    /// so high-fanout joins flush output near `batch_size` instead of
    /// materialising one input batch's full match set.
    probe: Option<(RowBatch, usize)>,
}

impl Operator for HashJoinOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.table.is_none() {
            self.table = Some(JoinTable::build(
                self.right.as_mut(),
                rt,
                &self.right_keys,
                true,
            )?);
        }
        let mut key = Vec::with_capacity(self.left_keys.len());
        let mut out = RowBatch::with_capacity(0, rt.batch_size);
        loop {
            if self.probe.is_none() {
                match self.left.next_batch(rt)? {
                    None => break,
                    Some(lbatch) => self.probe = Some((lbatch, 0)),
                }
            }
            let (lbatch, idx) = self.probe.as_mut().unwrap();
            let table = self.table.as_ref().unwrap();
            while *idx < lbatch.len() && out.len() < rt.batch_size {
                let lrow = &lbatch[*idx];
                *idx += 1;
                if !key_into(&self.left_keys, lrow, &rt.outer, &mut key)? {
                    continue;
                }
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for rrow in matches {
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    out.push(combined);
                }
            }
            if *idx >= lbatch.len() {
                self.probe = None;
            }
            if out.len() >= rt.batch_size {
                filter_batch(&self.residual, &mut out, &rt.outer)?;
                if !out.is_empty() {
                    return Ok(Some(out));
                }
            }
        }
        filter_batch(&self.residual, &mut out, &rt.outer)?;
        Ok(if out.is_empty() { None } else { Some(out) })
    }
}

struct NlJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    preds: Vec<PhysExpr>,
    right_buf: Option<Vec<Row>>,
    /// Left rows still to be expanded against the buffered right side.
    current: Option<(RowBatch, usize)>,
}

impl Operator for NlJoinOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.right_buf.is_none() {
            self.right_buf = Some(drain(self.right.as_mut(), rt)?);
        }
        loop {
            // Expand one left row at a time to bound the combined batch at
            // the right side's cardinality.
            if let Some((lbatch, idx)) = &mut self.current {
                while *idx < lbatch.len() {
                    let lrow = &lbatch[*idx];
                    *idx += 1;
                    let right = self.right_buf.as_ref().unwrap();
                    let mut out = RowBatch::with_capacity(0, right.len().min(rt.batch_size));
                    for rrow in right {
                        let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                        combined.extend(lrow.iter().cloned());
                        combined.extend(rrow.iter().cloned());
                        out.push(combined);
                    }
                    filter_batch(&self.preds, &mut out, &rt.outer)?;
                    if !out.is_empty() {
                        return Ok(Some(out));
                    }
                }
                self.current = None;
            }
            match self.left.next_batch(rt)? {
                None => return Ok(None),
                Some(lbatch) => self.current = Some((lbatch, 0)),
            }
        }
    }
}

struct HashSemiJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    outer_keys: Vec<PhysExpr>,
    inner_keys: Vec<PhysExpr>,
    residual: Vec<PhysExpr>,
    anti: bool,
    table: Option<JoinTable>,
}

impl Operator for HashSemiJoinOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.table.is_none() {
            // Residual-free semijoins only need key presence.
            let keep_rows = !self.residual.is_empty();
            self.table = Some(JoinTable::build(
                self.inner.as_mut(),
                rt,
                &self.inner_keys,
                keep_rows,
            )?);
        }
        let mut key = Vec::with_capacity(self.outer_keys.len());
        while let Some(mut obatch) = self.outer.next_batch(rt)? {
            let table = self.table.as_ref().unwrap();
            let mut keep = Vec::with_capacity(obatch.len());
            for orow in obatch.iter() {
                let matched = match key_into(&self.outer_keys, orow, &rt.outer, &mut key)? {
                    false => false,
                    true if self.residual.is_empty() => table.contains(&key),
                    true => {
                        let mut hit = false;
                        for irow in table.get(&key).unwrap_or(&[]) {
                            let mut combined = Vec::with_capacity(orow.len() + irow.len());
                            combined.extend(orow.iter().cloned());
                            combined.extend(irow.iter().cloned());
                            if passes(&self.residual, &combined, &rt.outer)? {
                                hit = true;
                                break;
                            }
                        }
                        hit
                    }
                };
                keep.push(matched != self.anti);
            }
            obatch.retain_indices(&keep);
            if !obatch.is_empty() {
                return Ok(Some(obatch));
            }
        }
        Ok(None)
    }
}

struct NlSemiJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    preds: Vec<PhysExpr>,
    anti: bool,
    inner_buf: Option<Vec<Row>>,
}

impl Operator for NlSemiJoinOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.inner_buf.is_none() {
            self.inner_buf = Some(drain(self.inner.as_mut(), rt)?);
        }
        while let Some(mut obatch) = self.outer.next_batch(rt)? {
            let inner = self.inner_buf.as_ref().unwrap();
            let mut keep = Vec::with_capacity(obatch.len());
            for orow in obatch.iter() {
                let mut matched = false;
                for irow in inner {
                    let mut combined = Vec::with_capacity(orow.len() + irow.len());
                    combined.extend(orow.iter().cloned());
                    combined.extend(irow.iter().cloned());
                    if passes(&self.preds, &combined, &rt.outer)? {
                        matched = true;
                        break;
                    }
                }
                keep.push(matched != self.anti);
            }
            obatch.retain_indices(&keep);
            if !obatch.is_empty() {
                return Ok(Some(obatch));
            }
        }
        Ok(None)
    }
}

struct SubqueryFilterOp {
    input: Box<dyn Operator>,
    subplan: PhysPlan,
    bindings: Vec<(usize, usize, usize)>,
    anti: bool,
}

impl Operator for SubqueryFilterOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        while let Some(mut batch) = self.input.next_batch(rt)? {
            let mut keep = Vec::with_capacity(batch.len());
            for row in batch.iter() {
                // Bind the outer quantifiers, remembering shadowed entries.
                let mut saved: Vec<(usize, Option<Row>)> = Vec::with_capacity(self.bindings.len());
                for (qun, offset, width) in &self.bindings {
                    let slice = row[*offset..*offset + *width].to_vec();
                    saved.push((*qun, rt.outer.insert(*qun, slice)));
                }
                rt.stats.subquery_invocations += 1;
                let mut sub = build_operator(&self.subplan);
                let has_row = sub.next_batch(rt)?.is_some();
                // Restore bindings.
                for (qun, old) in saved {
                    match old {
                        Some(v) => {
                            rt.outer.insert(qun, v);
                        }
                        None => {
                            rt.outer.remove(&qun);
                        }
                    }
                }
                keep.push(has_row != self.anti);
            }
            batch.retain_indices(&keep);
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

/// Aggregate accumulator.
pub(crate) enum Acc {
    Count(i64),
    Sum {
        ints: i64,
        doubles: f64,
        any_double: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    pub(crate) fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                ints: 0,
                doubles: 0.0,
                any_double: false,
                seen: false,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(n) => {
                // COUNT(*) passes None-as-row-marker via Some(non-null);
                // COUNT(expr) skips NULLs (handled by caller passing None).
                if v.is_some() {
                    *n += 1;
                }
            }
            Acc::Sum {
                ints,
                doubles,
                any_double,
                seen,
            } => {
                if let Some(v) = v {
                    *seen = true;
                    match v {
                        Value::Int(i) => *ints += *i,
                        Value::Double(d) => {
                            *doubles += *d;
                            *any_double = true;
                        }
                        other => {
                            return Err(ExecError::Type(format!("SUM of {}", other.type_name())))
                        }
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(v) = v {
                    *sum += v.as_double().map_err(ExecError::from)?;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if let Some(v) = v {
                    if m.as_ref().map(|cur| v < cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(v) = v {
                    if m.as_ref().map(|cur| v > cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold another partial accumulator of the same kind into this one
    /// (parallel partial→final aggregation). COUNT/MIN/MAX and integer SUM
    /// merge exactly; SUM/AVG over doubles inherit floating-point
    /// non-associativity (documented in docs/EXPLAIN.md).
    pub(crate) fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += *b,
            (
                Acc::Sum {
                    ints,
                    doubles,
                    any_double,
                    seen,
                },
                Acc::Sum {
                    ints: i2,
                    doubles: d2,
                    any_double: a2,
                    seen: s2,
                },
            ) => {
                *ints += *i2;
                *doubles += *d2;
                *any_double |= *a2;
                *seen |= *s2;
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += *s2;
                *n += *n2;
            }
            (Acc::Min(m), Acc::Min(o)) => {
                if let Some(v) = o {
                    if m.as_ref().map(|cur| v < cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
            (Acc::Max(m), Acc::Max(o)) => {
                if let Some(v) = o {
                    if m.as_ref().map(|cur| v > cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
            _ => debug_assert!(false, "merging mismatched accumulators"),
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::Sum {
                ints,
                doubles,
                any_double,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_double {
                    Value::Double(*doubles + *ints as f64)
                } else {
                    Value::Int(*ints)
                }
            }
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *n as f64)
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone().unwrap_or(Value::Null),
        }
    }
}

pub(crate) struct GroupState {
    pub(crate) accs: Vec<Acc>,
    pub(crate) distinct_seen: Vec<Option<HashSet<Value>>>,
}

/// Fold one input row into a group's accumulators.
pub(crate) fn update_state(
    state: &mut GroupState,
    aggs: &[AggSpec],
    row: &[Value],
    outer: &OuterCtx,
) -> Result<()> {
    for (i, spec) in aggs.iter().enumerate() {
        let arg_val = match &spec.arg {
            None => Some(Value::Bool(true)), // COUNT(*): every row
            Some(e) => {
                let v = eval(e, row, outer, &[])?;
                if v.is_null() {
                    None
                } else {
                    Some(v)
                }
            }
        };
        let Some(v) = arg_val else { continue };
        if let Some(seen) = &mut state.distinct_seen[i] {
            if !seen.insert(v.clone()) {
                continue;
            }
        }
        state.accs[i].update(Some(&v))?;
    }
    Ok(())
}

/// Fresh accumulator state for one group.
pub(crate) fn fresh_state(aggs: &[AggSpec]) -> GroupState {
    GroupState {
        accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
        distinct_seen: aggs
            .iter()
            .map(|a| {
                if a.distinct {
                    Some(HashSet::new())
                } else {
                    None
                }
            })
            .collect(),
    }
}

/// Streaming group-by accumulator, shared by the serial
/// [`HashAggregateOp`] and the parallel partial-aggregation workers
/// (each worker folds its morsels into one of these; the coordinator
/// merges the partials with [`merge_group_state`]).
pub(crate) struct GroupAcc<'p> {
    group: &'p [PhysExpr],
    aggs: &'p [AggSpec],
    groups: FxHashMap<Vec<Value>, GroupState>,
    /// Grand-total fast path (no GROUP BY): one accumulator state, no
    /// per-row key construction or hashing.
    grand: Option<GroupState>,
    /// When every aggregate is a plain COUNT(*), whole batches fold in as
    /// a single length addition — the fully vectorized case.
    all_plain_counts: bool,
    saw_input: bool,
}

impl<'p> GroupAcc<'p> {
    pub(crate) fn new(group: &'p [PhysExpr], aggs: &'p [AggSpec]) -> GroupAcc<'p> {
        GroupAcc {
            group,
            aggs,
            groups: FxHashMap::default(),
            grand: if group.is_empty() {
                Some(fresh_state(aggs))
            } else {
                None
            },
            all_plain_counts: group.is_empty()
                && aggs
                    .iter()
                    .all(|a| matches!(a.func, AggFunc::Count) && a.arg.is_none() && !a.distinct),
            saw_input: false,
        }
    }

    /// Fold one input batch into the per-group states.
    pub(crate) fn fold(&mut self, batch: &RowBatch, outer: &OuterCtx) -> Result<()> {
        self.saw_input = true;
        if let Some(state) = self.grand.as_mut() {
            if self.all_plain_counts {
                for acc in &mut state.accs {
                    if let Acc::Count(n) = acc {
                        *n += batch.len() as i64;
                    }
                }
            } else {
                for row in batch.iter() {
                    update_state(state, self.aggs, row, outer)?;
                }
            }
        } else {
            for row in batch.iter() {
                let mut key = Vec::with_capacity(self.group.len());
                for g in self.group {
                    key.push(eval(g, row, outer, &[])?);
                }
                let state = match self.groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(fresh_state(self.aggs))
                    }
                };
                update_state(state, self.aggs, row, outer)?;
            }
        }
        Ok(())
    }

    /// The accumulated per-group states plus whether any input arrived.
    pub(crate) fn finish(self) -> (FxHashMap<Vec<Value>, GroupState>, bool) {
        let mut groups = self.groups;
        if let Some(state) = self.grand {
            if self.saw_input {
                groups.insert(Vec::new(), state);
            }
        }
        (groups, self.saw_input)
    }
}

/// Merge a worker's partial group state into the final one. DISTINCT
/// aggregates union the seen-value sets and rebuild the accumulator from
/// the union — folding the two partial accumulators directly would
/// double-count values both workers saw.
pub(crate) fn merge_group_state(
    into: &mut GroupState,
    mut from: GroupState,
    aggs: &[AggSpec],
) -> Result<()> {
    for (i, spec) in aggs.iter().enumerate() {
        if spec.distinct {
            let mut merged = into.distinct_seen[i].take().unwrap_or_default();
            if let Some(theirs) = from.distinct_seen[i].take() {
                merged.extend(theirs);
            }
            let mut acc = Acc::new(spec.func);
            for v in &merged {
                acc.update(Some(v))?;
            }
            into.accs[i] = acc;
            into.distinct_seen[i] = Some(merged);
        } else {
            into.accs[i].merge(&from.accs[i]);
        }
    }
    Ok(())
}

/// Final aggregation step shared by the serial and parallel paths: the
/// empty-input grand-total row (COUNT = 0, SUM = NULL, ...), HAVING over
/// [group values] with agg slots, the output expressions, and the
/// deterministic result sort.
pub(crate) fn finalize_groups(
    mut groups: FxHashMap<Vec<Value>, GroupState>,
    saw_input: bool,
    group_is_empty: bool,
    aggs: &[AggSpec],
    having: &[PhysExpr],
    output: &[PhysExpr],
    outer: &OuterCtx,
) -> Result<Vec<Row>> {
    if groups.is_empty() && group_is_empty && !saw_input {
        groups.insert(Vec::new(), fresh_state(aggs));
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, state) in groups {
        let agg_vals: Vec<Value> = state.accs.iter().map(|a| a.finish()).collect();
        let mut ok = true;
        for h in having {
            if !truthy(&eval(h, &key, outer, &agg_vals)?) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let mut out = Vec::with_capacity(output.len());
        for e in output {
            out.push(eval(e, &key, outer, &agg_vals)?);
        }
        rows.push(out);
    }
    // Deterministic order for tests: sort rows by value.
    rows.sort();
    Ok(rows)
}

struct HashAggregateOp {
    input: Box<dyn Operator>,
    group: Vec<PhysExpr>,
    aggs: Vec<AggSpec>,
    having: Vec<PhysExpr>,
    output: Vec<PhysExpr>,
    results: Option<Vec<Row>>,
    idx: usize,
}

impl HashAggregateOp {
    /// Consume the whole input (batch-at-a-time) and compute the grouped
    /// aggregate rows.
    fn materialize(&mut self, rt: &mut Runtime<'_>) -> Result<Vec<Row>> {
        let mut acc = GroupAcc::new(&self.group, &self.aggs);
        while let Some(batch) = self.input.next_batch(rt)? {
            acc.fold(&batch, &rt.outer)?;
        }
        let (groups, saw_input) = acc.finish();
        finalize_groups(
            groups,
            saw_input,
            self.group.is_empty(),
            &self.aggs,
            &self.having,
            &self.output,
            &rt.outer,
        )
    }
}

impl Operator for HashAggregateOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.results.is_none() {
            let rows = self.materialize(rt)?;
            self.results = Some(rows);
        }
        let rows = self.results.as_ref().unwrap();
        if self.idx >= rows.len() {
            return Ok(None);
        }
        let end = (self.idx + rt.batch_size).min(rows.len());
        let batch = RowBatch::from_rows(rows[self.idx..end].to_vec());
        self.idx = end;
        Ok(Some(batch))
    }
}

struct HashDistinctOp {
    input: Box<dyn Operator>,
    seen: FxHashSet<Vec<Value>>,
}

impl Operator for HashDistinctOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        while let Some(mut batch) = self.input.next_batch(rt)? {
            let mut keep = Vec::with_capacity(batch.len());
            for row in batch.iter() {
                keep.push(self.seen.insert(row.clone()));
            }
            batch.retain_indices(&keep);
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

struct UnionAllOp {
    inputs: Vec<Box<dyn Operator>>,
    idx: usize,
}

impl Operator for UnionAllOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        while self.idx < self.inputs.len() {
            if let Some(batch) = self.inputs[self.idx].next_batch(rt)? {
                return Ok(Some(batch));
            }
            self.idx += 1;
        }
        Ok(None)
    }
}

struct SortOp {
    input: Box<dyn Operator>,
    specs: Vec<xnf_plan::SortSpec>,
    buf: Option<Vec<Row>>,
    idx: usize,
}

impl Operator for SortOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.buf.is_none() {
            let mut rows = drain(self.input.as_mut(), rt)?;
            let specs = self.specs.clone();
            rows.sort_by(|a, b| {
                for s in &specs {
                    let ord = a[s.col].total_cmp(&b[s.col]);
                    let ord = if s.desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.buf = Some(rows);
        }
        let rows = self.buf.as_ref().unwrap();
        if self.idx >= rows.len() {
            return Ok(None);
        }
        let end = (self.idx + rt.batch_size).min(rows.len());
        let batch = RowBatch::from_rows(rows[self.idx..end].to_vec());
        self.idx = end;
        Ok(Some(batch))
    }
}

struct LimitOp {
    input: Box<dyn Operator>,
    n: u64,
    taken: u64,
}

impl Operator for LimitOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.taken >= self.n {
            return Ok(None);
        }
        match self.input.next_batch(rt)? {
            None => Ok(None),
            Some(mut batch) => {
                let remaining = (self.n - self.taken) as usize;
                batch.truncate(remaining);
                self.taken += batch.len() as u64;
                Ok(Some(batch))
            }
        }
    }
}
