//! End-to-end execution tests: parse → QGM → rewrite → plan → execute on
//! the paper's Fig. 1 database.

use std::sync::Arc;

use xnf_plan::{plan_query, PlanOptions};
use xnf_qgm::{build_select_query, build_xnf_query, OutputKind};
use xnf_rewrite::{rewrite, RewriteOptions};
use xnf_sql::{parse_select, parse_xnf};
use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema, Tuple, Value};

use crate::engine::{execute_qep, QueryResult};

/// The Fig. 1 instance: two ARC departments (d1, d2) plus one elsewhere;
/// employees e1..e4 (e4 outside ARC); projects p1..p2; skills s1..s5 with
/// s2 attached to nobody (the paper's unreachable-skill example).
fn fig1_db() -> Catalog {
    let cat = Catalog::new(Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 256)));
    let dept = cat
        .create_table(
            "DEPT",
            Schema::from_pairs(&[
                ("dno", DataType::Int),
                ("dname", DataType::Str),
                ("loc", DataType::Str),
            ]),
        )
        .unwrap();
    let emp = cat
        .create_table(
            "EMP",
            Schema::from_pairs(&[
                ("eno", DataType::Int),
                ("ename", DataType::Str),
                ("edno", DataType::Int),
                ("sal", DataType::Double),
            ]),
        )
        .unwrap();
    let proj = cat
        .create_table(
            "PROJ",
            Schema::from_pairs(&[
                ("pno", DataType::Int),
                ("pname", DataType::Str),
                ("pdno", DataType::Int),
            ]),
        )
        .unwrap();
    let skills = cat
        .create_table(
            "SKILLS",
            Schema::from_pairs(&[("sno", DataType::Int), ("sname", DataType::Str)]),
        )
        .unwrap();
    let es = cat
        .create_table(
            "EMPSKILLS",
            Schema::from_pairs(&[("eseno", DataType::Int), ("essno", DataType::Int)]),
        )
        .unwrap();
    let ps = cat
        .create_table(
            "PROJSKILLS",
            Schema::from_pairs(&[("pspno", DataType::Int), ("pssno", DataType::Int)]),
        )
        .unwrap();

    let rows: Vec<(i64, &str, &str)> =
        vec![(1, "tools", "ARC"), (2, "db", "ARC"), (3, "apps", "HDC")];
    for (dno, dname, loc) in rows {
        dept.insert(&Tuple::new(vec![dno.into(), dname.into(), loc.into()]))
            .unwrap();
    }
    // e1,e2 in d1; e3 in d2; e4 in d3 (not ARC).
    for (eno, ename, edno, sal) in [
        (1, "e1", 1, 100.0),
        (2, "e2", 1, 120.0),
        (3, "e3", 2, 90.0),
        (4, "e4", 3, 80.0),
    ] {
        emp.insert(&Tuple::new(vec![
            Value::Int(eno),
            ename.into(),
            Value::Int(edno),
            Value::Double(sal),
        ]))
        .unwrap();
    }
    // p1 in d1, p2 in d2, p3 in d3.
    for (pno, pname, pdno) in [(1, "p1", 1), (2, "p2", 2), (3, "p3", 3)] {
        proj.insert(&Tuple::new(vec![
            Value::Int(pno),
            pname.into(),
            Value::Int(pdno),
        ]))
        .unwrap();
    }
    for (sno, sname) in [(1, "s1"), (2, "s2"), (3, "s3"), (4, "s4"), (5, "s5")] {
        skills
            .insert(&Tuple::new(vec![Value::Int(sno), sname.into()]))
            .unwrap();
    }
    // Employee skills: e1->s1, e2->s3, e3->s3 (shared), e4->s2? No: s2 must
    // stay unreachable, so e4 (non-ARC) holds s2's only link.
    for (e, s) in [(1, 1), (2, 3), (3, 3), (4, 2)] {
        es.insert(&Tuple::new(vec![Value::Int(e), Value::Int(s)]))
            .unwrap();
    }
    // Project skills: p1->s4, p2->s3 (shared with employees), p2->s5.
    for (p, s) in [(1, 4), (2, 3), (2, 5)] {
        ps.insert(&Tuple::new(vec![Value::Int(p), Value::Int(s)]))
            .unwrap();
    }
    for t in ["DEPT", "EMP", "PROJ", "SKILLS", "EMPSKILLS", "PROJSKILLS"] {
        cat.table(t).unwrap().analyze().unwrap();
    }
    cat
}

pub fn run_sql(cat: &Catalog, sql: &str) -> QueryResult {
    run_sql_opts(cat, sql, RewriteOptions::default(), PlanOptions::default())
}

pub fn run_sql_opts(
    cat: &Catalog,
    sql: &str,
    ropts: RewriteOptions,
    popts: PlanOptions,
) -> QueryResult {
    let ast = parse_select(sql).unwrap();
    let mut g = build_select_query(cat, &ast).unwrap();
    rewrite(&mut g, ropts).unwrap();
    let qep = plan_query(cat, &g, popts).unwrap();
    execute_qep(cat, &qep).unwrap()
}

pub fn run_xnf(cat: &Catalog, text: &str) -> QueryResult {
    let ast = parse_xnf(text).unwrap();
    let mut g = build_xnf_query(cat, &ast).unwrap();
    rewrite(&mut g, RewriteOptions::default()).unwrap();
    let qep = plan_query(cat, &g, PlanOptions::default()).unwrap();
    execute_qep(cat, &qep).unwrap()
}

fn ints(result: &QueryResult, col: usize) -> Vec<i64> {
    let mut v: Vec<i64> = result
        .try_table()
        .unwrap()
        .rows
        .iter()
        .map(|r| r[col].as_int().unwrap())
        .collect();
    v.sort();
    v
}

#[test]
fn select_with_filter() {
    let cat = fig1_db();
    let r = run_sql(&cat, "SELECT dno, dname FROM DEPT WHERE loc = 'ARC'");
    assert_eq!(ints(&r, 0), vec![1, 2]);
}

#[test]
fn row_at_a_time_chunking_matches_default() {
    // batch_size = 1 degenerates the pipeline to row-at-a-time delivery;
    // results must be identical and granularity stats must reflect it.
    let cat = fig1_db();
    for sql in [
        "SELECT dno, dname FROM DEPT WHERE loc = 'ARC'",
        "SELECT e.eno FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
        "SELECT edno, COUNT(*) FROM EMP GROUP BY edno",
    ] {
        let a = run_sql(&cat, sql);
        let b = run_sql_opts(
            &cat,
            sql,
            RewriteOptions::default(),
            PlanOptions {
                batch_size: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            a.try_table().unwrap().rows,
            b.try_table().unwrap().rows,
            "{sql}"
        );
        assert_eq!(b.stats.rows_emitted, a.stats.rows_emitted, "{sql}");
        assert_eq!(
            b.stats.batches_emitted, b.stats.rows_emitted,
            "one-row batches: {sql}"
        );
        assert!(b.stats.peak_batch_rows <= 1, "{sql}");
    }
}

#[test]
fn stats_report_pipeline_granularity() {
    let cat = fig1_db();
    let r = run_sql(&cat, "SELECT eno FROM EMP");
    assert_eq!(r.stats.rows_emitted, 4);
    assert!(r.stats.batches_emitted >= 1);
    assert!(r.stats.peak_batch_rows >= 1 && r.stats.peak_batch_rows <= 1024);
    // CO extraction delivers several streams (plus shared table queues),
    // each contributing sink batches.
    let co = run_xnf(&cat, DEPS_ARC);
    assert!(co.stats.batches_emitted >= co.streams.len() as u64);
}

#[test]
fn join_query() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT e.eno FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
    );
    assert_eq!(ints(&r, 0), vec![1, 2, 3]);
}

#[test]
fn exists_rewritten_equals_naive() {
    let cat = fig1_db();
    let sql = "SELECT e.eno FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)";
    let fast = run_sql(&cat, sql);
    let naive = run_sql_opts(
        &cat,
        sql,
        RewriteOptions {
            e_to_f: false,
            simplify: true,
        },
        PlanOptions::default(),
    );
    assert_eq!(ints(&fast, 0), vec![1, 2, 3]);
    assert_eq!(ints(&naive, 0), vec![1, 2, 3]);
    assert!(
        naive.stats.subquery_invocations >= 4,
        "naive mode runs per-tuple subqueries"
    );
    assert_eq!(
        fast.stats.subquery_invocations, 0,
        "rewritten mode is set-oriented"
    );
}

#[test]
fn not_exists_antijoin() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT d.dno FROM DEPT d WHERE NOT EXISTS (SELECT 1 FROM PROJ p WHERE p.pdno = d.dno)",
    );
    assert_eq!(ints(&r, 0), Vec::<i64>::new(), "every dept has a project");
    let r = run_sql(
        &cat,
        "SELECT s.sno FROM SKILLS s WHERE NOT EXISTS (SELECT 1 FROM EMPSKILLS e WHERE e.essno = s.sno)",
    );
    assert_eq!(ints(&r, 0), vec![4, 5]);
}

#[test]
fn in_subquery() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT ename FROM EMP WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC') ORDER BY ename",
    );
    let names: Vec<&str> = r
        .try_table()
        .unwrap()
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.as_str(),
            _ => panic!(),
        })
        .collect();
    assert_eq!(names, vec!["e1", "e2", "e3"]);
}

#[test]
fn group_by_having() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT edno, COUNT(*) AS n, AVG(sal) AS avgsal FROM EMP GROUP BY edno HAVING COUNT(*) > 1",
    );
    assert_eq!(r.try_table().unwrap().rows.len(), 1);
    let row = &r.try_table().unwrap().rows[0];
    assert_eq!(row[0], Value::Int(1));
    assert_eq!(row[1], Value::Int(2));
    assert_eq!(row[2], Value::Double(110.0));
}

#[test]
fn aggregates_without_group() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT COUNT(*), MIN(sal), MAX(sal), SUM(eno) FROM EMP",
    );
    let row = &r.try_table().unwrap().rows[0];
    assert_eq!(row[0], Value::Int(4));
    assert_eq!(row[1], Value::Double(80.0));
    assert_eq!(row[2], Value::Double(120.0));
    assert_eq!(row[3], Value::Int(10));
    // Empty input: COUNT 0, MIN NULL.
    let r = run_sql(&cat, "SELECT COUNT(*), MIN(sal) FROM EMP WHERE eno > 100");
    assert_eq!(r.try_table().unwrap().rows[0][0], Value::Int(0));
    assert!(r.try_table().unwrap().rows[0][1].is_null());
}

#[test]
fn count_distinct() {
    let cat = fig1_db();
    let r = run_sql(&cat, "SELECT COUNT(DISTINCT essno) FROM EMPSKILLS");
    assert_eq!(r.try_table().unwrap().rows[0][0], Value::Int(3));
}

#[test]
fn union_and_union_all() {
    let cat = fig1_db();
    let r = run_sql(
        &cat,
        "SELECT essno FROM EMPSKILLS UNION SELECT pssno FROM PROJSKILLS",
    );
    assert_eq!(ints(&r, 0), vec![1, 2, 3, 4, 5]);
    let r = run_sql(
        &cat,
        "SELECT essno FROM EMPSKILLS UNION ALL SELECT pssno FROM PROJSKILLS",
    );
    assert_eq!(r.try_table().unwrap().rows.len(), 7);
}

#[test]
fn order_by_and_limit() {
    let cat = fig1_db();
    let r = run_sql(&cat, "SELECT ename, sal FROM EMP ORDER BY sal DESC LIMIT 2");
    let names: Vec<String> = r
        .try_table()
        .unwrap()
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["e2", "e1"]);
}

#[test]
fn or_of_exists_multipath() {
    let cat = fig1_db();
    // Skills reachable via ARC employees or ARC projects (the xskills
    // derivation, expressed in plain SQL).
    let r = run_sql(
        &cat,
        "SELECT s.sno FROM SKILLS s WHERE
           EXISTS (SELECT 1 FROM EMPSKILLS es, EMP e, DEPT d
                   WHERE es.essno = s.sno AND es.eseno = e.eno AND e.edno = d.dno AND d.loc = 'ARC')
           OR EXISTS (SELECT 1 FROM PROJSKILLS ps, PROJ p, DEPT d
                   WHERE ps.pssno = s.sno AND ps.pspno = p.pno AND p.pdno = d.dno AND d.loc = 'ARC')",
    );
    // s2 is only held by e4 (non-ARC): unreachable. s1,s3,s4,s5 reachable.
    assert_eq!(ints(&r, 0), vec![1, 3, 4, 5]);
}

#[test]
fn index_scan_matches_seq_scan() {
    let cat = fig1_db();
    let no_index = run_sql(&cat, "SELECT dno FROM DEPT WHERE loc = 'ARC'");
    cat.table("DEPT")
        .unwrap()
        .create_index("dept_loc", vec![2], false)
        .unwrap();
    let with_index = run_sql(&cat, "SELECT dno FROM DEPT WHERE loc = 'ARC'");
    assert_eq!(ints(&no_index, 0), ints(&with_index, 0));
}

// ---------------------------------------------------------------------------
// XNF end-to-end: the deps_ARC composite object of Fig. 1
// ---------------------------------------------------------------------------

const DEPS_ARC: &str = "\
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)
TAKE *";

#[test]
fn deps_arc_composite_object() {
    let cat = fig1_db();
    let r = run_xnf(&cat, DEPS_ARC);
    assert_eq!(r.streams.len(), 8);

    let get = |name: &str| r.stream(name).unwrap();

    // Nodes: reachability prunes non-ARC tuples and the orphan skill s2.
    let xdept: Vec<i64> = {
        let mut v: Vec<i64> = get("xdept")
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        v.sort();
        v
    };
    assert_eq!(xdept, vec![1, 2]);

    let mut xemp: Vec<i64> = get("xemp")
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    xemp.sort();
    assert_eq!(xemp, vec![1, 2, 3], "e4 is not reachable (non-ARC dept)");

    let mut xproj: Vec<i64> = get("xproj")
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    xproj.sort();
    assert_eq!(xproj, vec![1, 2]);

    let mut xskills: Vec<i64> = get("xskills")
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    xskills.sort();
    assert_eq!(
        xskills,
        vec![1, 3, 4, 5],
        "s2 is unreachable; s3 shared once"
    );

    // Connections: employment edges = (dept rowid, emp rowid) pairs.
    let employment = get("employment");
    assert!(matches!(employment.kind, OutputKind::Connection { .. }));
    assert_eq!(employment.rows.len(), 3);
    // Resolve rowids back to keys.
    let dept_rows = &get("xdept").rows;
    let emp_rows = &get("xemp").rows;
    let mut edges: Vec<(i64, i64)> = employment
        .rows
        .iter()
        .map(|r| {
            let d = dept_rows[r[0].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            let e = emp_rows[r[1].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            (d, e)
        })
        .collect();
    edges.sort();
    assert_eq!(edges, vec![(1, 1), (1, 2), (2, 3)]);

    // empproperty edges: e1->s1, e2->s3, e3->s3 (s3 shared by two parents).
    let empprop = get("empproperty");
    let skill_rows = &get("xskills").rows;
    let mut sedges: Vec<(i64, i64)> = empprop
        .rows
        .iter()
        .map(|r| {
            let e = emp_rows[r[0].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            let s = skill_rows[r[1].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            (e, s)
        })
        .collect();
    sedges.sort();
    assert_eq!(sedges, vec![(1, 1), (2, 3), (3, 3)]);

    // projproperty edges: p1->s4, p2->s3, p2->s5.
    let projprop = get("projproperty");
    let proj_rows = &get("xproj").rows;
    let mut pedges: Vec<(i64, i64)> = projprop
        .rows
        .iter()
        .map(|r| {
            let p = proj_rows[r[0].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            let s = skill_rows[r[1].as_int().unwrap() as usize][0]
                .as_int()
                .unwrap();
            (p, s)
        })
        .collect();
    pedges.sort();
    assert_eq!(pedges, vec![(1, 4), (2, 3), (2, 5)]);
}

#[test]
fn xnf_take_projection() {
    let cat = fig1_db();
    let r = run_xnf(
        &cat,
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE xdept(dname), employment, xemp(eno, ename)",
    );
    let xdept = r.stream("xdept").unwrap();
    assert_eq!(xdept.columns, vec!["dname"]);
    assert_eq!(xdept.rows.len(), 2);
    let xemp = r.stream("xemp").unwrap();
    assert_eq!(xemp.columns, vec!["eno", "ename"]);
    assert_eq!(xemp.rows.len(), 3);
}

#[test]
fn xnf_restriction() {
    let cat = fig1_db();
    let r = run_xnf(
        &cat,
        "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
                xemp AS EMP,
                employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
         TAKE * WHERE xemp.sal > 100",
    );
    let mut xemp: Vec<i64> = r
        .stream("xemp")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    xemp.sort();
    assert_eq!(xemp, vec![2], "only e2 earns more than 100");
    assert_eq!(r.stream("employment").unwrap().rows.len(), 1);
}

#[test]
fn xnf_matches_separate_sql_queries() {
    // The CO component tables must equal their single-query SQL derivations
    // (Fig. 6): same rows, one multi-output query vs. several queries.
    let cat = fig1_db();
    let co = run_xnf(&cat, DEPS_ARC);

    let sql_xemp = run_sql(
        &cat,
        "SELECT e.eno FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    );
    let mut co_xemp: Vec<i64> = co
        .stream("xemp")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    co_xemp.sort();
    assert_eq!(co_xemp, ints(&sql_xemp, 0));

    let sql_xskills = run_sql(
        &cat,
        "SELECT s.sno FROM SKILLS s WHERE
           EXISTS (SELECT 1 FROM EMPSKILLS es, EMP e, DEPT d
                   WHERE es.essno = s.sno AND es.eseno = e.eno AND e.edno = d.dno AND d.loc = 'ARC')
           OR EXISTS (SELECT 1 FROM PROJSKILLS ps, PROJ p, DEPT d
                   WHERE ps.pssno = s.sno AND ps.pspno = p.pno AND p.pdno = d.dno AND d.loc = 'ARC')",
    );
    let mut co_sk: Vec<i64> = co
        .stream("xskills")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    co_sk.sort();
    assert_eq!(co_sk, ints(&sql_xskills, 0));
}

/// A multi-page EMP/DEPT instance big enough for morsel scheduling to do
/// real work (EMP spans several heap pages).
fn big_db() -> Catalog {
    let cat = Catalog::new(Arc::new(BufferPool::new(
        Arc::new(DiskManager::new()),
        1024,
    )));
    let dept = cat
        .create_table(
            "DEPT",
            Schema::from_pairs(&[
                ("dno", DataType::Int),
                ("dname", DataType::Str),
                ("loc", DataType::Str),
            ]),
        )
        .unwrap();
    let emp = cat
        .create_table(
            "EMP",
            Schema::from_pairs(&[
                ("eno", DataType::Int),
                ("ename", DataType::Str),
                ("edno", DataType::Int),
                ("sal", DataType::Double),
            ]),
        )
        .unwrap();
    for d in 0..16 {
        let loc = if d % 2 == 0 { "ARC" } else { "HDC" };
        dept.insert(&Tuple::new(vec![
            Value::Int(d),
            format!("dept{d}").into(),
            loc.into(),
        ]))
        .unwrap();
    }
    for e in 0..3000i64 {
        emp.insert(&Tuple::new(vec![
            Value::Int(e),
            format!("emp{e}").into(),
            Value::Int(e % 16),
            Value::Double((e % 331) as f64),
        ]))
        .unwrap();
    }
    cat
}

fn parallel_popts(dop: usize) -> PlanOptions {
    PlanOptions {
        dop,
        parallel_min_pages: 1,
        // Exercise real dop-2/4 plans even on a single-core test host.
        allow_oversubscribe: true,
        ..Default::default()
    }
}

#[test]
fn parallel_scan_matches_serial_byte_for_byte() {
    let cat = big_db();
    assert!(
        cat.table("EMP").unwrap().page_count() >= 4,
        "fixture must span several pages"
    );
    let sql = "SELECT eno, ename FROM EMP WHERE sal > 200";
    let serial = run_sql_opts(
        &cat,
        sql,
        RewriteOptions::default(),
        PlanOptions {
            dop: 1,
            ..Default::default()
        },
    );
    for dop in [2, 4] {
        let par = run_sql_opts(&cat, sql, RewriteOptions::default(), parallel_popts(dop));
        // Same rows in the same order: the gather's morsel merge restores
        // serial page order exactly.
        assert_eq!(
            serial.try_table().unwrap().rows,
            par.try_table().unwrap().rows,
            "dop={dop}"
        );
        assert!(par.stats.parallel_regions >= 1, "dop={dop}");
        assert_eq!(par.stats.parallel_workers, dop as u64, "dop={dop}");
        assert!(
            par.stats.morsels_dispatched >= cat.table("EMP").unwrap().page_count() as u64,
            "dop={dop}"
        );
        assert_eq!(par.stats.rows_emitted, serial.stats.rows_emitted);
    }
}

#[test]
fn parallel_join_matches_serial() {
    let cat = big_db();
    let sql = "SELECT e.eno, d.dname FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'";
    let serial = run_sql_opts(
        &cat,
        sql,
        RewriteOptions::default(),
        PlanOptions {
            dop: 1,
            ..Default::default()
        },
    );
    for dop in [2, 4] {
        let par = run_sql_opts(&cat, sql, RewriteOptions::default(), parallel_popts(dop));
        assert_eq!(
            serial.try_table().unwrap().rows,
            par.try_table().unwrap().rows,
            "dop={dop}"
        );
    }
}

#[test]
fn parallel_aggregate_matches_serial() {
    let cat = big_db();
    // Exact aggregates only: COUNT/MIN/MAX and int comparisons are
    // associative, so partial→final merging is bit-exact.
    for sql in [
        "SELECT edno, COUNT(*) FROM EMP GROUP BY edno",
        "SELECT edno, MIN(eno), MAX(eno) FROM EMP GROUP BY edno HAVING COUNT(*) > 10",
        "SELECT COUNT(*) FROM EMP WHERE sal > 100",
        "SELECT edno, COUNT(DISTINCT sal) FROM EMP GROUP BY edno",
    ] {
        let serial = run_sql_opts(
            &cat,
            sql,
            RewriteOptions::default(),
            PlanOptions {
                dop: 1,
                ..Default::default()
            },
        );
        for dop in [2, 4] {
            let par = run_sql_opts(&cat, sql, RewriteOptions::default(), parallel_popts(dop));
            assert_eq!(
                serial.try_table().unwrap().rows,
                par.try_table().unwrap().rows,
                "{sql} dop={dop}"
            );
        }
    }
}

#[test]
fn parallel_empty_result_and_empty_table() {
    let cat = big_db();
    let r = run_sql_opts(
        &cat,
        "SELECT eno FROM EMP WHERE sal > 100000",
        RewriteOptions::default(),
        parallel_popts(4),
    );
    assert!(r.try_table().unwrap().rows.is_empty());
    // Grand aggregate over an empty selection still yields its one row.
    let r = run_sql_opts(
        &cat,
        "SELECT COUNT(*) FROM EMP WHERE sal > 100000",
        RewriteOptions::default(),
        parallel_popts(4),
    );
    assert_eq!(r.try_table().unwrap().rows, vec![vec![Value::Int(0)]]);
}
