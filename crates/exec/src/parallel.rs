//! Morsel-driven parallel region execution.
//!
//! A *parallel region* is the subtree under an `ExchangeGather` or
//! `ParallelHashAggregate` plan node: a worker pipeline of parallel scans,
//! fused filters/projections and partitioned join probes. Executing a
//! region:
//!
//! 1. **Prepare** (coordinator): walk the pipeline; give every
//!    `ParallelSeqScan` a shared [`MorselDispenser`] and execute every
//!    `ParallelHashJoin`'s build side — the coordinator drains the build
//!    input *in serial row order* and routes each keyed row to one of
//!    `dop` partition-builder threads (`PartitionedJoinTable`), so each
//!    partition's bucket insertion order matches the serial build exactly.
//! 2. **Run** (workers): `dop` threads each instantiate their own copy of
//!    the pipeline over a cloned MVCC snapshot and pull page morsels from
//!    the shared dispensers until the table is exhausted.
//! 3. **Merge** (coordinator): gather regions tag every worker batch with
//!    the page index it came from and K-way-merge the per-worker streams
//!    by that tag — dispensers hand out pages in increasing order, so each
//!    worker's stream is already sorted and the merged output has exactly
//!    the serial plan's row order. Aggregate regions instead merge the
//!    workers' partial group tables (partial→final aggregation) and sort
//!    the finished rows like the serial operator does.
//!
//! Worker `ExecStats` fold into the coordinator's via the existing
//! [`ExecStats::merge`]. Region results are byte-identical to the serial
//! plan's except for SUM/AVG over doubles, where morsel assignment decides
//! floating-point addition order (non-associative; see docs/EXPLAIN.md).
//!
//! Threads never outlive a region: `Runtime` borrows the catalog, so the
//! whole region runs to completion inside a [`std::thread::scope`] on the
//! root's first pull and streams its buffered result afterwards. The
//! planner keeps streaming `Limit`s serial, so no early-out is lost.

use std::cell::Cell;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use xnf_plan::{AggSpec, PhysExpr, PhysPlan};
use xnf_storage::{MorselDispenser, Table, Value};

use crate::batch::RowBatch;
use crate::error::{ExecError, Result};
use crate::eval::{filter_batch, CompiledPreds, Row};
use crate::hash::{FxHashMap, FxHasher};
use crate::ops::{
    build_operator, finalize_groups, key_into, key_of, merge_group_state, ExecStats, FilterOp,
    GroupAcc, GroupState, Operator, ProjectOp, Runtime,
};

/// Rows per chunk sent to a partition-builder thread.
const PARTITION_CHUNK: usize = 256;
/// Bounded channel depth (in batches/chunks) between threads.
const CHANNEL_DEPTH: usize = 4;

/// Route and probe with the same hash everywhere: `Vec<Value>` hashes like
/// `[Value]`, so build-side routing and probe-side lookup always agree.
fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// One partition's build map, and one keyed-row chunk in flight to it.
type PartitionMap = FxHashMap<Vec<Value>, Vec<Row>>;
type KeyedChunk = Vec<(Vec<Value>, Row)>;

/// The build side of a parallel hash join: `dop` disjoint hash partitions,
/// each an ordinary key → rows table. Shared read-only by all probe
/// workers.
pub(crate) struct PartitionedJoinTable {
    parts: Vec<PartitionMap>,
}

impl PartitionedJoinTable {
    fn get(&self, key: &[Value]) -> Option<&[Row]> {
        let p = (hash_key(key) as usize) % self.parts.len();
        self.parts[p].get(key).map(|v| v.as_slice())
    }
}

/// Drain the build input on the coordinator (serial row order) and
/// hash-partition its rows across `dop` builder threads. Each builder owns
/// one partition map, so insertion order within every bucket equals the
/// serial [`JoinTable`](crate::ops) build — join match order is preserved.
fn build_partitioned(
    rt: &mut Runtime<'_>,
    input: &PhysPlan,
    keys: &[PhysExpr],
    dop: usize,
) -> Result<PartitionedJoinTable> {
    let nparts = dop.max(1);
    let mut op = build_operator(input);
    let mut feed_err: Option<ExecError> = None;
    let parts: Vec<PartitionMap> = std::thread::scope(|scope| {
        let mut txs: Vec<SyncSender<KeyedChunk>> = Vec::with_capacity(nparts);
        let mut handles = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let (tx, rx) = sync_channel::<KeyedChunk>(CHANNEL_DEPTH);
            txs.push(tx);
            handles.push(scope.spawn(move || {
                let mut map = PartitionMap::default();
                while let Ok(chunk) = rx.recv() {
                    for (key, row) in chunk {
                        map.entry(key).or_default().push(row);
                    }
                }
                map
            }));
        }
        let mut bufs: Vec<KeyedChunk> = (0..nparts).map(|_| Vec::new()).collect();
        let feed = (|| -> Result<()> {
            while let Some(batch) = op.next_batch(rt)? {
                for row in batch {
                    // NULL keys never match: drop them here, exactly like
                    // the serial build.
                    let Some(key) = key_of(keys, &row, &rt.outer)? else {
                        continue;
                    };
                    let p = (hash_key(&key) as usize) % nparts;
                    bufs[p].push((key, row));
                    if bufs[p].len() >= PARTITION_CHUNK {
                        let _ = txs[p].send(std::mem::take(&mut bufs[p]));
                    }
                }
            }
            for (p, buf) in bufs.iter_mut().enumerate() {
                if !buf.is_empty() {
                    let _ = txs[p].send(std::mem::take(buf));
                }
            }
            Ok(())
        })();
        feed_err = feed.err();
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("partition builder panicked"))
            .collect()
    });
    match feed_err {
        Some(e) => Err(e),
        None => Ok(PartitionedJoinTable { parts }),
    }
}

/// Resources a region's workers share, collected by the coordinator before
/// the workers spawn: one morsel dispenser per parallel scan and one
/// partitioned build table per parallel join, in plan traversal order
/// (workers rebuild the identical tree, so the orders agree).
struct RegionResources {
    dispensers: Vec<Arc<MorselDispenser>>,
    tables: Vec<Arc<PartitionedJoinTable>>,
}

fn prepare_region(rt: &mut Runtime<'_>, pipeline: &PhysPlan) -> Result<RegionResources> {
    let mut res = RegionResources {
        dispensers: Vec::new(),
        tables: Vec::new(),
    };
    collect_resources(rt, pipeline, &mut res)?;
    Ok(res)
}

fn collect_resources(
    rt: &mut Runtime<'_>,
    plan: &PhysPlan,
    res: &mut RegionResources,
) -> Result<()> {
    match plan {
        PhysPlan::ParallelSeqScan { .. } => {
            res.dispensers.push(Arc::new(MorselDispenser::new()));
            Ok(())
        }
        PhysPlan::Filter { input, .. } | PhysPlan::Project { input, .. } => {
            collect_resources(rt, input, res)
        }
        PhysPlan::ParallelHashJoin { probe, build, .. } => {
            // Probe first: traversal order must match the worker builder.
            collect_resources(rt, probe, res)?;
            let PhysPlan::ExchangeHashPartition { input, keys, dop } = build.as_ref() else {
                return Err(ExecError::Type(
                    "ParallelHashJoin build side must be an ExchangeHashPartition".into(),
                ));
            };
            let table = build_partitioned(rt, input, keys, *dop)?;
            res.tables.push(Arc::new(table));
            Ok(())
        }
        other => Err(ExecError::Type(format!(
            "unexpected operator in parallel worker pipeline: {}",
            other.explain().lines().next().unwrap_or("?")
        ))),
    }
}

/// Per-worker state threaded through [`build_worker_pipeline`].
struct WorkerCtx<'r> {
    res: &'r RegionResources,
    next_dispenser: usize,
    next_table: usize,
    /// The page index of the morsel the pipeline's scan is currently
    /// draining — the gather driver reads it after every root batch to tag
    /// the batch for the ordered merge. `Rc` because the whole pipeline
    /// lives on one worker thread.
    morsel: Rc<Cell<u64>>,
}

/// Instantiate one worker's copy of a region pipeline.
fn build_worker_pipeline(plan: &PhysPlan, ctx: &mut WorkerCtx<'_>) -> Result<Box<dyn Operator>> {
    match plan {
        PhysPlan::ParallelSeqScan { table, filter } => {
            let dispenser = Arc::clone(&ctx.res.dispensers[ctx.next_dispenser]);
            ctx.next_dispenser += 1;
            Ok(Box::new(ParallelSeqScanOp {
                table: table.clone(),
                filter: filter.clone(),
                dispenser,
                morsel: Rc::clone(&ctx.morsel),
                table_ref: None,
                queue: VecDeque::new(),
                done: false,
            }))
        }
        PhysPlan::Filter { input, preds } => Ok(Box::new(FilterOp {
            input: build_worker_pipeline(input, ctx)?,
            preds: preds.clone(),
        })),
        PhysPlan::Project { input, exprs } => Ok(Box::new(ProjectOp {
            input: build_worker_pipeline(input, ctx)?,
            exprs: exprs.clone(),
        })),
        PhysPlan::ParallelHashJoin {
            probe,
            probe_keys,
            residual,
            ..
        } => {
            let probe_op = build_worker_pipeline(probe, ctx)?;
            let table = Arc::clone(&ctx.res.tables[ctx.next_table]);
            ctx.next_table += 1;
            Ok(Box::new(ParallelProbeOp {
                probe: probe_op,
                keys: probe_keys.clone(),
                residual: residual.clone(),
                table,
                queue: VecDeque::new(),
            }))
        }
        other => Err(ExecError::Type(format!(
            "unexpected operator in parallel worker pipeline: {}",
            other.explain().lines().next().unwrap_or("?")
        ))),
    }
}

/// Worker-side morsel scan: claims page indices from the shared dispenser
/// and emits each page's surviving rows as one or more batches. Batches
/// never span morsels (unlike the serial scan's builder, which coalesces
/// across pages) — that invariant is what lets the gather stage order
/// batches by page index.
struct ParallelSeqScanOp {
    table: String,
    filter: Vec<PhysExpr>,
    dispenser: Arc<MorselDispenser>,
    morsel: Rc<Cell<u64>>,
    table_ref: Option<Arc<Table>>,
    queue: VecDeque<RowBatch>,
    done: bool,
}

impl Operator for ParallelSeqScanOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        loop {
            if let Some(batch) = self.queue.pop_front() {
                return Ok(Some(batch));
            }
            if self.done {
                return Ok(None);
            }
            if self.table_ref.is_none() {
                self.table_ref = Some(rt.catalog.table(&self.table)?);
            }
            let t = self.table_ref.as_ref().unwrap().clone();
            let compiled = CompiledPreds::compile(&self.filter);
            let idx = self.dispenser.claim();
            match t.scan_page_snapshot(idx, &rt.snapshot)? {
                None => self.done = true,
                Some((page, skipped)) => {
                    self.morsel.set(idx as u64);
                    rt.stats.rows_scanned += page.len() as u64;
                    rt.stats.rows_skipped_visibility += skipped;
                    rt.stats.morsels_dispatched += 1;
                    let mut rows: Vec<Row> = Vec::with_capacity(page.len());
                    for (_, tuple) in page {
                        if compiled.is_empty() || compiled.matches(&tuple.values, &rt.outer)? {
                            rows.push(tuple.values);
                        }
                    }
                    while rows.len() > rt.batch_size {
                        let tail = rows.split_off(rt.batch_size);
                        self.queue.push_back(RowBatch::from_rows(rows));
                        rows = tail;
                    }
                    if !rows.is_empty() {
                        self.queue.push_back(RowBatch::from_rows(rows));
                    }
                }
            }
        }
    }
}

/// Worker-side probe of a [`PartitionedJoinTable`]: hashes each probe
/// row's key to pick the partition and expands matches in build order.
/// Output chunks are never coalesced across probe batches, preserving the
/// batch↔morsel correspondence the gather merge orders by.
struct ParallelProbeOp {
    probe: Box<dyn Operator>,
    keys: Vec<PhysExpr>,
    residual: Vec<PhysExpr>,
    table: Arc<PartitionedJoinTable>,
    queue: VecDeque<RowBatch>,
}

impl Operator for ParallelProbeOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        let mut key = Vec::with_capacity(self.keys.len());
        loop {
            if let Some(batch) = self.queue.pop_front() {
                return Ok(Some(batch));
            }
            let Some(pbatch) = self.probe.next_batch(rt)? else {
                return Ok(None);
            };
            let mut out = RowBatch::with_capacity(0, rt.batch_size);
            for lrow in pbatch.iter() {
                if !key_into(&self.keys, lrow, &rt.outer, &mut key)? {
                    continue;
                }
                let Some(matches) = self.table.get(&key) else {
                    continue;
                };
                for rrow in matches {
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    out.push(combined);
                }
                if out.len() >= rt.batch_size {
                    filter_batch(&self.residual, &mut out, &rt.outer)?;
                    if !out.is_empty() {
                        self.queue.push_back(out);
                    }
                    out = RowBatch::with_capacity(0, rt.batch_size);
                }
            }
            filter_batch(&self.residual, &mut out, &rt.outer)?;
            if !out.is_empty() {
                self.queue.push_back(out);
            }
        }
    }
}

/// A worker-to-coordinator message in a gather region.
enum WorkerMsg {
    /// One output batch, tagged with the page index it derives from.
    Batch(u64, RowBatch),
    /// Worker finished; its stats fold into the coordinator's.
    Done(ExecStats),
    Fail(ExecError),
}

fn recv_next(
    rx: &Receiver<WorkerMsg>,
    stats: &mut ExecStats,
    err: &mut Option<ExecError>,
) -> Option<(u64, RowBatch)> {
    match rx.recv() {
        Ok(WorkerMsg::Batch(seq, batch)) => Some((seq, batch)),
        Ok(WorkerMsg::Done(s)) => {
            stats.merge(&s);
            None
        }
        Ok(WorkerMsg::Fail(e)) => {
            err.get_or_insert(e);
            None
        }
        Err(_) => None,
    }
}

/// A fresh worker runtime: same catalog, shared results, batch size and
/// parameter/correlation context as the coordinator, with every read
/// pinned to the coordinator's snapshot (snapshot-correct parallelism).
fn worker_runtime<'a>(rt: &Runtime<'a>) -> Runtime<'a> {
    let mut octx = rt.outer.clone();
    octx.set_visibility(Some(rt.snapshot.clone()));
    let mut wrt = Runtime::with_ctx(rt.catalog, octx);
    wrt.shared = rt.shared.clone();
    wrt.batch_size = rt.batch_size;
    wrt
}

/// Run a gather region to completion: `dop` workers over `pipeline`, then
/// a K-way merge of their seq-tagged streams back into serial row order.
pub(crate) fn run_gather_region(
    rt: &mut Runtime<'_>,
    pipeline: &PhysPlan,
    dop: usize,
) -> Result<Vec<RowBatch>> {
    let dop = dop.max(1);
    let res = prepare_region(rt, pipeline)?;
    rt.stats.parallel_regions += 1;
    rt.stats.parallel_workers += dop as u64;

    let mut merged: Vec<RowBatch> = Vec::new();
    let mut folded = ExecStats::default();
    let mut first_err: Option<ExecError> = None;
    std::thread::scope(|scope| {
        let mut rxs: Vec<Receiver<WorkerMsg>> = Vec::with_capacity(dop);
        for _ in 0..dop {
            let (tx, rx) = sync_channel::<WorkerMsg>(CHANNEL_DEPTH);
            rxs.push(rx);
            let res = &res;
            let mut wrt = worker_runtime(rt);
            scope.spawn(move || {
                let morsel = Rc::new(Cell::new(0u64));
                let run = (|| -> Result<()> {
                    let mut ctx = WorkerCtx {
                        res,
                        next_dispenser: 0,
                        next_table: 0,
                        morsel: Rc::clone(&morsel),
                    };
                    let mut op = build_worker_pipeline(pipeline, &mut ctx)?;
                    while let Some(batch) = op.next_batch(&mut wrt)? {
                        if tx.send(WorkerMsg::Batch(morsel.get(), batch)).is_err() {
                            break; // Coordinator bailed; stop quietly.
                        }
                    }
                    Ok(())
                })();
                let _ = match run {
                    Ok(()) => tx.send(WorkerMsg::Done(wrt.stats)),
                    Err(e) => tx.send(WorkerMsg::Fail(e)),
                };
            });
        }
        // K-way merge by morsel tag. Each worker's stream is sorted (its
        // dispenser claims only increase), so taking the smallest head
        // reproduces the serial page order; a page's batches all come from
        // one worker, in emission order.
        let mut heads: Vec<Option<(u64, RowBatch)>> = rxs
            .iter()
            .map(|rx| recv_next(rx, &mut folded, &mut first_err))
            .collect();
        loop {
            let min = heads
                .iter()
                .enumerate()
                .filter_map(|(w, h)| h.as_ref().map(|(seq, _)| (*seq, w)))
                .min();
            let Some((_, w)) = min else { break };
            let (_, batch) = heads[w].take().unwrap();
            merged.push(batch);
            heads[w] = recv_next(&rxs[w], &mut folded, &mut first_err);
        }
    });
    rt.stats.merge(&folded);
    match first_err {
        Some(e) => Err(e),
        None => Ok(merged),
    }
}

/// Run an aggregate region to completion: `dop` workers fold their morsels
/// into partial group tables; the coordinator merges the partials (in
/// worker order) into the final table.
#[allow(clippy::type_complexity)]
fn run_agg_region(
    rt: &mut Runtime<'_>,
    pipeline: &PhysPlan,
    group: &[PhysExpr],
    aggs: &[AggSpec],
    dop: usize,
) -> Result<(FxHashMap<Vec<Value>, GroupState>, bool)> {
    let dop = dop.max(1);
    let res = prepare_region(rt, pipeline)?;
    rt.stats.parallel_regions += 1;
    rt.stats.parallel_workers += dop as u64;

    type Partial = (FxHashMap<Vec<Value>, GroupState>, bool, ExecStats);
    let partials: Vec<Result<Partial>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..dop)
            .map(|_| {
                let res = &res;
                let mut wrt = worker_runtime(rt);
                scope.spawn(move || -> Result<Partial> {
                    let mut ctx = WorkerCtx {
                        res,
                        next_dispenser: 0,
                        next_table: 0,
                        morsel: Rc::new(Cell::new(0)),
                    };
                    let mut op = build_worker_pipeline(pipeline, &mut ctx)?;
                    let mut acc = GroupAcc::new(group, aggs);
                    while let Some(batch) = op.next_batch(&mut wrt)? {
                        acc.fold(&batch, &wrt.outer)?;
                    }
                    let (groups, saw_input) = acc.finish();
                    Ok((groups, saw_input, wrt.stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("aggregate worker panicked"))
            .collect()
    });

    let mut groups: FxHashMap<Vec<Value>, GroupState> = FxHashMap::default();
    let mut saw_input = false;
    for partial in partials {
        let (worker_groups, worker_saw, stats) = partial?;
        rt.stats.merge(&stats);
        saw_input |= worker_saw;
        for (key, state) in worker_groups {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    merge_group_state(e.into_mut(), state, aggs)?;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
            }
        }
    }
    Ok((groups, saw_input))
}

/// Generic dop-capped scoped fan-out for callers outside the operator tree
/// (commit-time materialized-view maintenance re-extracts independent CO
/// root keys on this). Items are dealt round-robin across
/// `min(dop, items)` scoped worker threads and results come back in input
/// order. Like a region's workers, the closure runs inside one
/// [`std::thread::scope`], so it can borrow the catalog and pinned
/// snapshots freely; unlike a region there is no streaming — the whole
/// item list is processed to completion.
pub fn scoped_fanout<I, R, F>(items: Vec<I>, dop: usize, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let dop = dop.max(1).min(items.len());
    if dop <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut chunks: Vec<Vec<(usize, I)>> = (0..dop).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % dop].push((i, item));
    }
    let f = &f;
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fanout worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every fanout slot is filled"))
        .collect()
}

/// Region root operator for gather regions: runs the region to completion
/// on first pull and streams the merged batches.
pub(crate) struct ExchangeGatherOp {
    pipeline: PhysPlan,
    dop: usize,
    buffered: Option<VecDeque<RowBatch>>,
}

impl ExchangeGatherOp {
    pub(crate) fn new(pipeline: PhysPlan, dop: usize) -> ExchangeGatherOp {
        ExchangeGatherOp {
            pipeline,
            dop,
            buffered: None,
        }
    }
}

impl Operator for ExchangeGatherOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.buffered.is_none() {
            let batches = run_gather_region(rt, &self.pipeline, self.dop)?;
            self.buffered = Some(batches.into());
        }
        Ok(self.buffered.as_mut().unwrap().pop_front())
    }
}

/// Region root operator for partial→final parallel aggregation. Merges the
/// workers' partial tables, then finishes (HAVING, output expressions,
/// deterministic sort) exactly like the serial `HashAggregateOp`.
pub(crate) struct ParallelHashAggregateOp {
    input: PhysPlan,
    group: Vec<PhysExpr>,
    aggs: Vec<AggSpec>,
    having: Vec<PhysExpr>,
    output: Vec<PhysExpr>,
    dop: usize,
    results: Option<Vec<Row>>,
    idx: usize,
}

impl ParallelHashAggregateOp {
    pub(crate) fn new(
        input: PhysPlan,
        group: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        having: Vec<PhysExpr>,
        output: Vec<PhysExpr>,
        dop: usize,
    ) -> ParallelHashAggregateOp {
        ParallelHashAggregateOp {
            input,
            group,
            aggs,
            having,
            output,
            dop,
            results: None,
            idx: 0,
        }
    }
}

impl Operator for ParallelHashAggregateOp {
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<RowBatch>> {
        if self.results.is_none() {
            let (groups, saw_input) =
                run_agg_region(rt, &self.input, &self.group, &self.aggs, self.dop)?;
            self.results = Some(finalize_groups(
                groups,
                saw_input,
                self.group.is_empty(),
                &self.aggs,
                &self.having,
                &self.output,
                &rt.outer,
            )?);
        }
        let rows = self.results.as_ref().unwrap();
        if self.idx >= rows.len() {
            return Ok(None);
        }
        let end = (self.idx + rt.batch_size).min(rows.len());
        let batch = RowBatch::from_rows(rows[self.idx..end].to_vec());
        self.idx = end;
        Ok(Some(batch))
    }
}
