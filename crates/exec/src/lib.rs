//! # xnf-exec — the Query Evaluation System (QES)
//!
//! Demand-driven, pipelined interpretation of query evaluation plans
//! (Sect. 3.1 "table queue evaluation"): each operator interprets one QEP
//! node, pulling tuples from its input streams. Shared subplans are
//! materialised once and scanned by all consumers; correlated subqueries
//! (the naive pre-rewrite strategy) re-instantiate their subplan per outer
//! tuple.

pub mod engine;
pub mod error;
pub mod eval;
pub mod ops;

pub use engine::{
    execute_qep, execute_qep_parallel, execute_qep_parallel_with_params, execute_qep_with_params,
    QueryResult, StreamResult,
};
pub use error::{ExecError, Result};
pub use eval::{eval, like_match, passes, truthy, OuterCtx, Params, Row};
pub use ops::{build_operator, drain, ExecStats, Operator, Runtime};

#[cfg(test)]
mod exec_tests;
