//! # xnf-exec — the Query Evaluation System (QES)
//!
//! Vectorized, pipelined interpretation of query evaluation plans. The
//! paper's "table queue evaluation" (Sect. 3.1) moves streams of tuples
//! between QEP operators; this engine moves those streams as
//! [`RowBatch`] chunks (default 1024 rows, tunable via
//! `PlanOptions::batch_size`) instead of one row per pull:
//!
//! - every operator implements [`Operator::next_batch`] — there is no
//!   row-at-a-time `next()`; virtual dispatch, predicate/projection setup
//!   and allocator traffic amortise over a whole chunk;
//! - scans stream batches straight off heap pages
//!   (`HeapFile::scan_page`) and index postings — a scan holds at most one
//!   page of tuples, so `LIMIT`-style early termination stops reading the
//!   base table instead of materialising it;
//! - shared subplans (the multi-query "table queues" of Fig. 6) are
//!   materialised once as `Vec<RowBatch>` and re-streamed chunk-at-a-time
//!   by every consumer;
//! - correlated subqueries (the naive pre-rewrite strategy) still
//!   re-instantiate their subplan per outer tuple — that per-tuple cost is
//!   exactly what the E-to-F rewrite removes, and keeping it measurable is
//!   the point of the Fig. 3 baseline.
//!
//! Pipeline granularity is observable: [`ExecStats::batches_emitted`] and
//! [`ExecStats::peak_batch_rows`] count the chunks delivered at the
//! pipeline sinks.
//!
//! Queries are **intra-query parallel** when the planner asks for it
//! (`PlanOptions::dop > 1`): plan subtrees rooted at `ExchangeGather` /
//! `ParallelHashAggregate` nodes run as morsel-driven parallel regions —
//! `dop` worker threads pull heap-page morsels from a shared dispenser,
//! run their own copy of the worker pipeline over a cloned MVCC snapshot,
//! and the coordinator merges their streams back into serial row order
//! (see the [`parallel`] module docs). At `dop = 1` (the default on a
//! single-core host) plans and execution are exactly the serial pipeline
//! described above.
//!
//! Reads are **snapshot-aware**: every run resolves one MVCC
//! [`Snapshot`](xnf_storage::Snapshot) — either the visibility handle the
//! caller pinned through [`OuterCtx`] (reads inside an open transaction) or
//! a fresh latest-committed snapshot — and every scan and index lookup
//! filters tuple versions against it. [`ExecStats::snapshot_seq`] records
//! which snapshot ran; [`ExecStats::rows_skipped_visibility`] counts the
//! versions the checks hid.
//!
//! Entry points: [`execute_qep`] / [`execute_qep_with_params`] (all output
//! streams of a QEP), [`execute_qep_with_visibility`] (pin a snapshot) and
//! [`execute_qep_parallel`] (CO output streams dispatched across a worker
//! pool capped at the QEP's degree of parallelism). Scans of
//! materialized-view backing tables (`matview scan` nodes) execute exactly
//! like base-table scans — the catalog resolves the view name to its
//! backing storage.
//!
//! ```
//! use std::sync::Arc;
//! use xnf_exec::execute_qep;
//! use xnf_plan::{plan_query, PlanOptions};
//! use xnf_qgm::build_select_query;
//! use xnf_sql::parse_select;
//! use xnf_storage::{BufferPool, Catalog, DataType, DiskManager, Schema, Tuple, Value};
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 16));
//! let catalog = Catalog::new(pool);
//! let emp = catalog
//!     .create_table("EMP", Schema::from_pairs(&[("eno", DataType::Int)]))
//!     .unwrap();
//! emp.insert(&Tuple::new(vec![Value::Int(7)])).unwrap();
//! let s = parse_select("SELECT eno FROM EMP").unwrap();
//! let qgm = build_select_query(&catalog, &s).unwrap();
//! let qep = plan_query(&catalog, &qgm, PlanOptions::default()).unwrap();
//! let result = execute_qep(&catalog, &qep).unwrap();
//! assert_eq!(result.try_table().unwrap().rows, vec![vec![Value::Int(7)]]);
//! ```

pub mod batch;
pub mod engine;
pub mod error;
pub mod eval;
pub mod hash;
pub mod ops;
pub mod parallel;

pub use batch::{BatchBuilder, RowBatch, DEFAULT_BATCH_SIZE};
pub use engine::{
    execute_qep, execute_qep_parallel, execute_qep_parallel_with_params,
    execute_qep_parallel_with_visibility, execute_qep_with_params, execute_qep_with_visibility,
    QueryResult, StreamResult,
};
pub use error::{ExecError, Result};
pub use eval::{
    eval, filter_batch, like_match, passes, passes_batch, project_batch, truthy, CompiledPreds,
    OuterCtx, Params, Row, Visibility,
};
pub use ops::{build_operator, drain, ExecStats, Operator, Runtime};

#[cfg(test)]
mod exec_tests;
