//! Physical expression evaluation with SQL three-valued logic.

use std::collections::HashMap;
use std::sync::Arc;

use xnf_plan::PhysExpr;
use xnf_qgm::QunId;
use xnf_sql::{BinOp, ScalarFunc, UnaryOp};
use xnf_storage::{Snapshot, Value};

use crate::error::{ExecError, Result};

/// A runtime row.
pub type Row = Vec<Value>;

/// Prepared-statement parameter bindings, positional. Shared (`Arc`) so the
/// parallel extraction path can hand the same table to every stream thread.
pub type Params = Arc<Vec<Value>>;

/// The visibility handle threaded through execution: the MVCC snapshot
/// scans and index lookups filter tuple versions against. `None` means
/// "latest committed state" (resolved per run by the engine).
pub type Visibility = Option<Snapshot>;

/// Evaluation context: correlation bindings (outer quantifier → its current
/// row), the parameter binding table for [`PhysExpr::Param`] slots, and the
/// visibility handle for snapshot-aware reads.
#[derive(Debug, Clone, Default)]
pub struct OuterCtx {
    rows: HashMap<QunId, Row>,
    params: Params,
    visibility: Visibility,
}

impl OuterCtx {
    pub fn new() -> Self {
        OuterCtx::default()
    }

    /// A context with parameter bindings (prepared-statement execution).
    pub fn with_params(params: Params) -> Self {
        OuterCtx {
            rows: HashMap::new(),
            params,
            visibility: None,
        }
    }

    /// A context with parameter bindings and an explicit snapshot (reads
    /// inside an open transaction).
    pub fn with_params_and_visibility(params: Params, visibility: Visibility) -> Self {
        OuterCtx {
            rows: HashMap::new(),
            params,
            visibility,
        }
    }

    /// The snapshot reads should filter against (if pinned to one).
    pub fn visibility(&self) -> &Visibility {
        &self.visibility
    }

    pub fn set_visibility(&mut self, visibility: Visibility) {
        self.visibility = visibility;
    }

    pub fn get(&self, qun: &QunId) -> Option<&Row> {
        self.rows.get(qun)
    }

    pub fn insert(&mut self, qun: QunId, row: Row) -> Option<Row> {
        self.rows.insert(qun, row)
    }

    pub fn remove(&mut self, qun: &QunId) -> Option<Row> {
        self.rows.remove(qun)
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    pub fn set_params(&mut self, params: Params) {
        self.params = params;
    }

    fn param(&self, i: usize) -> Result<&Value> {
        self.params.get(i).ok_or_else(|| {
            ExecError::MissingBinding(format!(
                "parameter ?{} (only {} bound)",
                i + 1,
                self.params.len()
            ))
        })
    }
}

/// Evaluate `expr` against `row` (and `outer` correlation bindings).
/// `aggs` resolves [`PhysExpr::AggRef`] slots inside aggregate output
/// expressions; pass `&[]` elsewhere.
pub fn eval(expr: &PhysExpr, row: &[Value], outer: &OuterCtx, aggs: &[Value]) -> Result<Value> {
    Ok(match expr {
        PhysExpr::Literal(v) => v.clone(),
        PhysExpr::Param(i) => outer.param(*i)?.clone(),
        PhysExpr::Col(i) => row.get(*i).cloned().ok_or_else(|| {
            ExecError::Type(format!("row has no slot #{i} (width {})", row.len()))
        })?,
        PhysExpr::Outer { qun, col } => {
            let r = outer
                .get(qun)
                .ok_or_else(|| ExecError::MissingBinding(format!("q{qun}")))?;
            r.get(*col)
                .cloned()
                .ok_or_else(|| ExecError::Type(format!("outer q{qun} has no column {col}")))?
        }
        PhysExpr::AggRef(i) => aggs
            .get(*i)
            .cloned()
            .ok_or_else(|| ExecError::Type(format!("no aggregate slot {i}")))?,
        PhysExpr::Unary { op, expr } => {
            let v = eval(expr, row, outer, aggs)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(
                        i.checked_neg()
                            .ok_or(ExecError::Arithmetic("negate overflow"))?,
                    ),
                    Value::Double(d) => Value::Double(-d),
                    other => {
                        return Err(ExecError::Type(format!(
                            "cannot negate {}",
                            other.type_name()
                        )))
                    }
                },
                UnaryOp::Not => match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => return Err(ExecError::Type(format!("NOT of {}", other.type_name()))),
                },
            }
        }
        PhysExpr::Binary { left, op, right } => {
            // Short-circuiting three-valued AND/OR.
            if *op == BinOp::And || *op == BinOp::Or {
                return eval_logical(*op, left, right, row, outer, aggs);
            }
            let l = eval(left, row, outer, aggs)?;
            let r = eval(right, row, outer, aggs)?;
            eval_binary(*op, l, r)?
        }
        PhysExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, outer, aggs)?;
            Value::Bool(v.is_null() != *negated)
        }
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, outer, aggs)?;
            match v {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Bool(like_match(&s, pattern) != *negated),
                other => return Err(ExecError::Type(format!("LIKE on {}", other.type_name()))),
            }
        }
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, outer, aggs)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            let mut found = false;
            for e in list {
                let x = eval(e, row, outer, aggs)?;
                match v.sql_eq(&x) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if found {
                Value::Bool(!*negated)
            } else if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            }
        }
        PhysExpr::Func { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row, outer, aggs)?);
            }
            eval_func(*func, &vals)?
        }
    })
}

fn eval_logical(
    op: BinOp,
    left: &PhysExpr,
    right: &PhysExpr,
    row: &[Value],
    outer: &OuterCtx,
    aggs: &[Value],
) -> Result<Value> {
    let l = eval(left, row, outer, aggs)?;
    let l = to_tri(l)?;
    match (op, l) {
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = to_tri(eval(right, row, outer, aggs)?)?;
    Ok(match op {
        BinOp::And => match (l, r) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (l, r) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!(),
    })
}

fn to_tri(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(ExecError::Type(format!(
            "boolean expected, got {}",
            other.type_name()
        ))),
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let ord = match l.sql_cmp(&r) {
                None => return Ok(Value::Null),
                Some(o) => o,
            };
            let b = match op {
                Eq => ord.is_eq(),
                NotEq => !ord.is_eq(),
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                GtEq => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => {
                    let a = *a;
                    let b = *b;
                    let v = match op {
                        Add => a.checked_add(b),
                        Sub => a.checked_sub(b),
                        Mul => a.checked_mul(b),
                        Div => {
                            if b == 0 {
                                return Err(ExecError::Arithmetic("division by zero"));
                            }
                            a.checked_div(b)
                        }
                        Mod => {
                            if b == 0 {
                                return Err(ExecError::Arithmetic("modulo by zero"));
                            }
                            a.checked_rem(b)
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(
                        v.ok_or(ExecError::Arithmetic("integer overflow"))?,
                    ))
                }
                _ => {
                    let a = l
                        .as_double()
                        .map_err(|_| ExecError::Type(format!("arithmetic on {}", l.type_name())))?;
                    let b = r
                        .as_double()
                        .map_err(|_| ExecError::Type(format!("arithmetic on {}", r.type_name())))?;
                    let v = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Err(ExecError::Arithmetic("division by zero"));
                            }
                            a / b
                        }
                        Mod => a % b,
                        _ => unreachable!(),
                    };
                    Ok(Value::Double(v))
                }
            }
        }
        And | Or => unreachable!("handled by eval_logical"),
    }
}

fn eval_func(func: ScalarFunc, args: &[Value]) -> Result<Value> {
    let arg = |i: usize| -> Result<&Value> {
        args.get(i)
            .ok_or_else(|| ExecError::Type(format!("{func} needs argument {i}")))
    };
    let v = arg(0)?;
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match func {
        ScalarFunc::Abs => match v {
            Value::Int(i) => Value::Int(
                i.checked_abs()
                    .ok_or(ExecError::Arithmetic("abs overflow"))?,
            ),
            Value::Double(d) => Value::Double(d.abs()),
            other => return Err(ExecError::Type(format!("ABS of {}", other.type_name()))),
        },
        ScalarFunc::Upper => Value::Str(v.as_str().map_err(ExecError::from)?.to_uppercase()),
        ScalarFunc::Lower => Value::Str(v.as_str().map_err(ExecError::from)?.to_lowercase()),
        ScalarFunc::Length => {
            Value::Int(v.as_str().map_err(ExecError::from)?.chars().count() as i64)
        }
    })
}

/// Does a predicate value count as a match? (TRUE only; NULL = UNKNOWN.)
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Evaluate a conjunction of predicates; short-circuits on a non-match.
pub fn passes(preds: &[PhysExpr], row: &[Value], outer: &OuterCtx) -> Result<bool> {
    for p in preds {
        if !truthy(&eval(p, row, outer, &[])?) {
            return Ok(false);
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// batch-at-a-time entry points
// ---------------------------------------------------------------------------
//
// Operators call these once per RowBatch, so predicate/projection dispatch
// (and the conjunction walk) is set up once per chunk instead of once per
// row — the vectorized counterparts of [`passes`] and per-row projection.

use crate::batch::RowBatch;

/// One conjunct classified for batch evaluation. Comparisons of a row slot
/// against a constant — the dominant shape of scan filters and join
/// residuals — run as tight `sql_cmp` loops without re-entering the
/// recursive interpreter for every row; everything else falls back to
/// [`eval`]. Classification happens once per batch, so expression dispatch
/// is paid per chunk, not per row.
enum BatchPred<'a> {
    /// `#col <op> literal` (or the flipped spelling).
    ColLit {
        col: usize,
        op: BinOp,
        lit: &'a Value,
    },
    General(&'a PhysExpr),
}

/// A conjunction classified once and applied to many rows: the scan path
/// compiles its residual filter per output batch, then tests each decoded
/// tuple inline while streaming pages.
pub struct CompiledPreds<'a> {
    preds: Vec<BatchPred<'a>>,
}

impl<'a> CompiledPreds<'a> {
    pub fn compile(preds: &'a [PhysExpr]) -> CompiledPreds<'a> {
        CompiledPreds {
            preds: preds.iter().map(classify).collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Does `row` satisfy every conjunct? (NULL = UNKNOWN = no.)
    pub fn matches(&self, row: &[Value], outer: &OuterCtx) -> Result<bool> {
        for p in &self.preds {
            match p {
                BatchPred::ColLit { col, op, lit } => {
                    let v = row.get(*col).ok_or_else(|| {
                        ExecError::Type(format!("row has no slot #{col} (width {})", row.len()))
                    })?;
                    let ok = match v.sql_cmp(lit) {
                        None => false,
                        Some(ord) => cmp_matches(*op, ord),
                    };
                    if !ok {
                        return Ok(false);
                    }
                }
                BatchPred::General(p) => {
                    if !truthy(&eval(p, row, outer, &[])?) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

fn classify(p: &PhysExpr) -> BatchPred<'_> {
    use BinOp::*;
    if let PhysExpr::Binary { left, op, right } = p {
        if matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq) {
            match (&**left, &**right) {
                (PhysExpr::Col(c), PhysExpr::Literal(v)) => {
                    return BatchPred::ColLit {
                        col: *c,
                        op: *op,
                        lit: v,
                    }
                }
                (PhysExpr::Literal(v), PhysExpr::Col(c)) => {
                    // `lit op col` ≡ `col flip(op) lit`.
                    let flipped = match op {
                        Lt => Gt,
                        LtEq => GtEq,
                        Gt => Lt,
                        GtEq => LtEq,
                        other => *other,
                    };
                    return BatchPred::ColLit {
                        col: *c,
                        op: flipped,
                        lit: v,
                    };
                }
                _ => {}
            }
        }
    }
    BatchPred::General(p)
}

fn cmp_matches(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::NotEq => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::LtEq => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::GtEq => ord.is_ge(),
        _ => unreachable!("classify only admits comparisons"),
    }
}

/// Evaluate a conjunction over every row of `batch`, returning the keep
/// mask (`true` = row satisfies all predicates). Classifies the conjuncts
/// once, then tests rows through [`CompiledPreds::matches`].
pub fn passes_batch(preds: &[PhysExpr], batch: &RowBatch, outer: &OuterCtx) -> Result<Vec<bool>> {
    let compiled = CompiledPreds::compile(preds);
    let mut keep = Vec::with_capacity(batch.len());
    for row in batch.iter() {
        keep.push(compiled.matches(row, outer)?);
    }
    Ok(keep)
}

/// Retain only the rows of `batch` that satisfy every predicate in `preds`.
/// A no-op (no mask allocation) for an empty conjunction.
pub fn filter_batch(preds: &[PhysExpr], batch: &mut RowBatch, outer: &OuterCtx) -> Result<()> {
    if preds.is_empty() || batch.is_empty() {
        return Ok(());
    }
    let keep = passes_batch(preds, batch, outer)?;
    batch.retain_indices(&keep);
    Ok(())
}

/// Project every row of `batch` through `exprs` into a fresh batch.
pub fn project_batch(exprs: &[PhysExpr], batch: &RowBatch, outer: &OuterCtx) -> Result<RowBatch> {
    let mut out = RowBatch::with_capacity(exprs.len(), batch.len());
    for row in batch.iter() {
        let mut projected = Vec::with_capacity(exprs.len());
        for e in exprs {
            projected.push(eval(e, row, outer, &[])?);
        }
        out.push(projected);
    }
    Ok(out)
}

/// SQL LIKE matcher: `%` = any sequence, `_` = any single character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => {
                // Try all split points (including empty).
                (0..=s.len()).any(|i| rec(&s[i..], rest))
            }
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    fn b(l: PhysExpr, op: BinOp, r: PhysExpr) -> PhysExpr {
        PhysExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    fn ev(e: &PhysExpr) -> Value {
        eval(e, &[], &OuterCtx::new(), &[]).unwrap()
    }

    #[test]
    fn arithmetic_and_promotion() {
        assert_eq!(ev(&b(lit(2i64), BinOp::Add, lit(3i64))), Value::Int(5));
        assert_eq!(
            ev(&b(lit(2i64), BinOp::Mul, lit(2.5f64))),
            Value::Double(5.0)
        );
        assert_eq!(ev(&b(lit(7i64), BinOp::Div, lit(2i64))), Value::Int(3));
        assert!(eval(
            &b(lit(1i64), BinOp::Div, lit(0i64)),
            &[],
            &OuterCtx::new(),
            &[]
        )
        .is_err());
    }

    #[test]
    fn null_propagation() {
        let null = PhysExpr::Literal(Value::Null);
        assert_eq!(ev(&b(null.clone(), BinOp::Add, lit(1i64))), Value::Null);
        assert_eq!(ev(&b(null.clone(), BinOp::Eq, lit(1i64))), Value::Null);
        // Kleene logic.
        assert_eq!(
            ev(&b(null.clone(), BinOp::And, lit(false))),
            Value::Bool(false)
        );
        assert_eq!(ev(&b(null.clone(), BinOp::And, lit(true))), Value::Null);
        assert_eq!(
            ev(&b(null.clone(), BinOp::Or, lit(true))),
            Value::Bool(true)
        );
        assert_eq!(ev(&b(null, BinOp::Or, lit(false))), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(&b(lit("a"), BinOp::Lt, lit("b"))), Value::Bool(true));
        assert_eq!(
            ev(&b(lit(2i64), BinOp::GtEq, lit(2.0f64))),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("ARC", "ARC"));
        assert!(like_match("ARCADE", "ARC%"));
        assert!(like_match("xARCx", "%ARC%"));
        assert!(like_match("AxC", "A_C"));
        assert!(!like_match("AxxC", "A_C"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a_"));
    }

    #[test]
    fn in_list_three_valued() {
        let e = PhysExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(2i64), PhysExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Null, "no match but NULL present = UNKNOWN");
        let e = PhysExpr::InList {
            expr: Box::new(lit(2i64)),
            list: vec![lit(2i64), PhysExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn outer_references() {
        let mut outer = OuterCtx::new();
        outer.insert(7, vec![Value::Int(42)]);
        let e = PhysExpr::Outer { qun: 7, col: 0 };
        assert_eq!(eval(&e, &[], &outer, &[]).unwrap(), Value::Int(42));
        let missing = PhysExpr::Outer { qun: 8, col: 0 };
        assert!(matches!(
            eval(&missing, &[], &outer, &[]),
            Err(ExecError::MissingBinding(_))
        ));
    }

    #[test]
    fn param_references() {
        use std::sync::Arc;
        let ctx = OuterCtx::with_params(Arc::new(vec![Value::Int(7), Value::Str("x".into())]));
        assert_eq!(
            eval(&PhysExpr::Param(0), &[], &ctx, &[]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval(&PhysExpr::Param(1), &[], &ctx, &[]).unwrap(),
            Value::Str("x".into())
        );
        assert!(matches!(
            eval(&PhysExpr::Param(2), &[], &ctx, &[]),
            Err(ExecError::MissingBinding(_))
        ));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            ev(&PhysExpr::Func {
                func: ScalarFunc::Upper,
                args: vec![lit("arc")]
            }),
            Value::Str("ARC".into())
        );
        assert_eq!(
            ev(&PhysExpr::Func {
                func: ScalarFunc::Length,
                args: vec![lit("héllo")]
            }),
            Value::Int(5)
        );
        assert_eq!(
            ev(&PhysExpr::Func {
                func: ScalarFunc::Abs,
                args: vec![lit(-3i64)]
            }),
            Value::Int(3)
        );
    }
}
