//! Row batches: the unit of data flow between operators.
//!
//! The paper's "table queue" evaluation (Sect. 3.1) moves *streams* of
//! tuples between QEP operators. We vectorize that stream: operators
//! exchange [`RowBatch`] chunks (default capacity
//! [`xnf_plan::DEFAULT_BATCH_SIZE`] rows) instead of single rows, so the
//! per-tuple virtual dispatch and bookkeeping of classic Volcano pulls
//! amortise over a whole chunk. Producers accumulate rows through a
//! [`BatchBuilder`] and hand off full chunks:
//!
//! ```
//! use xnf_exec::{BatchBuilder, RowBatch};
//! use xnf_storage::Value;
//!
//! let mut b = BatchBuilder::new(1, 2);
//! b.push(vec![Value::Int(1)]);
//! assert!(b.take_full().is_none(), "not full yet");
//! b.push(vec![Value::Int(2)]);
//! let full: RowBatch = b.take_full().expect("capacity reached");
//! assert_eq!(full.len(), 2);
//! ```

pub use xnf_plan::DEFAULT_BATCH_SIZE;

use crate::eval::Row;

/// A column-count-aware chunk of rows. Every row has the same width
/// (`columns`); producers never emit empty batches, so `None` from
/// [`crate::Operator::next_batch`] is the only end-of-stream signal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBatch {
    rows: Vec<Row>,
    columns: usize,
}

impl RowBatch {
    /// An empty batch of `columns`-wide rows with room for `capacity` rows.
    pub fn with_capacity(columns: usize, capacity: usize) -> RowBatch {
        RowBatch {
            rows: Vec::with_capacity(capacity),
            columns,
        }
    }

    /// Wrap pre-built rows (width taken from the first row).
    pub fn from_rows(rows: Vec<Row>) -> RowBatch {
        let columns = rows.first().map(|r| r.len()).unwrap_or(0);
        RowBatch { rows, columns }
    }

    /// Row width of this batch.
    pub fn columns(&self) -> usize {
        self.columns
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row; debug-asserts the width invariant.
    pub fn push(&mut self, row: Row) {
        debug_assert!(
            self.columns == row.len() || self.rows.is_empty(),
            "row width {} pushed into {}-column batch",
            row.len(),
            self.columns
        );
        if self.rows.is_empty() {
            self.columns = row.len();
        }
        self.rows.push(row);
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Keep only the rows whose index passes `keep` (used by batch filters).
    pub fn retain_indices(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.rows.len());
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Truncate to at most `n` rows (LIMIT support).
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }
}

impl IntoIterator for RowBatch {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a RowBatch {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl std::ops::Index<usize> for RowBatch {
    type Output = Row;
    fn index(&self, i: usize) -> &Row {
        &self.rows[i]
    }
}

/// Accumulates rows and hands out capacity-sized [`RowBatch`]es; operators
/// that change cardinality (scans, joins) use it to keep their output
/// batches near the configured size.
#[derive(Debug, Default)]
pub struct BatchBuilder {
    pending: Vec<Row>,
    columns: usize,
    capacity: usize,
}

impl BatchBuilder {
    pub fn new(columns: usize, capacity: usize) -> BatchBuilder {
        BatchBuilder {
            pending: Vec::new(),
            columns,
            capacity: capacity.max(1),
        }
    }

    pub fn push(&mut self, row: Row) {
        if self.pending.is_empty() && self.columns == 0 {
            self.columns = row.len();
        }
        self.pending.push(row);
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// A full batch is ready once `capacity` rows have accumulated.
    /// (A default-constructed builder has capacity 0 = never full; it only
    /// drains through [`BatchBuilder::take_rest`].)
    pub fn take_full(&mut self) -> Option<RowBatch> {
        if self.capacity == 0 || self.pending.len() < self.capacity {
            return None;
        }
        let rest = self.pending.split_off(self.capacity);
        let rows = std::mem::replace(&mut self.pending, rest);
        Some(RowBatch {
            columns: self.columns.max(rows.first().map(|r| r.len()).unwrap_or(0)),
            rows,
        })
    }

    /// Drain whatever is left (end of stream). `None` when nothing pending.
    pub fn take_rest(&mut self) -> Option<RowBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let rows = std::mem::take(&mut self.pending);
        Some(RowBatch {
            columns: self.columns.max(rows.first().map(|r| r.len()).unwrap_or(0)),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_storage::Value;

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::Int(i * 10)]
    }

    #[test]
    fn builder_emits_capacity_sized_batches() {
        let mut b = BatchBuilder::new(2, 4);
        for i in 0..10 {
            b.push(row(i));
        }
        let first = b.take_full().unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(first.columns(), 2);
        let second = b.take_full().unwrap();
        assert_eq!(second.rows()[0], row(4));
        assert!(b.take_full().is_none(), "only 2 rows pending");
        let rest = b.take_rest().unwrap();
        assert_eq!(rest.len(), 2);
        assert!(b.take_rest().is_none());
    }

    #[test]
    fn retain_and_truncate() {
        let mut batch = RowBatch::from_rows((0..6).map(row).collect());
        batch.retain_indices(&[true, false, true, false, true, false]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[1], row(2));
        batch.truncate(2);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn batch_iteration_preserves_order() {
        let batch = RowBatch::from_rows(vec![row(1), row(2), row(3)]);
        assert_eq!(batch.columns(), 2);
        let rows: Vec<Row> = batch.into_iter().collect();
        assert_eq!(rows, vec![row(1), row(2), row(3)]);
    }
}
