//! Operation census over physical plans — the measurement instrument for
//! the Table 1 reproduction.
//!
//! An *operation* is a selection (a filtered scan) or a join (hash/NL join,
//! semijoin, or per-tuple subquery filter). The paper counts "NF QGM
//! operations (mostly join)"; we count the corresponding physical operators
//! of the final QEP. Row-level attribution differs slightly from the
//! paper's table (they charge connection-output formation to relationship
//! rows; we charge per-path SKILLS joins to xskills) but the totals and the
//! XNF side reproduce exactly — see EXPERIMENTS.md.

use xnf_plan::{PhysPlan, Qep};

/// Census result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    pub selections: usize,
    pub joins: usize,
}

impl OpCensus {
    pub fn total(&self) -> usize {
        self.selections + self.joins
    }
}

impl std::ops::Add for OpCensus {
    type Output = OpCensus;
    fn add(self, o: OpCensus) -> OpCensus {
        OpCensus {
            selections: self.selections + o.selections,
            joins: self.joins + o.joins,
        }
    }
}

/// Count σ and ⋈ operators in one plan tree.
pub fn census_plan(plan: &PhysPlan) -> OpCensus {
    let selections = plan.count_ops(&mut |p| {
        matches!(
            p,
            PhysPlan::SeqScan { filter, .. } if !filter.is_empty()
        ) || matches!(p, PhysPlan::IndexEq { .. })
            || matches!(p, PhysPlan::Filter { .. })
    });
    let joins = plan.count_ops(&mut |p| {
        matches!(
            p,
            PhysPlan::HashJoin { .. }
                | PhysPlan::NlJoin { .. }
                | PhysPlan::HashSemiJoin { .. }
                | PhysPlan::NlSemiJoin { .. }
                | PhysPlan::SubqueryFilter { .. }
        )
    });
    OpCensus { selections, joins }
}

/// Census of a whole QEP. For XNF QEPs, connection streams are counted
/// separately: their joins are subject to the paper's *output optimization*
/// (the connection information is captured along the child derivation), so
/// the paper's Table 1 charges them zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct QepCensus {
    /// Shared component derivations + node output streams.
    pub derivation: OpCensus,
    /// Connection streams (captured under output optimization).
    pub connections: OpCensus,
}

pub fn census_qep(qep: &Qep) -> QepCensus {
    let mut c = QepCensus::default();
    for p in &qep.shared {
        c.derivation = c.derivation + census_plan(p);
    }
    for o in &qep.outputs {
        let part = census_plan(&o.plan);
        if matches!(o.kind, xnf_qgm::OutputKind::Connection { .. }) {
            c.connections = c.connections + part;
        } else {
            c.derivation = c.derivation + part;
        }
    }
    c
}

/// Structural signatures of every σ/⋈ operator in a plan, for detecting
/// replication across separately compiled queries (Fig. 6): the signature
/// of an operator is the normalized explain-text of its whole subtree.
pub fn op_signatures(plan: &PhysPlan, out: &mut Vec<String>) {
    let is_op = |p: &PhysPlan| {
        matches!(
            p,
            PhysPlan::HashJoin { .. }
                | PhysPlan::NlJoin { .. }
                | PhysPlan::HashSemiJoin { .. }
                | PhysPlan::NlSemiJoin { .. }
                | PhysPlan::SubqueryFilter { .. }
        ) || matches!(p, PhysPlan::SeqScan { filter, .. } if !filter.is_empty())
            || matches!(p, PhysPlan::IndexEq { .. })
    };
    if is_op(plan) || matches!(plan, PhysPlan::Filter { .. }) {
        out.push(plan.explain());
    }
    match plan {
        PhysPlan::Values { .. }
        | PhysPlan::SeqScan { .. }
        | PhysPlan::ParallelSeqScan { .. }
        | PhysPlan::IndexEq { .. }
        | PhysPlan::SharedScan { .. }
        | PhysPlan::MatViewScan { .. } => {}
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::HashDistinct { input }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Limit { input, .. }
        | PhysPlan::ExchangeGather { input, .. }
        | PhysPlan::ExchangeHashPartition { input, .. }
        | PhysPlan::HashAggregate { input, .. }
        | PhysPlan::ParallelHashAggregate { input, .. } => op_signatures(input, out),
        PhysPlan::HashJoin { left, right, .. } | PhysPlan::NlJoin { left, right, .. } => {
            op_signatures(left, out);
            op_signatures(right, out);
        }
        PhysPlan::ParallelHashJoin { probe, build, .. } => {
            op_signatures(probe, out);
            op_signatures(build, out);
        }
        PhysPlan::HashSemiJoin { outer, inner, .. } | PhysPlan::NlSemiJoin { outer, inner, .. } => {
            op_signatures(outer, out);
            op_signatures(inner, out);
        }
        PhysPlan::SubqueryFilter { input, subplan, .. } => {
            op_signatures(input, out);
            op_signatures(subplan, out);
        }
        PhysPlan::UnionAll { inputs } => {
            for i in inputs {
                op_signatures(i, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_fixtures::{build_paper_db, PaperScale};

    #[test]
    fn census_counts_scan_filters_and_joins() {
        let db = build_paper_db(PaperScale {
            departments: 5,
            ..Default::default()
        });
        let qep = db
            .compile("SELECT e.ename FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'")
            .unwrap();
        let c = census_plan(&qep.outputs[0].plan);
        assert_eq!(c.joins, 1);
        assert_eq!(c.selections, 1);
    }

    #[test]
    fn signatures_detect_shared_subtrees() {
        let db = build_paper_db(PaperScale {
            departments: 5,
            ..Default::default()
        });
        let q1 = db.compile("SELECT * FROM DEPT WHERE loc = 'ARC'").unwrap();
        let q2 = db.compile("SELECT * FROM DEPT WHERE loc = 'ARC'").unwrap();
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        op_signatures(&q1.outputs[0].plan, &mut s1);
        op_signatures(&q2.outputs[0].plan, &mut s2);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 1);
    }
}
