//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p xnf-bench --bin experiments            # all
//! cargo run --release -p xnf-bench --bin experiments -- table1  # one
//! ```

use xnf_bench::experiments::{
    cache_exp, extraction, fig3, fig56, pipeline, recursion_exp, shipping, swizzle, updates,
};
use xnf_bench::{render_table1, run_table1};
use xnf_fixtures::{build_paper_db, PaperScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all") || args == ["quick"];
    let want = |name: &str| all || args.iter().any(|a| a == name);
    // "quick" shrinks the sweeps (used by integration tests).
    let quick = args.iter().any(|a| a == "quick");

    if want("table1") {
        section("E1 / Table 1 — operation counts");
        let db = build_paper_db(PaperScale {
            departments: 10,
            ..Default::default()
        });
        let t = run_table1(&db);
        println!("{}", render_table1(&t));
    }

    if want("fig3") {
        section("E2 / Fig. 3 — existential subquery rewrite");
        let db = build_paper_db(PaperScale {
            departments: 5,
            ..Default::default()
        });
        let (a, b, c) = fig3::fig3_stages(&db);
        println!("-- (a) initial QGM graph --\n{a}");
        println!("-- (b) after E-to-F quantifier conversion --\n{b}");
        println!("-- (c) after SELECT merge --\n{c}");
        let sweep: &[usize] = if quick {
            &[400, 2000]
        } else {
            &[400, 2000, 10_000, 40_000]
        };
        println!("{}", fig3::render_fig3(&fig3::run_fig3(sweep)));
    }

    if want("fig56") {
        section("E3 / Figs. 5-6 — multi-query CSE sharing");
        let db = build_paper_db(PaperScale {
            departments: 20,
            ..Default::default()
        });
        fig56::verify_equivalence(&db);
        println!("(equivalence of both derivations verified)");
        let sweep: &[usize] = if quick {
            &[20, 50]
        } else {
            &[20, 50, 100, 200]
        };
        println!("{}", fig56::render_fig56(&fig56::run_fig56(sweep)));
    }

    if want("extraction") {
        section("E4 / Sect. 1 — set-oriented vs navigational extraction");
        let sweep: &[usize] = if quick { &[10, 25] } else { &[10, 25, 50, 100] };
        println!(
            "{}",
            extraction::render_extraction(&extraction::run_extraction(sweep))
        );
    }

    if want("cache") {
        section("E5 / Sect. 5.2 — cache traversal rate (OO1)");
        let (parts, traversals) = if quick { (2_000, 20) } else { (20_000, 100) };
        println!(
            "{}",
            cache_exp::render_cache(&cache_exp::run_cache(parts, traversals, 7))
        );
    }

    if want("shipping") {
        section("E6 / Sect. 5.3 — shipping policies");
        println!("{}", shipping::render_shipping(&shipping::run_shipping(50)));
    }

    if want("pipeline") {
        section("E7 / Fig. 7 — extract → swizzle → navigate → persist");
        let d = if quick { 25 } else { 100 };
        println!("{}", pipeline::render_pipeline(&pipeline::run_pipeline(d)));
    }

    if want("swizzle") {
        section("E8 — pointer swizzling ablation");
        let (parts, lookups) = if quick {
            (2_000, 20_000)
        } else {
            (20_000, 200_000)
        };
        println!(
            "{}",
            swizzle::render_swizzle(&swizzle::run_swizzle(parts, lookups))
        );
    }

    if want("recursion") {
        section("E9 — recursive CO fixpoint");
        let sweep: &[(usize, usize)] = if quick {
            &[(4, 10), (6, 20)]
        } else {
            &[(4, 10), (6, 20), (8, 50), (10, 100)]
        };
        println!(
            "{}",
            recursion_exp::render_recursion(&recursion_exp::run_recursion(sweep))
        );
    }

    if want("updates") {
        section("E10 — CO updates and write-back");
        let d = if quick { 10 } else { 25 };
        println!("{}", updates::render_updates(&updates::run_updates(d)));
    }
}

fn section(title: &str) {
    println!("\n==========================================================================");
    println!("{title}");
    println!("==========================================================================\n");
}
