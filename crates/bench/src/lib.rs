//! # xnf-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (Sect. 5);
//! see EXPERIMENTS.md at the repository root for the experiment index and
//! the paper-vs-measured record. The `experiments` binary runs each
//! experiment and prints paper-style tables; the `benches/` directory
//! holds the perf-trajectory criterion benches (`bench_scan_join`,
//! `bench_prepared`, `bench_matview`, …) whose numbers are recorded in
//! CHANGES.md.
//!
//! Entry points: [`run_table1`] / [`render_table1`] for the Table 1
//! reproduction, [`census_qep`] / [`op_signatures`] for plan-shape
//! counting.
//!
//! ```
//! use xnf_bench::census_qep;
//! use xnf_fixtures::{build_paper_db, PaperScale};
//!
//! let db = build_paper_db(PaperScale { departments: 5, ..Default::default() });
//! let qep = db.compile("SELECT COUNT(*) FROM EMP WHERE edno = 1").unwrap();
//! let census = census_qep(&qep);
//! assert!(census.derivation.selections > 0, "the filtered scan is counted");
//! ```

pub mod census;
pub mod experiments;
pub mod table1;

pub use census::{census_plan, census_qep, op_signatures, OpCensus, QepCensus};
pub use table1::{render_table1, run_table1, Table1, COMPONENT_QUERIES, PAPER_TABLE1};
