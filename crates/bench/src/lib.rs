//! # xnf-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation; see
//! EXPERIMENTS.md at the repository root for the experiment index and the
//! paper-vs-measured record. The `experiments` binary runs each experiment
//! and prints paper-style tables.

pub mod census;
pub mod experiments;
pub mod table1;

pub use census::{census_plan, census_qep, op_signatures, OpCensus, QepCensus};
pub use table1::{render_table1, run_table1, Table1, COMPONENT_QUERIES, PAPER_TABLE1};
