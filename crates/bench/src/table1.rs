//! E1 — Table 1: "Comparison of SQL Derivation and XNF Derivation w.r.t.
//! Common Subexpressions".
//!
//! The single-component SQL derivations (one query per CO component, as in
//! Fig. 6) are compiled separately and their σ/⋈ operators counted; the XNF
//! query is compiled once and counted with connection streams attributed to
//! the output optimization. Totals reproduce the paper's 23 (SQL) vs 7
//! (XNF = 6 joins + 1 selection); the "replicated" column is reported both
//! as ops-redundant-vs-XNF (the paper's 16) and as ops deduplicated under
//! perfect common-subexpression detection.

use std::collections::HashSet;

use xnf_core::Database;
use xnf_fixtures::DEPS_ARC;

use crate::census::{census_plan, census_qep, op_signatures, OpCensus};

/// The per-component SQL derivations (Fig. 6 style, EXISTS-based
/// reachability).
pub const COMPONENT_QUERIES: &[(&str, &str)] = &[
    ("xdept", "SELECT * FROM DEPT WHERE loc = 'ARC'"),
    (
        "xemp",
        "SELECT e.eno, e.ename, e.edno, e.sal FROM EMP e WHERE EXISTS \
         (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)",
    ),
    (
        "xproj",
        "SELECT p.pno, p.pname, p.pdno FROM PROJ p WHERE EXISTS \
         (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = p.pdno)",
    ),
    (
        "employment",
        "SELECT d.dno, e.eno FROM DEPT d, EMP e WHERE d.loc = 'ARC' AND d.dno = e.edno",
    ),
    (
        "ownership",
        "SELECT d.dno, p.pno FROM DEPT d, PROJ p WHERE d.loc = 'ARC' AND d.dno = p.pdno",
    ),
    (
        "xskills",
        "SELECT s.sno, s.sname FROM SKILLS s WHERE EXISTS \
           (SELECT 1 FROM EMPSKILLS es, EMP e, DEPT d \
            WHERE es.essno = s.sno AND es.eseno = e.eno AND e.edno = d.dno AND d.loc = 'ARC') \
         OR EXISTS \
           (SELECT 1 FROM PROJSKILLS ps, PROJ p, DEPT d \
            WHERE ps.pssno = s.sno AND ps.pspno = p.pno AND p.pdno = d.dno AND d.loc = 'ARC')",
    ),
    (
        "empproperty",
        "SELECT es.eseno, es.essno FROM EMPSKILLS es WHERE EXISTS \
         (SELECT 1 FROM EMP e, DEPT d WHERE e.eno = es.eseno AND e.edno = d.dno AND d.loc = 'ARC')",
    ),
    (
        "projproperty",
        "SELECT ps.pspno, ps.pssno FROM PROJSKILLS ps WHERE EXISTS \
         (SELECT 1 FROM PROJ p, DEPT d WHERE p.pno = ps.pspno AND p.pdno = d.dno AND d.loc = 'ARC')",
    ),
];

/// Paper's Table 1 rows: (component, sql ops, replicated, xnf ops).
pub const PAPER_TABLE1: &[(&str, usize, usize, usize)] = &[
    ("xdept", 1, 0, 1),
    ("xemp", 2, 1, 1),
    ("xproj", 2, 1, 1),
    ("employment", 3, 3, 0),
    ("ownership", 3, 3, 0),
    ("xskills", 6, 4, 4),
    ("empproperty", 3, 2, 0),
    ("projproperty", 3, 2, 0),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub component: String,
    pub sql_ops: OpCensus,
}

/// The full measured comparison.
#[derive(Debug, Clone)]
pub struct Table1 {
    pub rows: Vec<Table1Row>,
    pub sql_total: usize,
    /// Ops remaining after perfect common-subexpression deduplication
    /// across the eight query plans (by structural signature).
    pub sql_distinct: usize,
    /// XNF derivation ops (components; connections are captured by the
    /// output optimization and charged zero, as in the paper).
    pub xnf_derivation: OpCensus,
    /// Physical ops of the connection streams (reported for honesty; the
    /// paper charges these to the captured child joins).
    pub xnf_connections: OpCensus,
}

impl Table1 {
    /// The paper's "replicated" column total: work the XNF derivation
    /// avoids versus running the eight queries separately.
    pub fn redundant_vs_xnf(&self) -> usize {
        self.sql_total - self.xnf_derivation.total()
    }
}

/// Compile both derivations on `db` and produce the comparison.
pub fn run_table1(db: &Database) -> Table1 {
    let mut rows = Vec::new();
    let mut total = 0;
    let mut all_sigs: Vec<String> = Vec::new();
    for (name, sql) in COMPONENT_QUERIES {
        let qep = db.compile(sql).expect(name);
        let census = census_plan(&qep.outputs[0].plan);
        op_signatures(&qep.outputs[0].plan, &mut all_sigs);
        total += census.total();
        rows.push(Table1Row {
            component: name.to_string(),
            sql_ops: census,
        });
    }
    let distinct: HashSet<&String> = all_sigs.iter().collect();

    let qep = db.compile(DEPS_ARC).expect("deps_ARC");
    let c = census_qep(&qep);
    Table1 {
        rows,
        sql_total: total,
        sql_distinct: distinct.len(),
        xnf_derivation: c.derivation,
        xnf_connections: c.connections,
    }
}

/// Render the comparison as a paper-style table.
pub fn render_table1(t: &Table1) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1 — SQL vs XNF derivation (ops = selections + joins)"
    );
    let _ = writeln!(
        s,
        "{:<14} {:>10} {:>12} {:>10} {:>12}",
        "component", "SQL(meas)", "SQL(paper)", "XNF(paper)", ""
    );
    let mut paper_sql = 0;
    let mut paper_xnf = 0;
    for (row, (pname, psql, _prep, pxnf)) in t.rows.iter().zip(PAPER_TABLE1) {
        assert_eq!(&row.component, pname);
        paper_sql += psql;
        paper_xnf += pxnf;
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>12} {:>10}",
            row.component,
            row.sql_ops.total(),
            psql,
            pxnf
        );
    }
    let _ = writeln!(s, "{:-<62}", "");
    let _ = writeln!(
        s,
        "{:<14} {:>10} {:>12} {:>10}   (paper: 23 / 7)",
        "total", t.sql_total, paper_sql, paper_xnf
    );
    let _ = writeln!(
        s,
        "XNF derivation measured: {} ops ({} joins + {} selections)",
        t.xnf_derivation.total(),
        t.xnf_derivation.joins,
        t.xnf_derivation.selections
    );
    let _ = writeln!(
        s,
        "redundant ops eliminated by XNF: {} (paper: 16); distinct ops under perfect CSE: {}",
        t.redundant_vs_xnf(),
        t.sql_distinct
    );
    let _ = writeln!(
        s,
        "connection streams (output-optimized in the paper, charged 0): {} physical joins",
        t.xnf_connections.joins
    );
    s
}
