//! E9 — recursive composite objects (Sect. 2): bill-of-materials fixpoint
//! scaling in the size of the part graph.

use std::time::{Duration, Instant};

use xnf_core::Database;
use xnf_storage::{Tuple, Value};

/// Build a layered BOM: `layers` levels of `width` parts; every part uses
/// two parts of the next layer (a DAG with sharing).
pub fn build_bom(layers: usize, width: usize) -> Database {
    let db = Database::new();
    db.execute_batch(
        "CREATE TABLE PARTS (pid INT NOT NULL, pname VARCHAR(20));
         CREATE TABLE BOM (parent INT, child INT);",
    )
    .unwrap();
    let parts = db.catalog().table("PARTS").unwrap();
    let bom = db.catalog().table("BOM").unwrap();
    let id = |layer: usize, i: usize| (layer * width + i) as i64;
    for layer in 0..layers {
        for i in 0..width {
            parts
                .insert(&Tuple::new(vec![
                    Value::Int(id(layer, i)),
                    Value::Str(format!("p{layer}_{i}")),
                ]))
                .unwrap();
            if layer + 1 < layers {
                for d in 0..2usize {
                    bom.insert(&Tuple::new(vec![
                        Value::Int(id(layer, i)),
                        Value::Int(id(layer + 1, (i + d) % width)),
                    ]))
                    .unwrap();
                }
            }
        }
    }
    db.execute("ANALYZE").unwrap();
    db
}

pub const BOM_CO: &str = "\
OUT OF ROOT asm AS (SELECT * FROM PARTS WHERE pid = 0),
       part AS PARTS,
       top_uses AS (RELATE asm VIA uses, part USING BOM b
                    WHERE asm.pid = b.parent AND b.child = part.pid),
       sub_uses AS (RELATE part VIA uses, part USING BOM b2
                    WHERE part.pid = b2.parent AND b2.child = uses.pid)
TAKE *";

#[derive(Debug, Clone)]
pub struct RecursionPoint {
    pub layers: usize,
    pub width: usize,
    pub reached_parts: usize,
    pub edges: usize,
    pub time: Duration,
}

pub fn run_recursion(points: &[(usize, usize)]) -> Vec<RecursionPoint> {
    let mut out = Vec::new();
    for &(layers, width) in points {
        let db = build_bom(layers, width);
        let t0 = Instant::now();
        let r = db.query(BOM_CO).unwrap();
        let time = t0.elapsed();
        let reached = r.stream("part").unwrap().rows.len();
        let edges = r.stream("sub_uses").unwrap().rows.len();
        out.push(RecursionPoint {
            layers,
            width,
            reached_parts: reached,
            edges,
            time,
        });
    }
    out
}

pub fn render_recursion(points: &[RecursionPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "Recursive CO — BOM closure by semi-naive fixpoint");
    let _ = writeln!(
        s,
        "{:>8} {:>7} {:>10} {:>8} {:>10}",
        "layers", "width", "reached", "edges", "ms"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>8} {:>7} {:>10} {:>8} {:>10.2}",
            p.layers,
            p.width,
            p.reached_parts,
            p.edges,
            super::ms(p.time)
        );
    }
    s
}
