//! E10 — CO updates (Sect. 2): cache-side updates with write-back vs
//! direct SQL updates, plus connect/disconnect translation.

use std::time::{Duration, Instant};

use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};
use xnf_storage::Value;

#[derive(Debug, Clone)]
pub struct UpdatePoint {
    pub updates: usize,
    pub cache_update_and_save: Duration,
    pub direct_sql: Duration,
    pub connects: usize,
    pub connect_time: Duration,
}

pub fn run_updates(departments: usize) -> UpdatePoint {
    let scale = PaperScale {
        departments,
        ..Default::default()
    };

    // Cache-side: update every cached employee's salary, then save once.
    let db = build_paper_db(scale);
    let mut co = db.fetch_co(DEPS_ARC).unwrap();
    let ids: Vec<u32> = co
        .workspace
        .independent("xemp")
        .unwrap()
        .map(|t| t.id())
        .collect();
    let t0 = Instant::now();
    for &id in &ids {
        let old = co.workspace.component("xemp").unwrap().row(id)[3].clone();
        let new = Value::Double(old.as_double().unwrap() + 1.0);
        co.workspace.update_value("xemp", id, "sal", new).unwrap();
    }
    let ops = co.save(&db).unwrap();
    let cache_time = t0.elapsed();
    assert_eq!(ops, ids.len());

    // Direct SQL: the same logical change in one set-oriented statement.
    let db2 = build_paper_db(scale);
    let t0 = Instant::now();
    db2.execute(
        "UPDATE EMP SET sal = sal + 1.0 WHERE edno IN (SELECT dno FROM DEPT WHERE loc = 'ARC')",
    )
    .unwrap_or_else(|_| {
        // The dialect's UPDATE filter is table-local; fall back to a
        // two-step touch of the same rows.
        let arc: Vec<i64> = db2
            .query("SELECT dno FROM DEPT WHERE loc = 'ARC'")
            .unwrap()
            .try_table()
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let list = arc
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        db2.execute(&format!(
            "UPDATE EMP SET sal = sal + 1.0 WHERE edno IN ({list})"
        ))
        .unwrap()
    });
    let direct_time = t0.elapsed();

    // Connect/disconnect: rewire 20 employees to the first ARC department.
    let db3 = build_paper_db(scale);
    let mut co3 = db3.fetch_co(DEPS_ARC).unwrap();
    let moves: Vec<(u32, u32, u32)> = {
        let ws = &co3.workspace;
        let mut v = Vec::new();
        for e in ws.independent("xemp").unwrap() {
            if v.len() >= 20 {
                break;
            }
            if let Some(parent) = e.parents("employment").unwrap().next() {
                if parent.id() != 0 {
                    v.push((parent.id(), e.id(), 0));
                }
            }
        }
        v
    };
    let t0 = Instant::now();
    for (old_parent, emp, new_parent) in &moves {
        co3.workspace
            .disconnect("employment", &[*old_parent, *emp])
            .unwrap();
        co3.workspace
            .connect("employment", &[*new_parent, *emp])
            .unwrap();
    }
    co3.save(&db3).unwrap();
    let connect_time = t0.elapsed();

    UpdatePoint {
        updates: ids.len(),
        cache_update_and_save: cache_time,
        direct_sql: direct_time,
        connects: moves.len(),
        connect_time,
    }
}

pub fn render_updates(p: &UpdatePoint) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "CO updates — cache write-back vs direct SQL");
    let _ = writeln!(
        s,
        "  {} salary updates via cache + save: {:>9.2} ms",
        p.updates,
        super::ms(p.cache_update_and_save)
    );
    let _ = writeln!(
        s,
        "  same change via one SQL UPDATE:     {:>9.2} ms",
        super::ms(p.direct_sql)
    );
    let _ = writeln!(
        s,
        "  {} connect/disconnect pairs + save: {:>9.2} ms (FK rewiring)",
        p.connects,
        super::ms(p.connect_time)
    );
    let _ = writeln!(
        s,
        "(write-back pays per-row view-update cost; set-oriented SQL stays cheaper — \n\
         the paper's trade-off between navigation-style and set-oriented manipulation)"
    );
    s
}
