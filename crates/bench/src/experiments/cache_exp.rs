//! E5 — Sect. 5.2: XNF cache traversal rate (the Cattell OO1 measurement).
//!
//! "Using the traversal operation from that benchmark, we could access in a
//! pre-loaded XNF cache more than 100,000 tuples per second which matches
//! the requirements for CAD applications." We rebuild the OO1 traversal:
//! from a random part, follow connections to depth 7 via dependent cursors,
//! counting every tuple touched. The same traversal through per-tuple
//! server queries gives the contrast the paper draws with RDBMS navigation.

use std::time::{Duration, Instant};

use xnf_core::{CoCache, Database, Workspace};
use xnf_fixtures::{build_oo1_db, Oo1Config, OO1_CO};

/// OO1 traversal via swizzled cache pointers. Returns tuples touched.
pub fn traverse_cache(ws: &Workspace, start: u32, depth: u32) -> u64 {
    fn rec(ws: &Workspace, id: u32, depth: u32, touched: &mut u64) {
        *touched += 1;
        if depth == 0 {
            return;
        }
        for child in ws.children("conn", id).unwrap() {
            rec(ws, child.id(), depth - 1, touched);
        }
    }
    let mut touched = 0;
    rec(ws, start, depth, &mut touched);
    touched
}

/// The same traversal by querying the server per node (index lookups).
pub fn traverse_server(db: &Database, start: i64, depth: u32) -> u64 {
    fn rec(db: &Database, id: i64, depth: u32, touched: &mut u64) {
        *touched += 1;
        if depth == 0 {
            return;
        }
        let q =
            format!("SELECT p.id FROM OO1PARTS p, OO1CONN c WHERE c.src = {id} AND c.dst = p.id");
        let children = db.query(&q).unwrap();
        for row in &children.try_table().unwrap().rows {
            rec(db, row[0].as_int().unwrap(), depth - 1, touched);
        }
    }
    let mut touched = 0;
    rec(db, start, depth, &mut touched);
    touched
}

#[derive(Debug, Clone)]
pub struct CachePoint {
    pub parts: usize,
    pub traversals: usize,
    pub depth: u32,
    pub cache_tuples: u64,
    pub cache_time: Duration,
    pub cache_tuples_per_sec: f64,
    pub server_tuples: u64,
    pub server_time: Duration,
    pub server_tuples_per_sec: f64,
}

pub fn run_cache(parts: usize, traversals: usize, depth: u32) -> CachePoint {
    let db = build_oo1_db(Oo1Config {
        parts,
        ..Default::default()
    });
    let co: CoCache = db.fetch_co(OO1_CO).unwrap();
    let ws = &co.workspace;
    let n = ws.component("part").unwrap().len() as u32;

    // Pre-loaded cache traversal.
    let t0 = Instant::now();
    let mut cache_tuples = 0;
    for i in 0..traversals {
        let start = (i as u32 * 7919) % n;
        cache_tuples += traverse_cache(ws, start, depth);
    }
    let cache_time = t0.elapsed();

    // Server-side navigation (fewer traversals; it is much slower).
    let server_traversals = traversals.clamp(1, 3);
    let t0 = Instant::now();
    let mut server_tuples = 0;
    for i in 0..server_traversals {
        let start = ((i as u32 * 7919) % n) as i64;
        server_tuples += traverse_server(&db, start, depth);
    }
    let server_time = t0.elapsed();

    CachePoint {
        parts,
        traversals,
        depth,
        cache_tuples,
        cache_time,
        cache_tuples_per_sec: cache_tuples as f64 / cache_time.as_secs_f64().max(1e-12),
        server_tuples,
        server_time,
        server_tuples_per_sec: server_tuples as f64 / server_time.as_secs_f64().max(1e-12),
    }
}

pub fn render_cache(p: &CachePoint) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Sect. 5.2 — OO1-style traversal (depth {}, {} parts)",
        p.depth, p.parts
    );
    let _ = writeln!(
        s,
        "  XNF cache:  {:>10} tuples in {:>9.2} ms = {:>12.0} tuples/s",
        p.cache_tuples,
        super::ms(p.cache_time),
        p.cache_tuples_per_sec
    );
    let _ = writeln!(
        s,
        "  server nav: {:>10} tuples in {:>9.2} ms = {:>12.0} tuples/s",
        p.server_tuples,
        super::ms(p.server_time),
        p.server_tuples_per_sec
    );
    let _ = writeln!(
        s,
        "  paper: >100,000 tuples/s in the pre-loaded cache (1993 hardware) — measured {}",
        if p.cache_tuples_per_sec > 100_000.0 {
            "PASS (far exceeded)"
        } else {
            "FAIL"
        }
    );
    s
}
