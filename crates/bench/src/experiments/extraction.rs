//! E4 — Sect. 1: set-oriented CO extraction vs navigational
//! query-per-parent extraction ("numerous queries … fragmented queries
//! where the number of fragments is in the order of the number of parent
//! instances").

use std::time::{Duration, Instant};

use xnf_core::{
    navigational_extract, FetchStrategy, NavLevel, Server, TransportCost, TransportStats,
};
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};

#[derive(Debug, Clone)]
pub struct ExtractionPoint {
    pub departments: usize,
    pub employees: usize,
    pub nav_time: Duration,
    pub nav_messages: u64,
    pub nav_simulated_ms: f64,
    pub co_time: Duration,
    pub co_messages: u64,
    pub co_simulated_ms: f64,
    pub speedup_wall: f64,
    pub speedup_simulated: f64,
}

pub fn run_extraction(dept_counts: &[usize]) -> Vec<ExtractionPoint> {
    let cost = TransportCost::default();
    let mut out = Vec::new();
    for &d in dept_counts {
        let scale = PaperScale {
            departments: d,
            ..Default::default()
        };
        let db = build_paper_db(scale);
        let server = Server::new(db);

        // Navigational: departments, then per-dept employees and projects,
        // then per-employee skills — one query per parent instance.
        let mut nav_stats = TransportStats::default();
        let t0 = Instant::now();
        let total = navigational_extract(
            &server,
            &mut nav_stats,
            "SELECT dno, dname, loc FROM DEPT WHERE loc = 'ARC'",
            &[
                NavLevel {
                    query_prefix: "SELECT eno, ename, edno, sal FROM EMP WHERE edno =".to_string(),
                    parent_key_col: 0,
                },
                NavLevel {
                    query_prefix: "SELECT s.sno, s.sname, es.eseno FROM SKILLS s, EMPSKILLS es \
                         WHERE es.essno = s.sno AND es.eseno = "
                        .to_string(),
                    parent_key_col: 0,
                },
            ],
        )
        .unwrap();
        let nav_time = t0.elapsed();

        // Set-oriented: the whole CO in one query.
        let mut co_stats = TransportStats::default();
        let t0 = Instant::now();
        let result = server
            .fetch(
                DEPS_ARC,
                FetchStrategy::WholeCo {
                    max_bytes: 256 * 1024,
                },
                &mut co_stats,
            )
            .unwrap();
        let co_time = t0.elapsed();
        let extracted: usize = result.streams.iter().map(|s| s.rows.len()).sum();
        assert!(extracted > 0 && total > 0);

        let nav_sim = nav_stats.simulated_ms(cost) + nav_time.as_secs_f64() * 1e3;
        let co_sim = co_stats.simulated_ms(cost) + co_time.as_secs_f64() * 1e3;
        out.push(ExtractionPoint {
            departments: d,
            employees: d * scale.employees_per_dept,
            nav_time,
            nav_messages: nav_stats.messages,
            nav_simulated_ms: nav_sim,
            co_time,
            co_messages: co_stats.messages,
            co_simulated_ms: co_sim,
            speedup_wall: super::speedup(nav_time, co_time),
            speedup_simulated: nav_sim / co_sim.max(1e-9),
        });
    }
    out
}

pub fn render_extraction(points: &[ExtractionPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Sect. 1 — extraction: navigational (query per parent) vs set-oriented (one XNF query)"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>8} {:>10} {:>9} {:>12} {:>9} {:>9} {:>12} {:>10} {:>10}",
        "depts",
        "emps",
        "nav ms",
        "nav msgs",
        "nav sim ms",
        "CO ms",
        "CO msgs",
        "CO sim ms",
        "wall spd",
        "sim spd"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>8} {:>10.2} {:>9} {:>12.1} {:>9.2} {:>9} {:>12.1} {:>9.1}x {:>9.1}x",
            p.departments,
            p.employees,
            super::ms(p.nav_time),
            p.nav_messages,
            p.nav_simulated_ms,
            super::ms(p.co_time),
            p.co_messages,
            p.co_simulated_ms,
            p.speedup_wall,
            p.speedup_simulated
        );
    }
    let _ = writeln!(
        s,
        "(paper: set-oriented processing 'could lead to significant improvement …, even in orders of magnitude')"
    );
    s
}
