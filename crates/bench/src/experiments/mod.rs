//! The numbered experiments (E2–E10). E1 lives in [`crate::table1`].

pub mod cache_exp;
pub mod extraction;
pub mod fig3;
pub mod fig56;
pub mod pipeline;
pub mod recursion_exp;
pub mod shipping;
pub mod swizzle;
pub mod updates;

/// Format a milliseconds value compactly.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Speedup (a over b).
pub fn speedup(slow: std::time::Duration, fast: std::time::Duration) -> f64 {
    slow.as_secs_f64() / fast.as_secs_f64().max(1e-12)
}
