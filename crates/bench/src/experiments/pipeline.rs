//! E7 — Fig. 7: the end-to-end pipeline (extract → convert/swizzle →
//! navigate) with cache save/restore for long transactions.

use std::time::{Duration, Instant};

use xnf_core::{load_workspace, save_workspace, Workspace};
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};

#[derive(Debug, Clone)]
pub struct PipelinePoint {
    pub departments: usize,
    pub tuples: usize,
    pub connections: usize,
    pub extract: Duration,
    pub swizzle: Duration,
    pub navigate: Duration,
    pub save: Duration,
    pub load: Duration,
    pub image_bytes: usize,
}

pub fn run_pipeline(departments: usize) -> PipelinePoint {
    let db = build_paper_db(PaperScale {
        departments,
        ..Default::default()
    });

    // Extract: run the XNF query (server side).
    let t0 = Instant::now();
    let result = db.query(DEPS_ARC).unwrap();
    let extract = t0.elapsed();

    // Convert + swizzle: build the workspace.
    let t0 = Instant::now();
    let ws = Workspace::from_result(&result).unwrap();
    let swizzle = t0.elapsed();

    // Navigate: walk every dept → employees → skills once.
    let t0 = Instant::now();
    let mut touched = 0u64;
    for d in ws.independent("xdept").unwrap() {
        touched += 1;
        for e in d.children("employment").unwrap() {
            touched += 1;
            for _s in e.children("empproperty").unwrap() {
                touched += 1;
            }
        }
    }
    let navigate = t0.elapsed();
    assert!(touched > 0);

    // Save / load (long-transaction protection).
    let t0 = Instant::now();
    let mut image = Vec::new();
    save_workspace(&ws, &mut image).unwrap();
    let save = t0.elapsed();
    let t0 = Instant::now();
    let back = load_workspace(&mut &image[..]).unwrap();
    let load = t0.elapsed();
    assert_eq!(back.tuple_count(), ws.tuple_count());

    PipelinePoint {
        departments,
        tuples: ws.tuple_count(),
        connections: ws.connection_count(),
        extract,
        swizzle,
        navigate,
        save,
        load,
        image_bytes: image.len(),
    }
}

pub fn render_pipeline(p: &PipelinePoint) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 7 — pipeline for {} departments ({} tuples, {} connections):",
        p.departments, p.tuples, p.connections
    );
    let _ = writeln!(
        s,
        "  extract (server query):   {:>9.2} ms",
        super::ms(p.extract)
    );
    let _ = writeln!(
        s,
        "  convert + swizzle:        {:>9.2} ms",
        super::ms(p.swizzle)
    );
    let _ = writeln!(
        s,
        "  navigate (full walk):     {:>9.2} ms",
        super::ms(p.navigate)
    );
    let _ = writeln!(
        s,
        "  cache save / load:        {:>9.2} / {:.2} ms ({} byte image)",
        super::ms(p.save),
        super::ms(p.load),
        p.image_bytes
    );
    s
}
