//! E2 — Fig. 3: existential-subquery → join rewrite.
//!
//! Structural part: the three QGM stages (initial graph with the E
//! quantifier; after E-to-F conversion; after SELECT merge). Performance
//! part: executing the query with the rewrite disabled (tuple-at-a-time
//! subquery evaluation) versus enabled (set-oriented semijoin), sweeping
//! the employee count — the paper reports orders of magnitude (\[39\]).

use std::time::{Duration, Instant};

use xnf_core::{Database, DbConfig, PlanOptions, RewriteOptions};
use xnf_fixtures::{build_paper_db, PaperScale};
use xnf_qgm::display;

pub const FIG3_QUERY: &str = "SELECT e.eno, e.ename FROM EMP e WHERE EXISTS \
     (SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)";

/// The three rewrite stages of Fig. 3 as QGM dumps.
pub fn fig3_stages(db: &Database) -> (String, String, String) {
    use xnf_qgm::build_select_query;
    use xnf_rewrite::{EToF, RemoveUnusedBoxes, Rule, RuleEngine, SelectMerge};
    use xnf_sql::parse_select;

    let ast = parse_select(FIG3_QUERY).unwrap();
    let initial = build_select_query(db.catalog(), &ast).unwrap();
    let a = display::render(&initial);

    // (b): E-to-F only.
    let mut g = initial.clone();
    let engine = RuleEngine::new(vec![Box::new(EToF) as Box<dyn Rule>]);
    engine.run(&mut g).unwrap();
    let b = display::render(&g);

    // (c): full rewrite (merge included).
    let mut g = initial;
    let engine = RuleEngine::new(vec![
        Box::new(EToF) as Box<dyn Rule>,
        Box::new(SelectMerge),
        Box::new(RemoveUnusedBoxes),
    ]);
    engine.run(&mut g).unwrap();
    let c = display::render(&g);
    (a, b, c)
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    pub employees: usize,
    pub naive: Duration,
    pub naive_subqueries: u64,
    pub rewritten: Duration,
    pub speedup: f64,
}

/// Run the naive-vs-rewritten sweep.
pub fn run_fig3(emp_counts: &[usize]) -> Vec<Fig3Point> {
    let mut out = Vec::new();
    for &n in emp_counts {
        let scale = PaperScale {
            departments: 40,
            arc_fraction: 0.1,
            employees_per_dept: n / 40,
            projects_per_dept: 1,
            skills: 10,
            skills_per_employee: 0,
            skills_per_project: 0,
            ..Default::default()
        };
        let db = build_paper_db(scale);
        let naive_db = rebuild_with(
            scale,
            DbConfig {
                rewrite: RewriteOptions {
                    e_to_f: false,
                    simplify: true,
                },
                plan: PlanOptions::default(),
                ..Default::default()
            },
        );

        let t0 = Instant::now();
        let fast = db.query(FIG3_QUERY).unwrap();
        let rewritten = t0.elapsed();

        let t0 = Instant::now();
        let slow = naive_db.query(FIG3_QUERY).unwrap();
        let naive = t0.elapsed();

        assert_eq!(
            fast.try_table().unwrap().rows.len(),
            slow.try_table().unwrap().rows.len(),
            "rewrite must not change results"
        );
        out.push(Fig3Point {
            employees: n,
            naive,
            naive_subqueries: slow.stats.subquery_invocations,
            rewritten,
            speedup: super::speedup(naive, rewritten),
        });
    }
    out
}

/// Rebuild the paper database (same seed, identical data) under a custom
/// configuration — used to compare rewrite/planner modes fairly.
pub fn rebuild_with(scale: PaperScale, cfg: DbConfig) -> Database {
    let db = Database::with_config(cfg);
    let donor = build_paper_db(scale);
    for name in donor.catalog().table_names() {
        let t = donor.catalog().table(&name).unwrap();
        let nt = db.catalog().create_table(&name, t.schema.clone()).unwrap();
        t.for_each(|_, tuple| {
            nt.insert(&tuple).unwrap();
            Ok(true)
        })
        .unwrap();
        for idx in t.index_defs() {
            nt.create_index(&idx.name, idx.columns.clone(), idx.unique)
                .unwrap();
        }
        nt.analyze().unwrap();
    }
    db
}

pub fn render_fig3(points: &[Fig3Point]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 3 — existential subquery: naive (tuple-at-a-time) vs rewritten (semijoin)"
    );
    let _ = writeln!(
        s,
        "{:>10} {:>12} {:>14} {:>12} {:>10}",
        "employees", "naive ms", "subqueries", "rewritten ms", "speedup"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>10} {:>12.2} {:>14} {:>12.2} {:>9.1}x",
            p.employees,
            super::ms(p.naive),
            p.naive_subqueries,
            super::ms(p.rewritten),
            p.speedup
        );
    }
    let _ = writeln!(
        s,
        "(paper/[39]: orders of magnitude improvement from the rewrite)"
    );
    s
}
