//! E3 — Figs. 5/6: multi-query common-subexpression sharing.
//!
//! The same composite object is derived twice: as eight separate SQL
//! queries (single-component derivation, Fig. 6) and as one XNF query
//! (shared component derivations, Fig. 5b). Both produce the same data;
//! the XNF derivation avoids the replicated work Table 1 counts.

use std::time::{Duration, Instant};

use xnf_core::{Database, DbConfig, PlanOptions};
use xnf_fixtures::{PaperScale, DEPS_ARC};

use crate::table1::COMPONENT_QUERIES;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig56Point {
    pub departments: usize,
    pub sql_8_queries: Duration,
    pub sql_rows_scanned: u64,
    pub xnf_single_query: Duration,
    pub xnf_rows_scanned: u64,
    /// Pipeline granularity of the XNF run: batches delivered at sinks and
    /// the largest single batch (reported so the paper experiments can show
    /// how the vectorized engine chunks the table queues).
    pub xnf_batches: u64,
    pub xnf_peak_batch: u64,
    pub xnf_no_cse: Duration,
    pub speedup: f64,
}

pub fn run_fig56(dept_counts: &[usize]) -> Vec<Fig56Point> {
    let mut out = Vec::new();
    for &d in dept_counts {
        let scale = PaperScale {
            departments: d,
            ..Default::default()
        };
        let db = super::fig3::rebuild_with(scale, DbConfig::default());

        // Eight separate queries.
        let t0 = Instant::now();
        let mut sql_scanned = 0;
        for (_, sql) in COMPONENT_QUERIES {
            let r = db.query(sql).unwrap();
            sql_scanned += r.stats.rows_scanned;
        }
        let sql_time = t0.elapsed();

        // One XNF query.
        let t0 = Instant::now();
        let r = db.query(DEPS_ARC).unwrap();
        let xnf_time = t0.elapsed();
        let xnf_scanned = r.stats.rows_scanned;
        let xnf_batches = r.stats.batches_emitted;
        let xnf_peak_batch = r.stats.peak_batch_rows;

        // Ablation: XNF without shared-subexpression materialisation.
        let no_cse_db = super::fig3::rebuild_with(
            scale,
            DbConfig {
                plan: PlanOptions {
                    share_common_subexpressions: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let _ = no_cse_db.query(DEPS_ARC).unwrap();
        let no_cse_time = t0.elapsed();

        out.push(Fig56Point {
            departments: d,
            sql_8_queries: sql_time,
            sql_rows_scanned: sql_scanned,
            xnf_single_query: xnf_time,
            xnf_rows_scanned: xnf_scanned,
            xnf_batches,
            xnf_peak_batch,
            xnf_no_cse: no_cse_time,
            speedup: super::speedup(sql_time, xnf_time),
        });
    }
    out
}

pub fn render_fig56(points: &[Fig56Point]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figs. 5/6 — CO derivation: 8 separate SQL queries vs 1 XNF query (shared CSEs)"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>9} {:>10} {:>14} {:>9}",
        "depts",
        "SQL ms",
        "SQL rows",
        "XNF ms",
        "XNF rows",
        "batches",
        "peak rows",
        "XNF-noCSE ms",
        "speedup"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>12.2} {:>12} {:>12.2} {:>12} {:>9} {:>10} {:>14.2} {:>8.1}x",
            p.departments,
            super::ms(p.sql_8_queries),
            p.sql_rows_scanned,
            super::ms(p.xnf_single_query),
            p.xnf_rows_scanned,
            p.xnf_batches,
            p.xnf_peak_batch,
            super::ms(p.xnf_no_cse),
            p.speedup
        );
    }
    let _ = writeln!(
        s,
        "(the XNF derivation scans fewer rows because shared components are derived once)"
    );
    s
}

/// Correctness guard used by tests and the harness: the two derivations
/// agree on every component's key set.
pub fn verify_equivalence(db: &Database) {
    let co = db.query(DEPS_ARC).unwrap();
    for (name, sql) in COMPONENT_QUERIES {
        let Some(stream) = co.stream(name) else {
            continue;
        };
        let direct = db.query(sql).unwrap();
        // Compare on the first column (component key).
        let mut a: Vec<String> = stream.rows.iter().map(|r| r[0].to_string()).collect();
        let mut b: Vec<String> = direct
            .try_table()
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].to_string())
            .collect();
        a.sort();
        b.sort();
        if matches!(
            co.stream(name).unwrap().kind,
            xnf_qgm::OutputKind::Node | xnf_qgm::OutputKind::Table
        ) {
            assert_eq!(a, b, "component {name} differs between derivations");
        }
    }
}
