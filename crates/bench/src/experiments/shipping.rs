//! E6 — Sect. 5.3: page vs object vs query shipping.
//!
//! For one request ("the eno/ename of every ARC employee") each policy is
//! simulated over the same stored table; the table reports messages, bytes,
//! exposed tuples/attributes and simulated time — quantifying the paper's
//! qualitative comparison (page shipping exposes co-located data; object
//! shipping multiplies messages "by an order of magnitude"; query shipping
//! ships only what was asked).

use xnf_core::{simulate_shipping, ShippingPolicy, ShippingReport, TransportCost};
use xnf_fixtures::{build_paper_db, PaperScale};
use xnf_storage::Value;

#[derive(Debug, Clone)]
pub struct ShippingRow {
    pub policy: &'static str,
    pub report: ShippingReport,
}

pub fn run_shipping(departments: usize) -> Vec<ShippingRow> {
    let db = build_paper_db(PaperScale {
        departments,
        ..Default::default()
    });
    let table = db.catalog().table("EMP").unwrap();
    // Request: employees of ARC departments (edno < #ARC by generator
    // construction), projected to (eno, ename).
    let arc: Vec<i64> = db
        .query("SELECT dno FROM DEPT WHERE loc = 'ARC'")
        .unwrap()
        .try_table()
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    let mut rids = Vec::new();
    table
        .for_each(|rid, t| {
            if let Value::Int(d) = t.values[2] {
                if arc.contains(&d) {
                    rids.push(rid);
                }
            }
            Ok(true)
        })
        .unwrap();
    let cols = [0usize, 1];

    vec![
        ShippingRow {
            policy: "page shipping (ObjectStore-style)",
            report: simulate_shipping(&table, &rids, &cols, ShippingPolicy::PageShipping).unwrap(),
        },
        ShippingRow {
            policy: "object shipping (Versant-style)",
            report: simulate_shipping(&table, &rids, &cols, ShippingPolicy::ObjectShipping)
                .unwrap(),
        },
        ShippingRow {
            policy: "query shipping (RDBMS/XNF)",
            report: simulate_shipping(
                &table,
                &rids,
                &cols,
                ShippingPolicy::QueryShipping {
                    block_bytes: 32 * 1024,
                },
            )
            .unwrap(),
        },
    ]
}

pub fn render_shipping(rows: &[ShippingRow]) -> String {
    use std::fmt::Write;
    let cost = TransportCost::default();
    let mut s = String::new();
    let _ = writeln!(s, "Sect. 5.3 — shipping policies for one CO request");
    let _ = writeln!(
        s,
        "{:<36} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "policy", "msgs", "bytes", "exp.tuples", "exp.attrs", "sim ms"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<36} {:>8} {:>10} {:>12} {:>12} {:>9.2}",
            r.policy,
            r.report.messages,
            r.report.bytes,
            r.report.exposed_tuples,
            r.report.exposed_attributes,
            r.report.simulated_ms(cost)
        );
    }
    let _ = writeln!(
        s,
        "(paper: object shipping 'often increases the traffic … by an order of magnitude';\n\
         page shipping 'potentially can compromise security of the data';\n\
         RDBMS query shipping provides 'full integrity and security')"
    );
    s
}
