//! E8 — ablation: pointer swizzling in the cache.
//!
//! Sect. 5.1 builds the workspace "by converting connections into pointers";
//! Sect. 5.3 credits OODB pointer swizzling for main-memory navigation
//! speed. This ablation compares navigation through swizzled adjacency
//! against scanning the unswizzled connection table per step.

use std::time::{Duration, Instant};

use xnf_core::Workspace;
use xnf_fixtures::{build_oo1_db, Oo1Config, OO1_CO};

#[derive(Debug, Clone)]
pub struct SwizzlePoint {
    pub parts: usize,
    pub lookups: usize,
    pub swizzled: Duration,
    pub unswizzled: Duration,
    pub speedup: f64,
}

pub fn run_swizzle(parts: usize, lookups: usize) -> SwizzlePoint {
    let db = build_oo1_db(Oo1Config {
        parts,
        ..Default::default()
    });
    let co = db.fetch_co(OO1_CO).unwrap();
    let ws: &Workspace = &co.workspace;
    let n = ws.component("part").unwrap().len() as u32;

    // Swizzled: follow adjacency pointers.
    let t0 = Instant::now();
    let mut sum = 0u64;
    for i in 0..lookups {
        let id = (i as u32 * 2654435761) % n;
        for c in ws.children("conn", id).unwrap() {
            sum += c.id() as u64;
        }
    }
    let swizzled = t0.elapsed();

    // Unswizzled: scan the connection table per navigation.
    let t0 = Instant::now();
    let mut sum2 = 0u64;
    for i in 0..lookups {
        let id = (i as u32 * 2654435761) % n;
        for c in ws.children_unswizzled("conn", id).unwrap() {
            sum2 += c as u64;
        }
    }
    let unswizzled = t0.elapsed();
    assert_eq!(sum, sum2, "both navigation modes must agree");

    SwizzlePoint {
        parts,
        lookups,
        swizzled,
        unswizzled,
        speedup: super::speedup(unswizzled, swizzled),
    }
}

pub fn render_swizzle(p: &SwizzlePoint) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Swizzling ablation — {} parent→children navigations over {} parts:",
        p.lookups, p.parts
    );
    let _ = writeln!(
        s,
        "  swizzled pointers:   {:>9.3} ms",
        super::ms(p.swizzled)
    );
    let _ = writeln!(
        s,
        "  unswizzled scan:     {:>9.3} ms",
        super::ms(p.unswizzled)
    );
    let _ = writeln!(s, "  swizzling speedup:   {:>8.0}x", p.speedup);
    s
}
