//! Criterion wrapper around the workload harness's two drivers.
//!
//! The authoritative workload numbers (per-op-class latency percentiles,
//! oracle verdicts, the committed `BENCH_*.json` trajectory) come from the
//! `workload` CLI in `crates/workload`; this bench gives the same drivers
//! a criterion-style wall-clock trend line alongside the other
//! `bench_*` lanes, at a deliberately small scale. The oracle stays ON —
//! a perf number from a run that silently returned wrong answers is
//! worthless.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_workload::{run_tpcc, run_ycsb, TpccConfig, YcsbConfig};

fn bench_ycsb(c: &mut Criterion) {
    let cfg = YcsbConfig {
        records: 1_000,
        ops: 4_000,
        clients: 4,
        ..YcsbConfig::default()
    };
    c.bench_function("workload/ycsb_4k_ops_4_clients", |b| {
        b.iter(|| {
            let run = run_ycsb(&cfg);
            run.violations.assert_clean("bench ycsb");
            run.metrics.total_ops()
        })
    });
}

fn bench_tpcc(c: &mut Criterion) {
    let cfg = TpccConfig {
        txns: 1_000,
        clients: 4,
        ..TpccConfig::default()
    };
    c.bench_function("workload/tpcc_1k_txns_4_clients", |b| {
        b.iter(|| {
            let run = run_tpcc(&cfg);
            run.violations.assert_clean("bench tpcc");
            run.metrics.total_ops()
        })
    });
}

criterion_group!(benches, bench_ycsb, bench_tpcc);
criterion_main!(benches);
