//! Criterion bench for E4: navigational vs set-oriented CO extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_core::{navigational_extract, FetchStrategy, NavLevel, Server, TransportStats};
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};

fn bench(c: &mut Criterion) {
    let db = build_paper_db(PaperScale {
        departments: 25,
        ..Default::default()
    });
    let server = Server::new(db);
    let mut g = c.benchmark_group("extraction");
    g.sample_size(20);
    g.bench_function("navigational_query_per_parent", |b| {
        b.iter(|| {
            let mut stats = TransportStats::default();
            navigational_extract(
                &server,
                &mut stats,
                "SELECT dno, dname, loc FROM DEPT WHERE loc = 'ARC'",
                &[NavLevel {
                    query_prefix: "SELECT eno, ename, edno, sal FROM EMP WHERE edno =".into(),
                    parent_key_col: 0,
                }],
            )
            .unwrap()
        })
    });
    g.bench_function("set_oriented_whole_co", |b| {
        b.iter(|| {
            let mut stats = TransportStats::default();
            let r = server
                .fetch(
                    DEPS_ARC,
                    FetchStrategy::WholeCo {
                        max_bytes: 256 * 1024,
                    },
                    &mut stats,
                )
                .unwrap();
            r.streams.iter().map(|s| s.rows.len()).sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
