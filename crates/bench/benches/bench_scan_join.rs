//! Throughput of the core pipeline shapes the batch engine targets: a
//! 100k-row sequential scan, a 100k-row hash join, and a full CO fetch.
//! Record per-iteration times in CHANGES.md when the execution layer
//! changes — this is the perf-trajectory gate for the vectorized engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use xnf_core::Database;
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};
use xnf_storage::{Tuple, Value};

const ITEM_ROWS: usize = 100_000;
const GROUP_ROWS: usize = 1_000;

/// ITEMS(id, grp, val) with 100k rows joined against GROUPS(gid, flag).
fn build_scan_db() -> Database {
    let db = Database::new();
    db.execute_batch(
        "CREATE TABLE ITEMS (id INT NOT NULL, grp INT, val INT);
         CREATE TABLE GROUPS (gid INT NOT NULL, flag INT);",
    )
    .expect("schema");
    let items = db.catalog().table("ITEMS").unwrap();
    for i in 0..ITEM_ROWS {
        items
            .insert(&Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i % GROUP_ROWS) as i64),
                Value::Int((i * 7 % 1000) as i64),
            ]))
            .unwrap();
    }
    let groups = db.catalog().table("GROUPS").unwrap();
    for g in 0..GROUP_ROWS {
        groups
            .insert(&Tuple::new(vec![
                Value::Int(g as i64),
                Value::Int((g % 2) as i64),
            ]))
            .unwrap();
    }
    db.execute_batch("ANALYZE;").unwrap();
    db
}

fn bench_scan_join(c: &mut Criterion) {
    let db = build_scan_db();

    c.bench_function("seq_scan_filter_100k", |b| {
        let session = db.session();
        b.iter(|| {
            let r = session
                .query("SELECT COUNT(*) FROM ITEMS WHERE val < 500", &[])
                .unwrap();
            black_box(r.streams[0].rows[0][0].clone());
        })
    });

    c.bench_function("hash_join_100k", |b| {
        let session = db.session();
        b.iter(|| {
            let r = session
                .query(
                    "SELECT COUNT(*) FROM ITEMS i, GROUPS g \
                     WHERE i.grp = g.gid AND g.flag = 1",
                    &[],
                )
                .unwrap();
            black_box(r.streams[0].rows[0][0].clone());
        })
    });

    c.bench_function("scan_project_limit_100k", |b| {
        let session = db.session();
        b.iter(|| {
            let r = session
                .query("SELECT id, val FROM ITEMS WHERE val < 990 LIMIT 64", &[])
                .unwrap();
            black_box(r.streams[0].rows.len());
        })
    });

    let co_db = build_paper_db(PaperScale {
        departments: 400,
        employees_per_dept: 20,
        projects_per_dept: 5,
        skills: 500,
        ..Default::default()
    });
    c.bench_function("co_fetch_deps_arc", |b| {
        b.iter(|| {
            let r = co_db.query(DEPS_ARC).unwrap();
            black_box(r.stats.rows_emitted);
        })
    });
}

criterion_group!(benches, bench_scan_join);
criterion_main!(benches);
