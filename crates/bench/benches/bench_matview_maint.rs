//! Commit-time materialized-view maintenance microbenches for the
//! batched, parallel, off-critical-path pipeline:
//!
//! 1. **diff splice**: a single-row base UPDATE re-splices one root
//!    subtree, reusing every value-identical stored node (only the
//!    changed branch is written);
//! 2. **coalesce**: a transaction hammering the same hot row N times
//!    commits one net delta — the root re-extracts once, not N times;
//! 3. **parallel re-extract**: a commit touching many independent root
//!    keys runs its pre-lock re-extractions on the dop-capped pool
//!    (dop 1 vs dop 4 on the same workload);
//! 4. **refresh baseline**: `REFRESH MATERIALIZED VIEW` at the same
//!    scale, for context on what the incremental path avoids.
//!
//! CI's bench smoke builds this target; run it locally with
//! `cargo bench -p xnf-bench --bench bench_matview_maint`.

use criterion::{criterion_group, criterion_main, Criterion};

use xnf_core::{Database, DbConfig};
use xnf_fixtures::{build_paper_db_with, PaperScale, DEPS_ARC};
use xnf_plan::PlanOptions;

const EMPS_PER_DEPT: usize = 8;

/// Paper fixture with *every* department in the CO view (worst-case
/// maintenance fan-in) and the given re-extraction dop.
fn maint_db(departments: usize, dop: usize) -> Database {
    let db = build_paper_db_with(
        PaperScale {
            departments,
            arc_fraction: 1.0,
            employees_per_dept: EMPS_PER_DEPT,
            projects_per_dept: 2,
            skills: 50,
            skills_per_employee: 2,
            skills_per_project: 1,
            seed: 17,
        },
        DbConfig {
            plan: PlanOptions {
                dop,
                allow_oversubscribe: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    db.execute(&format!("CREATE MATERIALIZED VIEW hot_deps AS {DEPS_ARC}"))
        .expect("materialize CO view");
    db
}

/// Employee `k` of department `d` (the fixture numbers enos densely).
fn eno(d: usize, k: usize) -> usize {
    d * EMPS_PER_DEPT + k
}

fn bench_diff_splice(c: &mut Criterion) {
    let db = maint_db(64, 1);
    let mut g = c.benchmark_group("maint");
    let mut i = 0u64;
    g.bench_function("single_row_update", |b| {
        b.iter(|| {
            i += 1;
            db.execute(&format!(
                "UPDATE EMP SET ename = 'b-{i}' WHERE eno = {}",
                eno(3, 1)
            ))
            .unwrap();
        })
    });
    g.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let db = maint_db(64, 1);
    let session = db.session();
    let mut g = c.benchmark_group("maint");
    let mut i = 0u64;
    g.bench_function("hot_row_x16_coalesced", |b| {
        b.iter(|| {
            session.begin().unwrap();
            for _ in 0..16 {
                i += 1;
                session
                    .execute(
                        &format!("UPDATE EMP SET ename = 'c-{i}' WHERE eno = {}", eno(5, 2)),
                        &[],
                    )
                    .unwrap();
            }
            session.commit().unwrap();
        })
    });
    g.finish();
}

fn bench_parallel_reextract(c: &mut Criterion) {
    let mut g = c.benchmark_group("maint_multi_root_x8");
    for dop in [1usize, 4] {
        let db = maint_db(64, dop);
        let session = db.session();
        let mut i = 0u64;
        g.bench_function(&format!("dop{dop}"), |b| {
            b.iter(|| {
                session.begin().unwrap();
                for d in 0..8 {
                    i += 1;
                    session
                        .execute(
                            &format!(
                                "UPDATE EMP SET ename = 'p-{i}' WHERE eno = {}",
                                eno(d * 8, 3)
                            ),
                            &[],
                        )
                        .unwrap();
                }
                session.commit().unwrap();
            })
        });
    }
    g.finish();
}

fn bench_refresh_baseline(c: &mut Criterion) {
    let db = maint_db(64, 1);
    let mut g = c.benchmark_group("maint");
    g.sample_size(10);
    g.bench_function("refresh_baseline", |b| {
        b.iter(|| {
            db.execute("REFRESH MATERIALIZED VIEW hot_deps").unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diff_splice,
    bench_coalesce,
    bench_parallel_reextract,
    bench_refresh_baseline
);
criterion_main!(benches);
