//! Criterion bench for E8: swizzled pointers vs unswizzled connection scan.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_fixtures::{build_oo1_db, Oo1Config, OO1_CO};

fn bench(c: &mut Criterion) {
    let db = build_oo1_db(Oo1Config {
        parts: 5_000,
        ..Default::default()
    });
    let co = db.fetch_co(OO1_CO).unwrap();
    let ws = &co.workspace;
    let n = ws.component("part").unwrap().len() as u32;
    let mut g = c.benchmark_group("navigation");
    let mut i = 0u32;
    g.bench_function("swizzled_pointers", |b| {
        b.iter(|| {
            i = (i + 2654435761u32.wrapping_mul(1)) % n;
            ws.children("conn", i).unwrap().count()
        })
    });
    let mut j = 0u32;
    g.bench_function("unswizzled_scan", |b| {
        b.iter(|| {
            j = (j + 2654435761u32.wrapping_mul(1)) % n;
            ws.children_unswizzled("conn", j).unwrap().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
