//! Criterion bench for E2 (Fig. 3): naive correlated-subquery execution vs
//! the E-to-F rewritten semijoin.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_bench::experiments::fig3::{rebuild_with, FIG3_QUERY};
use xnf_core::{DbConfig, RewriteOptions};
use xnf_fixtures::PaperScale;

fn bench(c: &mut Criterion) {
    let scale = PaperScale {
        departments: 40,
        arc_fraction: 0.1,
        employees_per_dept: 25,
        projects_per_dept: 1,
        skills: 10,
        skills_per_employee: 0,
        skills_per_project: 0,
        ..Default::default()
    };
    let fast = rebuild_with(scale, DbConfig::default());
    let naive = rebuild_with(
        scale,
        DbConfig {
            rewrite: RewriteOptions {
                e_to_f: false,
                simplify: true,
            },
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("fig3_exists");
    g.bench_function("rewritten_semijoin", |b| {
        b.iter(|| {
            fast.query(FIG3_QUERY)
                .unwrap()
                .try_table()
                .unwrap()
                .rows
                .len()
        })
    });
    g.bench_function("naive_subquery", |b| {
        b.iter(|| {
            naive
                .query(FIG3_QUERY)
                .unwrap()
                .try_table()
                .unwrap()
                .rows
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
