//! Criterion bench for E3 (Figs. 5/6): eight separate component queries vs
//! one shared-CSE XNF query.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_bench::COMPONENT_QUERIES;
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};

fn bench(c: &mut Criterion) {
    let db = build_paper_db(PaperScale {
        departments: 50,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig56_derivation");
    g.bench_function("sql_8_queries", |b| {
        b.iter(|| {
            let mut rows = 0;
            for (_, sql) in COMPONENT_QUERIES {
                rows += db.query(sql).unwrap().try_table().unwrap().rows.len();
            }
            rows
        })
    });
    g.bench_function("xnf_single_query", |b| {
        b.iter(|| {
            let r = db.query(DEPS_ARC).unwrap();
            r.streams.iter().map(|s| s.rows.len()).sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
