//! Morsel-driven parallelism scaling: the same scan/filter, hash join,
//! grouped aggregate and CO extraction measured at dop 1/2/4/8 under the
//! default (production) plan options, where the effective dop clamps to
//! the host's core count. The detected core count is printed first — read
//! the numbers against it: on a multi-core host dop N should approach N×
//! on scan-heavy shapes up to the core count; on a single-core host every
//! row clamps to serial, so dop > 1 must sit within noise of dop 1 (the
//! knob degrades gracefully, it never oversubscribes). Record per-dop
//! numbers in BENCH_7.json when the parallel executor changes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use xnf_core::{Database, DbConfig};
use xnf_fixtures::{build_paper_db_with, PaperScale, DEPS_ARC};
use xnf_plan::PlanOptions;
use xnf_storage::{Tuple, Value};

const ITEM_ROWS: usize = 100_000;
const GROUP_ROWS: usize = 1_000;

fn config(dop: usize) -> DbConfig {
    DbConfig {
        plan: PlanOptions {
            dop,
            // The fixture tables are big enough that the default gate
            // would pass too, but pin it for stability.
            parallel_min_pages: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// ITEMS(id, grp, val) with 100k rows joined against GROUPS(gid, flag).
fn build_scan_db(dop: usize) -> Database {
    let db = Database::with_config(config(dop));
    db.execute_batch(
        "CREATE TABLE ITEMS (id INT NOT NULL, grp INT, val INT);
         CREATE TABLE GROUPS (gid INT NOT NULL, flag INT);",
    )
    .expect("schema");
    let items = db.catalog().table("ITEMS").unwrap();
    for i in 0..ITEM_ROWS {
        items
            .insert(&Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i % GROUP_ROWS) as i64),
                Value::Int((i * 7 % 1000) as i64),
            ]))
            .unwrap();
    }
    let groups = db.catalog().table("GROUPS").unwrap();
    for g in 0..GROUP_ROWS {
        groups
            .insert(&Tuple::new(vec![
                Value::Int(g as i64),
                Value::Int((g % 2) as i64),
            ]))
            .unwrap();
    }
    db.execute_batch("ANALYZE;").unwrap();
    db
}

fn bench_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("bench_parallel: detected {cores} core(s)");
    let dops: [usize; 4] = [1, 2, 4, 8];
    println!(
        "bench_parallel: measuring dops {dops:?} (each clamps to effective dop min(dop, {cores}))"
    );

    for &dop in &dops {
        let db = build_scan_db(dop);

        c.bench_function(&format!("par_scan_filter_100k_dop{dop}"), |b| {
            let session = db.session();
            b.iter(|| {
                let r = session
                    .query("SELECT COUNT(*) FROM ITEMS WHERE val < 500", &[])
                    .unwrap();
                black_box(r.streams[0].rows[0][0].clone());
            })
        });

        c.bench_function(&format!("par_hash_join_100k_dop{dop}"), |b| {
            let session = db.session();
            b.iter(|| {
                let r = session
                    .query(
                        "SELECT COUNT(*) FROM ITEMS i, GROUPS g \
                         WHERE i.grp = g.gid AND g.flag = 1",
                        &[],
                    )
                    .unwrap();
                black_box(r.streams[0].rows[0][0].clone());
            })
        });

        c.bench_function(&format!("par_group_agg_100k_dop{dop}"), |b| {
            let session = db.session();
            b.iter(|| {
                let r = session
                    .query(
                        "SELECT grp, COUNT(*), MIN(val), MAX(val) FROM ITEMS GROUP BY grp",
                        &[],
                    )
                    .unwrap();
                black_box(r.streams[0].rows.len());
            })
        });
    }

    // CO extraction: the paper-workload composite-object fetch, with its
    // output streams delivered by the dop-capped worker pool.
    for &dop in &dops {
        let db = build_paper_db_with(
            PaperScale {
                departments: 40,
                employees_per_dept: 25,
                projects_per_dept: 5,
                skills: 60,
                ..Default::default()
            },
            config(dop),
        );
        c.bench_function(&format!("par_co_extraction_dop{dop}"), |b| {
            b.iter(|| {
                let r = db.query_parallel(DEPS_ARC).unwrap();
                black_box(r.streams.len());
            })
        });
    }
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
