//! Criterion bench for E5: OO1 depth-7 traversal through the XNF cache.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_bench::experiments::cache_exp::traverse_cache;
use xnf_fixtures::{build_oo1_db, Oo1Config, OO1_CO};

fn bench(c: &mut Criterion) {
    let db = build_oo1_db(Oo1Config {
        parts: 10_000,
        ..Default::default()
    });
    let co = db.fetch_co(OO1_CO).unwrap();
    let ws = &co.workspace;
    let n = ws.component("part").unwrap().len() as u32;
    let mut start = 0u32;
    c.bench_function("oo1_traversal_depth7", |b| {
        b.iter(|| {
            start = (start + 7919) % n;
            traverse_cache(ws, start, 7)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
