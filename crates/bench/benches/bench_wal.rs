//! Commit throughput under the write-ahead log: N session threads issue
//! single-row autocommit UPDATEs (one commit — and one durable log flush —
//! each) against a file-backed database, with the commit fsync on or off.
//!
//! What the numbers show:
//!
//! - `fsync_on/1sessions` is the per-commit-fsync floor: every commit pays
//!   its own disk sync.
//! - `fsync_on/{4,8}sessions` is group commit earning its keep: concurrent
//!   committers share one fsync per batch, so per-thread commit cost drops
//!   well below the 1-session floor (the acceptance gauge; the measured
//!   mean group batch size is printed after each config).
//! - `fsync_off/*` prices the log append + OS write alone (commits still
//!   survive process kills, not machine crashes).
//!
//! Threads update disjoint account ranges, so no commit is lost to a
//! write-write conflict and every iteration commits exactly
//! `threads × OPS_PER_THREAD` transactions. Automatic checkpoints are
//! disabled to keep iterations uniform.
//!
//! The `wal_doublewrite` group prices torn-page protection instead: same
//! storm, fsync off, but with a small automatic checkpoint interval so
//! dirty pages are flushed *during* the run — with the double-write
//! buffer on vs. off. The delta is the write-amplification cost of
//! writing every flushed image twice (DW append + fsync, then in place);
//! the integrity counters printed after each config show how many DW
//! batches the run actually paid for (BENCH_10.json records the verdict).

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xnf_core::client_server::run_sessions;
use xnf_core::{Database, DbConfig, TempDir, Value};

const OPS_PER_THREAD: usize = 32;
/// Accounts per thread partition (largest thread count gets full coverage).
const PER_THREAD_ROWS: i64 = 16;
const MAX_THREADS: usize = 8;

fn durable_db(dir: &TempDir, fsync: bool) -> Arc<Database> {
    durable_db_cfg(dir, fsync, true, 0)
}

fn durable_db_cfg(
    dir: &TempDir,
    fsync: bool,
    doublewrite: bool,
    checkpoint_interval: u64,
) -> Arc<Database> {
    let db = Database::open_with_config(DbConfig {
        data_dir: Some(dir.path().to_path_buf()),
        wal_fsync: fsync,
        doublewrite,
        checkpoint_interval,
        ..DbConfig::default()
    })
    .unwrap();
    db.execute("CREATE TABLE ACCT (id INT NOT NULL, bal INT)")
        .unwrap();
    db.execute("CREATE INDEX acct_id ON ACCT (id)").unwrap();
    for i in 0..(MAX_THREADS as i64 * PER_THREAD_ROWS) {
        db.execute(&format!("INSERT INTO ACCT VALUES ({i}, 100)"))
            .unwrap();
    }
    Arc::new(db)
}

/// One batch: every thread commits `OPS_PER_THREAD` single-row updates in
/// its own account range. Returns the commit count (asserted conflict-free).
fn commit_storm(db: &Arc<Database>, threads: usize) -> usize {
    let done: Vec<usize> = run_sessions(db, threads, |i, session| {
        let base = i as i64 * PER_THREAD_ROWS;
        let mut update = session
            .prepare("UPDATE ACCT SET bal = bal + 1 WHERE id = ?")
            .unwrap();
        let mut commits = 0usize;
        for n in 0..OPS_PER_THREAD {
            let id = base + (n as i64 % PER_THREAD_ROWS);
            commits += update.execute_with(&[Value::Int(id)]).unwrap().affected();
        }
        commits
    });
    done.into_iter().sum()
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit");
    group.measurement_time(Duration::from_secs(2));

    for &fsync in &[true, false] {
        let label = if fsync { "fsync_on" } else { "fsync_off" };
        for &threads in &[1usize, 2, 4, 8] {
            let dir = TempDir::new("bench-wal");
            let db = durable_db(&dir, fsync);
            let before = db.wal_stats().unwrap();
            group.bench_function(&format!("{label}/{threads}sessions"), |b| {
                b.iter(|| black_box(commit_storm(&db, threads)))
            });
            // Group-commit shape for this config: how many commits each
            // log flush amortized (1.0 = no batching possible).
            let s = db.wal_stats().unwrap();
            let batches = s.group_commit_batches - before.group_commit_batches;
            let commits = s.group_commit_commits - before.group_commit_commits;
            println!(
                "    -> group commit: {commits} commits in {batches} flushes \
                 (mean batch {:.2}), {} fsyncs",
                commits as f64 / batches.max(1) as f64,
                s.fsyncs - before.fsyncs,
            );
        }
    }

    group.finish();
}

/// Write-amplification cost of torn-page protection: the same commit
/// storm with automatic checkpoints flushing dirty pages mid-run, with
/// the double-write buffer on vs. off. Commit fsync stays off so the
/// page-flush path (the only part doublewrite touches) dominates the
/// difference.
fn bench_doublewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_doublewrite");
    group.measurement_time(Duration::from_secs(2));

    for &dw in &[true, false] {
        let label = if dw {
            "doublewrite_on"
        } else {
            "doublewrite_off"
        };
        for &threads in &[1usize, 4] {
            let dir = TempDir::new("bench-wal-dw");
            // 64 KiB of log per checkpoint: a handful of automatic fuzzy
            // checkpoints (and page flushes) per iteration.
            let db = durable_db_cfg(&dir, false, dw, 64 * 1024);
            let before = db.integrity_stats();
            group.bench_function(&format!("{label}/{threads}sessions"), |b| {
                b.iter(|| black_box(commit_storm(&db, threads)))
            });
            let s = db.integrity_stats();
            println!(
                "    -> doublewrite={}: {} page writes in {} dw batches, \
                 {} reads verified, {} torn repairs",
                if dw { "on" } else { "off" },
                s.writes - before.writes,
                s.dw_batches - before.dw_batches,
                s.pages_verified - before.pages_verified,
                s.torn_pages_repaired - before.torn_pages_repaired,
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_wal, bench_doublewrite);
criterion_main!(benches);
