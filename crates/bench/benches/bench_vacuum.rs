//! Steady-state write throughput with and without MVCC garbage collection.
//!
//! The workload is the degenerate worst case for an append-only MVCC
//! engine: a tight single-row UPDATE loop. Every update appends a version
//! and a commit stamp; without GC the heap, the index posting list for the
//! hot key and the stamp table all grow O(updates), so per-op cost climbs
//! as the run proceeds. With the opportunistic vacuum (default
//! `DbConfig::auto_vacuum_threshold`) all three stay bounded and the
//! throughput holds flat — the `size after` lines printed at the end show
//! the resource gap directly (the CI `gc-soak` job asserts the bounds; this
//! bench records the perf trajectory).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xnf_core::{Database, DbConfig, Value};

const OPS_PER_ITER: usize = 1_000;

fn setup(auto_vacuum_threshold: u64) -> Database {
    let db = Database::with_config(DbConfig {
        auto_vacuum_threshold,
        ..DbConfig::default()
    });
    db.execute("CREATE TABLE ACCT (id INT NOT NULL, bal INT)")
        .unwrap();
    db.execute("CREATE UNIQUE INDEX acct_pk ON ACCT (id)")
        .unwrap();
    db.execute("INSERT INTO ACCT VALUES (1, 0)").unwrap();
    db
}

/// One measured batch: `OPS_PER_ITER` autocommit single-row updates
/// through a prepared statement.
fn run_updates(db: &Database, base: usize) -> usize {
    let session = db.session();
    let mut stmt = session
        .prepare("UPDATE ACCT SET bal = ? WHERE id = 1")
        .unwrap();
    let mut applied = 0;
    for i in 0..OPS_PER_ITER {
        applied += stmt
            .execute_with(&[Value::Int((base + i) as i64)])
            .unwrap()
            .affected();
    }
    applied
}

fn report_sizes(label: &str, db: &Database) {
    let table = db.catalog().table("ACCT").unwrap();
    let census = table.version_census().unwrap();
    let gc = db.gc_stats();
    eprintln!(
        "vacuum/{label}: size after: heap_pages={} versions={} dead={} \
         stamps={} vacuum_runs={} reclaimed_total={}",
        table.page_count(),
        census.total_versions,
        census.dead,
        db.catalog().txns().stamp_count(),
        gc.vacuum_runs,
        gc.versions_reclaimed,
    );
}

fn bench_vacuum(c: &mut Criterion) {
    let mut group = c.benchmark_group("vacuum");
    group.measurement_time(Duration::from_secs(2));

    // GC on (default opportunistic threshold): throughput must hold flat.
    {
        let db = setup(DbConfig::default().auto_vacuum_threshold);
        let mut base = 0usize;
        group.bench_function("update_loop/gc_on", |b| {
            b.iter(|| {
                base += OPS_PER_ITER;
                black_box(run_updates(&db, base))
            })
        });
        report_sizes("update_loop/gc_on", &db);
    }

    // GC off: same loop, monotonically degrading storage underneath.
    {
        let db = setup(0);
        let mut base = 0usize;
        group.bench_function("update_loop/gc_off", |b| {
            b.iter(|| {
                base += OPS_PER_ITER;
                black_box(run_updates(&db, base))
            })
        });
        report_sizes("update_loop/gc_off", &db);
    }

    // The cost of one explicit full-database VACUUM over a fixed backlog
    // (the manual-hammer path; the opportunistic path amortises this).
    {
        let db = setup(0);
        group.bench_function("explicit_pass/1k_backlog", |b| {
            b.iter(|| {
                run_updates(&db, 0);
                let report = db.vacuum(None).unwrap();
                black_box(report.versions_reclaimed())
            })
        });
        report_sizes("explicit_pass/1k_backlog", &db);
    }

    group.finish();
}

criterion_group!(benches, bench_vacuum);
criterion_main!(benches);
