//! Materialized-view serving and maintenance under a 100k-row base.
//!
//! Three comparisons, quoted in CHANGES.md / README:
//!
//! 1. **point CO fetch**: on-demand extraction of one department's CO
//!    (restricted `deps_ARC` through the full pipeline) vs
//!    [`Database::fetch_co_point`] over the materialized view's stored
//!    streams (acceptance: materialized ≥ 5x faster);
//! 2. **maintenance**: a single-row base UPDATE flowing through
//!    incremental delta maintenance vs `REFRESH MATERIALIZED VIEW`
//!    (acceptance: incremental ≥ 10x faster);
//! 3. **relational point query**: `SELECT … WHERE grp = ?` against a
//!    materialized join view (IndexEq over backing storage) vs evaluating
//!    the join on demand — plus a mixed read/write workload combining
//!    point reads with occasional updates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use xnf_core::{Database, Value};
use xnf_fixtures::{build_paper_db, PaperScale, DEPS_ARC};
use xnf_storage::Tuple;

/// 5000 departments × 20 employees = 100k EMP rows (plus 100k EMPSKILLS).
fn co_db() -> Database {
    let db = build_paper_db(PaperScale {
        departments: 5_000,
        arc_fraction: 0.02,
        employees_per_dept: 20,
        projects_per_dept: 2,
        skills: 1_000,
        skills_per_employee: 1,
        skills_per_project: 2,
        seed: 9,
    });
    db.execute(&format!("CREATE MATERIALIZED VIEW hot_deps AS {DEPS_ARC}"))
        .expect("materialize CO view");
    db
}

fn bench_co_point(c: &mut Criterion) {
    let db = co_db();
    // Department 3 is inside the 2% ARC fraction.
    let restricted = DEPS_ARC.replace("TAKE *", "TAKE * WHERE xdept.dno = 3");

    let mut g = c.benchmark_group("co_point");
    g.bench_function("extract_on_demand", |b| {
        b.iter(|| {
            let co = db.fetch_co(&restricted).unwrap();
            black_box(co.workspace.tuple_count());
        })
    });
    g.bench_function("matview_fetch", |b| {
        b.iter(|| {
            let co = db.fetch_co_point("hot_deps", &Value::Int(3)).unwrap();
            black_box(co.workspace.tuple_count());
        })
    });
    g.finish();

    let mut g = c.benchmark_group("maintain");
    let session = db.session();
    let mut update = session
        .prepare("UPDATE EMP SET sal = ? WHERE eno = ?")
        .unwrap();
    let mut sal = 100.0f64;
    g.bench_function("incremental_single_update", |b| {
        b.iter(|| {
            sal = if sal > 150.0 { 100.0 } else { sal + 0.25 };
            // eno 65 lives in ARC department 3: the delta walks up to one
            // root key and re-extracts that subtree only.
            let n = update
                .execute_with(&[Value::Double(sal), Value::Int(65)])
                .unwrap()
                .affected();
            black_box(n);
        })
    });
    g.bench_function("refresh_full_recompute", |b| {
        b.iter(|| {
            db.execute("REFRESH MATERIALIZED VIEW hot_deps").unwrap();
        })
    });
    g.finish();
}

const ITEM_ROWS: usize = 100_000;
const GROUP_ROWS: usize = 1_000;

fn sql_db() -> Database {
    let db = Database::new();
    db.execute_batch(
        "CREATE TABLE ITEMS (id INT NOT NULL, grp INT, val INT);
         CREATE TABLE GROUPS (gid INT NOT NULL, flag INT);
         CREATE UNIQUE INDEX items_id ON ITEMS (id);
         CREATE INDEX items_grp ON ITEMS (grp);
         CREATE UNIQUE INDEX groups_gid ON GROUPS (gid);",
    )
    .expect("schema");
    let items = db.catalog().table("ITEMS").unwrap();
    for i in 0..ITEM_ROWS {
        items
            .insert(&Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i % GROUP_ROWS) as i64),
                Value::Int((i * 7 % 1000) as i64),
            ]))
            .unwrap();
    }
    let groups = db.catalog().table("GROUPS").unwrap();
    for g in 0..GROUP_ROWS {
        groups
            .insert(&Tuple::new(vec![
                Value::Int(g as i64),
                Value::Int((g % 2) as i64),
            ]))
            .unwrap();
    }
    db.execute_batch("ANALYZE;").unwrap();
    db.execute(
        "CREATE MATERIALIZED VIEW by_grp AS \
         SELECT i.grp, i.id, i.val, g.flag FROM ITEMS i, GROUPS g WHERE i.grp = g.gid",
    )
    .expect("materialize join view");
    db
}

fn bench_sql_point(c: &mut Criterion) {
    let db = sql_db();
    let session = db.session();

    let mut g = c.benchmark_group("sql_point");
    let mut on_demand = session
        .prepare(
            "SELECT i.grp, i.id, i.val, g.flag FROM ITEMS i, GROUPS g \
             WHERE i.grp = g.gid AND i.grp = ?",
        )
        .unwrap();
    g.bench_function("join_on_demand", |b| {
        b.iter(|| {
            let r = on_demand.execute_with(&[Value::Int(37)]).unwrap();
            black_box(r.try_rows().unwrap().streams[0].rows.len());
        })
    });
    let mut mv_point = session
        .prepare("SELECT * FROM by_grp WHERE grp = ?")
        .unwrap();
    g.bench_function("matview_indexeq", |b| {
        b.iter(|| {
            let r = mv_point.execute_with(&[Value::Int(37)]).unwrap();
            black_box(r.try_rows().unwrap().streams[0].rows.len());
        })
    });
    g.finish();

    // Mixed read/write: 20 point reads + 1 single-row update per round.
    let mut g = c.benchmark_group("mixed_workload");
    let mut upd = session
        .prepare("UPDATE ITEMS SET val = ? WHERE id = ?")
        .unwrap();
    let mut v = 0i64;
    g.bench_function("reads_on_demand", |b| {
        b.iter(|| {
            for k in 0..20 {
                let r = on_demand
                    .execute_with(&[Value::Int(k * 41 % 1000)])
                    .unwrap();
                black_box(r.try_rows().unwrap().streams[0].rows.len());
            }
            v += 1;
            upd.execute_with(&[Value::Int(v % 1000), Value::Int(37_037)])
                .unwrap();
        })
    });
    g.bench_function("reads_materialized", |b| {
        b.iter(|| {
            for k in 0..20 {
                let r = mv_point.execute_with(&[Value::Int(k * 41 % 1000)]).unwrap();
                black_box(r.try_rows().unwrap().streams[0].rows.len());
            }
            v += 1;
            upd.execute_with(&[Value::Int(v % 1000), Value::Int(37_037)])
                .unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_co_point, bench_sql_point);
criterion_main!(benches);
