//! Prepared-statement bench: one-shot `query()` (full parse → QGM → rewrite
//! → plan pipeline per call) vs a prepared `execute()` over the shared plan
//! cache, for 1k repeated parameterized point queries — the prepare-once/
//! execute-many speedup recorded in the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use xnf_fixtures::{build_paper_db, PaperScale};
use xnf_storage::Value;

fn bench(c: &mut Criterion) {
    let db = build_paper_db(PaperScale {
        departments: 50,
        ..Default::default()
    });
    db.execute("CREATE INDEX emp_eno ON EMP (eno)").unwrap();
    let eno_count = 50 * PaperScale::default().employees_per_dept as i64;

    c.bench_function("point_query_one_shot_x1000", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for i in 0..1000i64 {
                let eno = i % eno_count;
                let r = db
                    .query(&format!("SELECT * FROM EMP WHERE eno = {eno}"))
                    .unwrap();
                rows += r.try_table().unwrap().rows.len();
            }
            rows
        })
    });

    c.bench_function("point_query_prepared_x1000", |b| {
        let session = db.session();
        let mut prepared = session.prepare("SELECT * FROM EMP WHERE eno = ?").unwrap();
        b.iter(|| {
            let mut rows = 0usize;
            for i in 0..1000i64 {
                let eno = i % eno_count;
                prepared.bind(&[Value::Int(eno)]).unwrap();
                let r = prepared.query().unwrap();
                rows += r.try_table().unwrap().rows.len();
            }
            rows
        })
    });

    c.bench_function("co_query_prepared_x100", |b| {
        let session = db.session();
        let mut prepared = session
            .prepare(
                "OUT OF xdept AS (SELECT * FROM DEPT),
                        xemp AS EMP,
                        employment AS (RELATE xdept VIA EMPLOYS, xemp
                                       WHERE xdept.dno = xemp.edno)
                 TAKE * WHERE xdept.loc = ?",
            )
            .unwrap();
        b.iter(|| {
            let mut rows = 0usize;
            for loc in ["ARC", "HDC"] {
                for _ in 0..50 {
                    prepared.bind(&[Value::Str(loc.to_string())]).unwrap();
                    let r = prepared.query().unwrap();
                    rows += r.streams.iter().map(|s| s.rows.len()).sum::<usize>();
                }
            }
            rows
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
