//! Multi-session throughput under the MVCC-lite engine: 1/2/4/8 session
//! threads over one shared `Arc<Database>`, read-only and 90/10
//! read/write mixed workloads.
//!
//! Each benchmark iteration runs a fixed per-thread operation budget
//! (`OPS_PER_THREAD`), so under perfect scaling the mean iteration time
//! stays flat as threads grow while total work grows linearly —
//! `throughput = threads × OPS_PER_THREAD / mean`. The read-only numbers
//! are the acceptance gauge for reader parallelism (per-frame page locks,
//! shared index locks, no global transaction slot); the mixed numbers show
//! writer interference (per-table write latch + version churn).

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use xnf_core::client_server::run_sessions;
use xnf_core::{Database, Value};
use xnf_fixtures::{build_paper_db, PaperScale};

/// Employees in the fixture (departments × employees_per_dept).
const EMPS: i64 = 50 * 20;
const OPS_PER_THREAD: usize = 200;

fn setup() -> Arc<Database> {
    Arc::new(build_paper_db(PaperScale {
        departments: 50,
        employees_per_dept: 20,
        projects_per_dept: 2,
        skills: 20,
        ..Default::default()
    }))
}

/// One batch: every session thread runs `OPS_PER_THREAD` operations,
/// `write_pct` percent of them single-row autocommit UPDATEs, the rest
/// prepared point queries through the `emp_pk` index.
fn run_batch(db: &Arc<Database>, threads: usize, write_pct: u32, seed: u64) -> usize {
    let rows: Vec<usize> = run_sessions(db, threads, |i, session| {
        let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64) << 32));
        let mut point = session
            .prepare("SELECT ename, sal FROM EMP WHERE eno = ?")
            .unwrap();
        let mut update = session
            .prepare("UPDATE EMP SET sal = sal + 1.0 WHERE eno = ?")
            .unwrap();
        let mut produced = 0usize;
        for _ in 0..OPS_PER_THREAD {
            let eno = rng.gen_range(0..EMPS);
            if rng.gen_range(0..100u32) < write_pct {
                // Autocommit single-row update; a conflict with a
                // concurrent writer is first-writer-wins and simply counts
                // as a lost round.
                match update.execute_with(&[Value::Int(eno)]) {
                    Ok(outcome) => produced += outcome.affected(),
                    Err(e) => assert!(e.to_string().contains("write conflict"), "{e}"),
                }
            } else {
                point.bind(&[Value::Int(eno)]).unwrap();
                let r = point.query().unwrap();
                produced += r.try_table().unwrap().rows.len();
            }
        }
        produced
    });
    rows.into_iter().sum()
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent");
    group.measurement_time(Duration::from_secs(2));

    for &threads in &[1usize, 2, 4, 8] {
        let db = setup();
        let mut seed = 0u64;
        group.bench_function(&format!("read_only/{threads}threads"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_batch(&db, threads, 0, seed))
            })
        });
    }

    for &threads in &[1usize, 2, 4, 8] {
        let db = setup();
        let mut seed = 1u64 << 60;
        group.bench_function(&format!("mixed_90_10/{threads}threads"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_batch(&db, threads, 10, seed))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
