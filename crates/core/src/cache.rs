//! The XNF cache: a client-side main-memory workspace holding a composite
//! object (Sect. 5, Fig. 7).
//!
//! The workspace is constructed from the heterogeneous output tuples of an
//! XNF query "by converting connections into pointers which allow traversing
//! the structure in any direction" — here: per-relationship adjacency
//! vectors (`forward` / `backward`), the swizzled form of the connection
//! tuples. Cursors (Sect. 5.2) come in two kinds: *independent* (all tuples
//! of a component) and *dependent* (children/parents of a tuple along a
//! relationship). Updates are recorded in a change log for write-back
//! (see [`crate::writeback`]).

use std::collections::HashMap;

use xnf_exec::{QueryResult, Row};
use xnf_qgm::OutputKind;
use xnf_storage::Value;

use crate::error::{Result, XnfError};

/// Identifier of a tuple within a component (its rowid in the CO).
pub type TupleId = u32;

/// One component table of a cached CO.
#[derive(Debug, Clone)]
pub struct Component {
    pub name: String,
    pub columns: Vec<String>,
    pub(crate) rows: Vec<Row>,
    /// Tombstones (client-side deletes).
    pub(crate) deleted: Vec<bool>,
    /// Rows at index >= this were inserted client-side (exposed so host
    /// mappings can distinguish fetched from locally created tuples).
    pub base_len: usize,
}

impl Component {
    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.rows.len() - self.deleted.iter().filter(|&&d| d).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw row access (includes deleted slots; use cursors for iteration).
    pub fn row(&self, id: TupleId) -> &Row {
        &self.rows[id as usize]
    }

    pub fn is_deleted(&self, id: TupleId) -> bool {
        self.deleted[id as usize]
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }
}

/// A relationship of a cached CO with swizzled adjacency.
#[derive(Debug, Clone)]
pub struct Relationship {
    pub name: String,
    pub role: String,
    /// Component index of the parent.
    pub parent: usize,
    /// Component indexes of the children (n-ary relationships have several).
    pub children: Vec<usize>,
    /// Connection instances: `[parent_id, child_ids...]`.
    pub(crate) connections: Vec<Vec<TupleId>>,
    /// `forward[c][parent_id]` = child ids of child slot `c`.
    pub(crate) forward: Vec<Vec<Vec<TupleId>>>,
    /// `backward[c][child_id]` = parent ids.
    pub(crate) backward: Vec<Vec<Vec<TupleId>>>,
}

impl Relationship {
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Connection instances as `[parent_id, child_ids...]` tuples.
    pub fn connections(&self) -> &[Vec<TupleId>] {
        &self.connections
    }
}

/// A cached composite object.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub components: Vec<Component>,
    pub relationships: Vec<Relationship>,
    pub(crate) comp_by_name: HashMap<String, usize>,
    pub(crate) rel_by_name: HashMap<String, usize>,
    pub(crate) changes: Vec<Change>,
}

/// One logged client-side change (for write-back).
#[derive(Debug, Clone)]
pub enum Change {
    Update {
        comp: usize,
        id: TupleId,
        old: Row,
        new: Row,
    },
    Insert {
        comp: usize,
        id: TupleId,
    },
    Delete {
        comp: usize,
        id: TupleId,
        old: Row,
    },
    Connect {
        rel: usize,
        conn: Vec<TupleId>,
    },
    Disconnect {
        rel: usize,
        conn: Vec<TupleId>,
    },
}

impl Workspace {
    /// Build a workspace from the heterogeneous stream set of an XNF query:
    /// node streams become components, connection streams are swizzled into
    /// adjacency pointers.
    pub fn from_result(result: &QueryResult) -> Result<Workspace> {
        let mut ws = Workspace::default();
        // Pass 1: components.
        for s in &result.streams {
            match &s.kind {
                OutputKind::Node | OutputKind::Table => {
                    let idx = ws.components.len();
                    ws.comp_by_name.insert(s.name.to_ascii_lowercase(), idx);
                    ws.components.push(Component {
                        name: s.name.clone(),
                        columns: s.columns.clone(),
                        rows: s.rows.clone(),
                        deleted: vec![false; s.rows.len()],
                        base_len: s.rows.len(),
                    });
                }
                OutputKind::Connection { .. } => {}
            }
        }
        // Pass 2: relationships (requires components in place).
        for s in &result.streams {
            if let OutputKind::Connection {
                relationship,
                parent,
                children,
                role,
            } = &s.kind
            {
                let parent_idx = *ws
                    .comp_by_name
                    .get(&parent.to_ascii_lowercase())
                    .ok_or_else(|| XnfError::Api(format!("connection stream '{relationship}' references missing component '{parent}'")))?;
                let mut child_idxs = Vec::with_capacity(children.len());
                for c in children {
                    child_idxs.push(*ws.comp_by_name.get(&c.to_ascii_lowercase()).ok_or_else(
                        || {
                            XnfError::Api(format!(
                                "connection stream '{relationship}' references missing component '{c}'"
                            ))
                        },
                    )?);
                }
                let connections: Vec<Vec<TupleId>> = s
                    .rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|v| v.as_int().map(|i| i as TupleId).map_err(XnfError::from))
                            .collect::<Result<Vec<TupleId>>>()
                    })
                    .collect::<Result<_>>()?;
                let idx = ws.relationships.len();
                ws.rel_by_name
                    .insert(relationship.to_ascii_lowercase(), idx);
                let mut rel = Relationship {
                    name: relationship.clone(),
                    role: role.clone(),
                    parent: parent_idx,
                    children: child_idxs,
                    connections,
                    forward: Vec::new(),
                    backward: Vec::new(),
                };
                swizzle(&mut rel, &ws.components);
                ws.relationships.push(rel);
            }
        }
        Ok(ws)
    }

    // -- lookup -------------------------------------------------------

    pub fn component(&self, name: &str) -> Result<&Component> {
        self.comp_by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.components[i])
            .ok_or_else(|| XnfError::Api(format!("no component '{name}' in cache")))
    }

    pub fn component_index(&self, name: &str) -> Result<usize> {
        self.comp_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| XnfError::Api(format!("no component '{name}' in cache")))
    }

    pub fn relationship(&self, name: &str) -> Result<&Relationship> {
        self.rel_by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.relationships[i])
            .ok_or_else(|| XnfError::Api(format!("no relationship '{name}' in cache")))
    }

    pub fn relationship_index(&self, name: &str) -> Result<usize> {
        self.rel_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| XnfError::Api(format!("no relationship '{name}' in cache")))
    }

    /// Total number of live tuples across components.
    pub fn tuple_count(&self) -> usize {
        self.components.iter().map(|c| c.len()).sum()
    }

    /// Total number of connections across relationships.
    pub fn connection_count(&self) -> usize {
        self.relationships.iter().map(|r| r.connections.len()).sum()
    }

    // -- cursors --------------------------------------------------------

    /// Independent cursor over a component's live tuples.
    pub fn independent(&self, component: &str) -> Result<IndependentCursor<'_>> {
        let comp = self.component_index(component)?;
        Ok(IndependentCursor {
            ws: self,
            comp,
            pos: 0,
        })
    }

    /// Dependent cursor: children of `parent_id` along `relationship`
    /// (child slot 0 for binary relationships).
    pub fn children(&self, relationship: &str, parent_id: TupleId) -> Result<DependentCursor<'_>> {
        self.children_slot(relationship, parent_id, 0)
    }

    /// Children in a specific child slot of an n-ary relationship.
    pub fn children_slot(
        &self,
        relationship: &str,
        parent_id: TupleId,
        slot: usize,
    ) -> Result<DependentCursor<'_>> {
        let rel = self.relationship_index(relationship)?;
        let r = &self.relationships[rel];
        if slot >= r.children.len() {
            return Err(XnfError::Api(format!(
                "relationship '{relationship}' has {} child slots",
                r.children.len()
            )));
        }
        let ids: &[TupleId] = r
            .forward
            .get(slot)
            .and_then(|f| f.get(parent_id as usize))
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        Ok(DependentCursor {
            ws: self,
            comp: r.children[slot],
            ids,
            pos: 0,
        })
    }

    /// Dependent cursor in the reverse direction: parents of a child tuple.
    pub fn parents(&self, relationship: &str, child_id: TupleId) -> Result<DependentCursor<'_>> {
        self.parents_slot(relationship, child_id, 0)
    }

    pub fn parents_slot(
        &self,
        relationship: &str,
        child_id: TupleId,
        slot: usize,
    ) -> Result<DependentCursor<'_>> {
        let rel = self.relationship_index(relationship)?;
        let r = &self.relationships[rel];
        let ids: &[TupleId] = r
            .backward
            .get(slot)
            .and_then(|b| b.get(child_id as usize))
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        Ok(DependentCursor {
            ws: self,
            comp: r.parent,
            ids,
            pos: 0,
        })
    }

    /// Unswizzled child lookup: scans the connection table instead of
    /// following pointers. Exists for the swizzling ablation (E8).
    pub fn children_unswizzled(
        &self,
        relationship: &str,
        parent_id: TupleId,
    ) -> Result<Vec<TupleId>> {
        let rel = self.relationship_index(relationship)?;
        let r = &self.relationships[rel];
        Ok(r.connections
            .iter()
            .filter(|c| c[0] == parent_id)
            .map(|c| c[1])
            .collect())
    }

    /// Evaluate a path expression (Sect. 2): alternating component and
    /// relationship names separated by dots, e.g.
    /// `xdept.employment.xemp.empproperty.xskills`. Returns the distinct
    /// target ids reachable from the (live) source tuples.
    pub fn path(&self, path: &str) -> Result<Vec<TupleId>> {
        let segments: Vec<&str> = path.split('.').map(str::trim).collect();
        if segments.len() < 3 || segments.len().is_multiple_of(2) {
            return Err(XnfError::Api(
                "path must alternate component.relationship.component...".to_string(),
            ));
        }
        let src = self.component_index(segments[0])?;
        let mut current: Vec<TupleId> = self.components[src]
            .rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.components[src].deleted[*i])
            .map(|(i, _)| i as TupleId)
            .collect();
        let mut current_comp = src;
        let mut i = 1;
        while i + 1 < segments.len() {
            let rel_name = segments[i];
            let target_name = segments[i + 1];
            let rel_idx = self.relationship_index(rel_name)?;
            let r = &self.relationships[rel_idx];
            // Forward or backward along this relationship?
            let target_idx = self.component_index(target_name)?;
            let (adj, next_comp): (&Vec<Vec<TupleId>>, usize) = if r.parent == current_comp {
                let slot = r
                    .children
                    .iter()
                    .position(|&c| c == target_idx)
                    .ok_or_else(|| {
                        XnfError::Api(format!(
                            "'{target_name}' is not a child of relationship '{rel_name}'"
                        ))
                    })?;
                (&r.forward[slot], r.children[slot])
            } else if r.children.contains(&current_comp) && r.parent == target_idx {
                let slot = r.children.iter().position(|&c| c == current_comp).unwrap();
                (&r.backward[slot], r.parent)
            } else {
                return Err(XnfError::Api(format!(
                    "relationship '{rel_name}' does not link '{}' to '{target_name}'",
                    self.components[current_comp].name
                )));
            };
            let mut seen = vec![false; self.components[next_comp].rows.len()];
            let mut next = Vec::new();
            for id in current {
                if let Some(ids) = adj.get(id as usize) {
                    for &t in ids {
                        if !seen[t as usize] && !self.components[next_comp].deleted[t as usize] {
                            seen[t as usize] = true;
                            next.push(t);
                        }
                    }
                }
            }
            next.sort();
            current = next;
            current_comp = next_comp;
            i += 2;
        }
        Ok(current)
    }

    // -- updates ---------------------------------------------------------

    /// Update one column of a cached tuple (logged for write-back).
    pub fn update_value(
        &mut self,
        component: &str,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<()> {
        let comp = self.component_index(component)?;
        let col = self.components[comp]
            .column_index(column)
            .ok_or_else(|| XnfError::Api(format!("no column '{column}' in '{component}'")))?;
        let c = &mut self.components[comp];
        if id as usize >= c.rows.len() || c.deleted[id as usize] {
            return Err(XnfError::Api(format!(
                "tuple {id} of '{component}' does not exist"
            )));
        }
        let old = c.rows[id as usize].clone();
        c.rows[id as usize][col] = value;
        let new = c.rows[id as usize].clone();
        self.changes.push(Change::Update { comp, id, old, new });
        Ok(())
    }

    /// Insert a new tuple into a component (no connections yet).
    pub fn insert_row(&mut self, component: &str, row: Row) -> Result<TupleId> {
        let comp = self.component_index(component)?;
        let c = &mut self.components[comp];
        if row.len() != c.columns.len() {
            return Err(XnfError::Api(format!(
                "'{component}' expects {} columns, got {}",
                c.columns.len(),
                row.len()
            )));
        }
        let id = c.rows.len() as TupleId;
        c.rows.push(row);
        c.deleted.push(false);
        // Grow adjacency vectors that index this component.
        for r in &mut self.relationships {
            if r.parent == comp {
                for f in &mut r.forward {
                    f.push(Vec::new());
                }
            }
            for (slot, &child) in r.children.clone().iter().enumerate() {
                if child == comp {
                    r.backward[slot].push(Vec::new());
                }
            }
        }
        self.changes.push(Change::Insert { comp, id });
        Ok(id)
    }

    /// Delete a tuple (tombstoned locally; connections to it are dropped).
    pub fn delete_row(&mut self, component: &str, id: TupleId) -> Result<()> {
        let comp = self.component_index(component)?;
        let c = &mut self.components[comp];
        if id as usize >= c.rows.len() || c.deleted[id as usize] {
            return Err(XnfError::Api(format!(
                "tuple {id} of '{component}' does not exist"
            )));
        }
        c.deleted[id as usize] = true;
        let old = c.rows[id as usize].clone();
        // Disconnect every connection touching the tuple.
        let rel_count = self.relationships.len();
        for rel in 0..rel_count {
            let touching: Vec<Vec<TupleId>> = {
                let r = &self.relationships[rel];
                let parent_hit = r.parent == comp;
                r.connections
                    .iter()
                    .filter(|conn| {
                        (parent_hit && conn[0] == id)
                            || r.children
                                .iter()
                                .enumerate()
                                .any(|(s, &cc)| cc == comp && conn[s + 1] == id)
                    })
                    .cloned()
                    .collect()
            };
            for conn in touching {
                self.remove_connection(rel, &conn)?;
            }
        }
        self.changes.push(Change::Delete { comp, id, old });
        Ok(())
    }

    /// Connect a parent tuple to child tuple(s) along a relationship.
    pub fn connect(&mut self, relationship: &str, conn: &[TupleId]) -> Result<()> {
        let rel = self.relationship_index(relationship)?;
        let r = &self.relationships[rel];
        if conn.len() != 1 + r.children.len() {
            return Err(XnfError::Api(format!(
                "relationship '{relationship}' connects 1 parent + {} children",
                r.children.len()
            )));
        }
        if r.connections.iter().any(|c| c == conn) {
            return Err(XnfError::Api("connection already exists".to_string()));
        }
        let conn = conn.to_vec();
        let r = &mut self.relationships[rel];
        r.connections.push(conn.clone());
        for (slot, _) in r.children.clone().iter().enumerate() {
            let (p, c) = (conn[0] as usize, conn[slot + 1] as usize);
            grow_to(&mut r.forward[slot], p + 1);
            r.forward[slot][p].push(conn[slot + 1]);
            grow_to(&mut r.backward[slot], c + 1);
            r.backward[slot][c].push(conn[0]);
        }
        self.changes.push(Change::Connect { rel, conn });
        Ok(())
    }

    /// Disconnect a connection instance.
    pub fn disconnect(&mut self, relationship: &str, conn: &[TupleId]) -> Result<()> {
        let rel = self.relationship_index(relationship)?;
        self.remove_connection(rel, conn)?;
        self.changes.push(Change::Disconnect {
            rel,
            conn: conn.to_vec(),
        });
        Ok(())
    }

    fn remove_connection(&mut self, rel: usize, conn: &[TupleId]) -> Result<()> {
        let r = &mut self.relationships[rel];
        let pos = r
            .connections
            .iter()
            .position(|c| c == conn)
            .ok_or_else(|| XnfError::Api("connection does not exist".to_string()))?;
        r.connections.swap_remove(pos);
        for slot in 0..r.children.len() {
            let (p, c) = (conn[0] as usize, conn[slot + 1] as usize);
            if let Some(v) = r.forward[slot].get_mut(p) {
                if let Some(i) = v.iter().position(|&x| x == conn[slot + 1]) {
                    v.swap_remove(i);
                }
            }
            if let Some(v) = r.backward[slot].get_mut(c) {
                if let Some(i) = v.iter().position(|&x| x == conn[0]) {
                    v.swap_remove(i);
                }
            }
        }
        Ok(())
    }

    /// Pending (unsynced) changes.
    pub fn pending_changes(&self) -> &[Change] {
        &self.changes
    }

    pub(crate) fn take_changes(&mut self) -> Vec<Change> {
        std::mem::take(&mut self.changes)
    }
}

fn grow_to<T: Default + Clone>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// Rebuild adjacency for a deserialized relationship, validating ids.
pub(crate) fn reswizzle(rel: &mut Relationship, components: &[Component]) -> Result<()> {
    for conn in &rel.connections {
        if conn.len() != 1 + rel.children.len() {
            return Err(XnfError::Api(
                "corrupt cache image: connection arity".to_string(),
            ));
        }
        if conn[0] as usize >= components[rel.parent].rows.len() {
            return Err(XnfError::Api(
                "corrupt cache image: parent id out of range".to_string(),
            ));
        }
        for (slot, &c) in rel.children.iter().enumerate() {
            if conn[slot + 1] as usize >= components[c].rows.len() {
                return Err(XnfError::Api(
                    "corrupt cache image: child id out of range".to_string(),
                ));
            }
        }
    }
    swizzle(rel, components);
    Ok(())
}

/// Build the swizzled adjacency vectors of a relationship.
fn swizzle(rel: &mut Relationship, components: &[Component]) {
    let parent_n = components[rel.parent].rows.len();
    rel.forward = rel
        .children
        .iter()
        .map(|_| vec![Vec::new(); parent_n])
        .collect();
    rel.backward = rel
        .children
        .iter()
        .map(|&c| vec![Vec::new(); components[c].rows.len()])
        .collect();
    for conn in &rel.connections {
        for slot in 0..rel.children.len() {
            let (p, c) = (conn[0] as usize, conn[slot + 1] as usize);
            rel.forward[slot][p].push(conn[slot + 1]);
            rel.backward[slot][c].push(conn[0]);
        }
    }
}

/// Iterator over the live tuples of a component.
pub struct IndependentCursor<'w> {
    ws: &'w Workspace,
    comp: usize,
    pos: usize,
}

impl<'w> Iterator for IndependentCursor<'w> {
    type Item = TupleRef<'w>;

    fn next(&mut self) -> Option<TupleRef<'w>> {
        let c = &self.ws.components[self.comp];
        while self.pos < c.rows.len() {
            let id = self.pos as TupleId;
            self.pos += 1;
            if !c.deleted[id as usize] {
                return Some(TupleRef {
                    ws: self.ws,
                    comp: self.comp,
                    id,
                });
            }
        }
        None
    }
}

/// Iterator over the tuples connected to a given tuple by a relationship.
pub struct DependentCursor<'w> {
    ws: &'w Workspace,
    comp: usize,
    ids: &'w [TupleId],
    pos: usize,
}

impl<'w> Iterator for DependentCursor<'w> {
    type Item = TupleRef<'w>;

    fn next(&mut self) -> Option<TupleRef<'w>> {
        while self.pos < self.ids.len() {
            let id = self.ids[self.pos];
            self.pos += 1;
            if !self.ws.components[self.comp].deleted[id as usize] {
                return Some(TupleRef {
                    ws: self.ws,
                    comp: self.comp,
                    id,
                });
            }
        }
        None
    }
}

impl<'w> DependentCursor<'w> {
    pub fn count_remaining(self) -> usize {
        self.count()
    }
}

/// A reference to one cached tuple.
#[derive(Clone, Copy)]
pub struct TupleRef<'w> {
    ws: &'w Workspace,
    comp: usize,
    id: TupleId,
}

impl<'w> TupleRef<'w> {
    pub fn id(&self) -> TupleId {
        self.id
    }

    pub fn component_name(&self) -> &'w str {
        &self.ws.components[self.comp].name
    }

    /// All column values.
    pub fn values(&self) -> &'w [Value] {
        &self.ws.components[self.comp].rows[self.id as usize]
    }

    /// Column by name.
    pub fn get(&self, column: &str) -> Result<&'w Value> {
        let c = &self.ws.components[self.comp];
        let col = c
            .column_index(column)
            .ok_or_else(|| XnfError::Api(format!("no column '{column}' in '{}'", c.name)))?;
        Ok(&c.rows[self.id as usize][col])
    }

    /// String column by name, without the `'…'` quoting that
    /// `Value as Display` adds (callers should never have to match quoted
    /// strings).
    pub fn get_str(&self, column: &str) -> Result<&'w str> {
        self.get(column)?
            .as_str()
            .map_err(|e| self.type_err(column, e))
    }

    /// Integer column by name (Int, or a Double with no fractional part).
    pub fn get_int(&self, column: &str) -> Result<i64> {
        self.get(column)?
            .as_int()
            .map_err(|e| self.type_err(column, e))
    }

    /// Float column by name (Double, coercing from Int).
    pub fn get_f64(&self, column: &str) -> Result<f64> {
        self.get(column)?
            .as_double()
            .map_err(|e| self.type_err(column, e))
    }

    fn type_err(&self, column: &str, e: xnf_storage::StorageError) -> XnfError {
        XnfError::Api(format!(
            "column '{column}' of '{}': {e}",
            self.ws.components[self.comp].name
        ))
    }

    /// Children along a relationship (dependent cursor shortcut).
    pub fn children(&self, relationship: &str) -> Result<DependentCursor<'w>> {
        self.ws.children(relationship, self.id)
    }

    /// Parents along a relationship.
    pub fn parents(&self, relationship: &str) -> Result<DependentCursor<'w>> {
        self.ws.parents(relationship, self.id)
    }
}

impl Workspace {
    /// Render the instance graphs as indented text (used by the shell's
    /// `.co` command — the analog of the paper's graphical browser).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (ci, c) in self.components.iter().enumerate() {
            let _ = writeln!(s, "component {} ({} tuples):", c.name, c.len());
            for t in self.independent(&c.name).expect("component exists") {
                let vals: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                let _ = writeln!(s, "  [{}] {}", t.id(), vals.join(", "));
                for r in &self.relationships {
                    if r.parent == ci {
                        for (slot, &child) in r.children.iter().enumerate() {
                            for cid in self
                                .children_slot(&r.name, t.id(), slot)
                                .expect("valid relationship")
                            {
                                let _ = writeln!(
                                    s,
                                    "      -{}-> {}[{}]",
                                    r.role,
                                    self.components[child].name,
                                    cid.id()
                                );
                            }
                        }
                    }
                }
            }
        }
        s
    }

    /// Render the cached CO as a Graphviz DOT graph: one node per component
    /// tuple, one edge per connection, clustered by component. The paper's
    /// prototype had "a graphical browsing facility for the data in the
    /// cache" (Sect. 5.2); piping this through `dot -Tsvg` is ours.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph co {{");
        let _ = writeln!(s, "  rankdir=LR; node [shape=record, fontsize=10];");
        for (ci, c) in self.components.iter().enumerate() {
            let _ = writeln!(s, "  subgraph cluster_{ci} {{");
            let _ = writeln!(s, "    label=\"{}\";", c.name);
            for t in self.independent(&c.name).expect("component exists") {
                let label: Vec<String> = t
                    .values()
                    .iter()
                    .map(|v| v.to_string().replace('"', "'").replace('|', "/"))
                    .collect();
                let _ = writeln!(s, "    n{ci}_{} [label=\"{}\"];", t.id(), label.join(" | "));
            }
            let _ = writeln!(s, "  }}");
        }
        for r in &self.relationships {
            for conn in &r.connections {
                for (slot, &child) in r.children.iter().enumerate() {
                    let _ = writeln!(
                        s,
                        "  n{}_{} -> n{}_{} [label=\"{}\", fontsize=8];",
                        r.parent,
                        conn[0],
                        child,
                        conn[slot + 1],
                        r.role
                    );
                }
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use xnf_exec::{ExecStats, StreamResult};

    fn tiny_ws() -> Workspace {
        let result = QueryResult {
            streams: vec![
                StreamResult {
                    name: "a".into(),
                    kind: OutputKind::Node,
                    columns: vec!["k".into()],
                    rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                },
                StreamResult {
                    name: "b".into(),
                    kind: OutputKind::Node,
                    columns: vec!["k".into()],
                    rows: vec![vec![Value::Int(10)]],
                },
                StreamResult {
                    name: "ab".into(),
                    kind: OutputKind::Connection {
                        relationship: "ab".into(),
                        parent: "a".into(),
                        children: vec!["b".into()],
                        role: "links".into(),
                    },
                    columns: vec!["a_id".into(), "b_id".into()],
                    rows: vec![
                        vec![Value::Int(0), Value::Int(0)],
                        vec![Value::Int(1), Value::Int(0)],
                    ],
                },
            ],
            stats: ExecStats::default(),
        };
        Workspace::from_result(&result).unwrap()
    }

    #[test]
    fn text_rendering_lists_components_and_edges() {
        let ws = tiny_ws();
        let text = ws.to_text();
        assert!(text.contains("component a (2 tuples)"), "{text}");
        assert!(text.contains("-links-> b[0]"), "{text}");
    }

    #[test]
    fn dot_rendering_produces_graphviz() {
        let ws = tiny_ws();
        let dot = ws.to_dot();
        assert!(dot.starts_with("digraph co {"));
        assert_eq!(dot.matches("->").count(), 2, "{dot}");
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn insert_then_navigate_new_tuple() {
        let mut ws = tiny_ws();
        let id = ws.insert_row("b", vec![Value::Int(11)]).unwrap();
        ws.connect("ab", &[0, id]).unwrap();
        let kids: Vec<u32> = ws.children("ab", 0).unwrap().map(|t| t.id()).collect();
        assert!(kids.contains(&id));
        // Deleting the new tuple drops its connections.
        ws.delete_row("b", id).unwrap();
        let kids: Vec<u32> = ws.children("ab", 0).unwrap().map(|t| t.id()).collect();
        assert!(!kids.contains(&id));
    }

    #[test]
    fn connect_rejects_bad_arity_and_duplicates() {
        let mut ws = tiny_ws();
        assert!(ws.connect("ab", &[0]).is_err(), "arity check");
        assert!(ws.connect("ab", &[0, 0]).is_err(), "duplicate connection");
        ws.disconnect("ab", &[0, 0]).unwrap();
        ws.connect("ab", &[0, 0]).unwrap();
    }
}
