//! Updatability analysis and write-back (Sect. 2 "CO update operators").
//!
//! Node updates are view updates: a component defined by a *simple* view
//! (selection/projection of one base table) maps its changes straight back
//! to that table. Relationships defined "based on simple foreign keys or
//! connect tables" support connect/disconnect by updating the foreign key
//! or inserting/deleting mapping-table rows. Richer definitions (joins,
//! aggregation, arbitrary predicates) are readable but not updatable —
//! precisely the paper's rule.
//!
//! Identification of base rows uses optimistic match-by-value over all
//! mapped columns (the cache has no RIDs); a vanished base row surfaces as
//! a conflict error and aborts the write-back transaction.

use std::collections::HashMap;

use xnf_sql::{
    parse_statement, BinOp, Expr, SelectItem, Statement, TableRef, ViewBody, XnfDef, XnfQuery,
    XnfRelationship,
};
use xnf_storage::{Tuple, Value, ViewKind};

use crate::cache::{Change, TupleId, Workspace};
use crate::db::Database;
use crate::error::{Result, XnfError};

/// How a component maps back to base data.
#[derive(Debug, Clone)]
pub struct CompMeta {
    pub name: String,
    /// `Some` iff the component is a simple (updatable) view.
    pub base: Option<BaseMap>,
}

/// Mapping of an updatable component onto its base table.
#[derive(Debug, Clone)]
pub struct BaseMap {
    pub table: String,
    /// For each cache column: the base-table column ordinal.
    pub columns: Vec<usize>,
}

/// How a relationship maps back to base data.
#[derive(Debug, Clone)]
pub enum RelMeta {
    /// Predicate `parent.key = child.fk`: connect/disconnect update the
    /// child's foreign-key column.
    ForeignKey {
        name: String,
        /// Cache column of the parent holding the key value.
        parent_col: usize,
        /// Cache column of the child holding the FK (must be base-mapped).
        child_col: usize,
    },
    /// `USING m WHERE parent.a = m.x AND m.y = child.b`: connect inserts a
    /// mapping row, disconnect deletes it.
    ConnectTable {
        name: String,
        table: String,
        parent_col: usize,
        child_col: usize,
        /// Mapping-table column ordinals for the parent/child sides.
        m_parent_col: usize,
        m_child_col: usize,
    },
    /// Anything richer: readable, not updatable.
    General { name: String },
}

impl RelMeta {
    pub fn name(&self) -> &str {
        match self {
            RelMeta::ForeignKey { name, .. }
            | RelMeta::ConnectTable { name, .. }
            | RelMeta::General { name } => name,
        }
    }
}

/// Updatability metadata for a cached CO.
#[derive(Debug, Clone, Default)]
pub struct CoSchema {
    pub components: Vec<CompMeta>,
    pub relationships: Vec<RelMeta>,
}

impl CoSchema {
    pub fn component(&self, name: &str) -> Option<&CompMeta> {
        self.components
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn relationship(&self, name: &str) -> Option<&RelMeta> {
        self.relationships
            .iter()
            .find(|r| r.name().eq_ignore_ascii_case(name))
    }
}

/// Derive updatability metadata from an XNF query against a database's
/// catalog, inlining referenced XNF views.
pub fn derive_co_schema(db: &Database, q: &XnfQuery) -> Result<CoSchema> {
    let mut schema = CoSchema::default();
    let mut defs = Vec::new();
    flatten_defs(db, &q.defs, &mut defs, 0)?;
    let mut comp_by_name: HashMap<String, usize> = HashMap::new();
    for def in &defs {
        match def {
            XnfDef::Table { name, select, .. } => {
                let base = analyze_simple_view(db, select);
                comp_by_name.insert(name.to_ascii_lowercase(), schema.components.len());
                schema.components.push(CompMeta {
                    name: name.clone(),
                    base,
                });
            }
            XnfDef::Relationship(rel) => {
                schema
                    .relationships
                    .push(analyze_relationship(db, rel, &schema, &comp_by_name));
            }
            XnfDef::ViewRef { .. } => unreachable!("flattened"),
        }
    }
    Ok(schema)
}

pub(crate) fn flatten_defs(
    db: &Database,
    defs: &[XnfDef],
    out: &mut Vec<XnfDef>,
    depth: u32,
) -> Result<()> {
    if depth > 16 {
        return Err(XnfError::Api("XNF view inlining too deep".to_string()));
    }
    for def in defs {
        match def {
            XnfDef::ViewRef { name } => {
                let view = db
                    .catalog()
                    .view(name)
                    .ok_or_else(|| XnfError::Api(format!("unknown XNF view '{name}'")))?;
                if view.kind != ViewKind::Xnf {
                    return Err(XnfError::Api(format!("'{name}' is not an XNF view")));
                }
                let stmt = parse_statement(&view.text)?;
                let inner = match stmt {
                    Statement::Xnf(q) => q,
                    Statement::CreateView {
                        body: ViewBody::Xnf(q),
                        ..
                    } => q,
                    _ => {
                        return Err(XnfError::Api(format!(
                            "view '{name}' is not an OUT OF query"
                        )))
                    }
                };
                flatten_defs(db, &inner.defs, out, depth + 1)?;
            }
            other => out.push(other.clone()),
        }
    }
    Ok(())
}

/// A component is updatable iff it is `SELECT [*|cols] FROM one_base_table
/// [WHERE ...]` with no joins, grouping, distinct or unions. (Also reused
/// by materialized-view maintenance to detect the direct-apply strategy.)
pub(crate) fn analyze_simple_view(db: &Database, select: &xnf_sql::Select) -> Option<BaseMap> {
    if select.from.len() != 1
        || !select.joins.is_empty()
        || !select.group_by.is_empty()
        || select.having.is_some()
        || !select.unions.is_empty()
        || select.distinct
    {
        return None;
    }
    let TableRef::Named { name, .. } = &select.from[0] else {
        return None;
    };
    // Views (including materialized ones, whose names resolve to backing
    // tables through the catalog fallback) are not direct update targets.
    if db.catalog().view(name).is_some() {
        return None;
    }
    let table = db.catalog().table(name).ok()?;
    let mut columns = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                columns.extend(0..table.schema.len());
            }
            SelectItem::Expr {
                expr: Expr::Column { name: c, .. },
                ..
            } => {
                columns.push(table.schema.index_of(c)?);
            }
            _ => return None,
        }
    }
    Some(BaseMap {
        table: table.name.clone(),
        columns,
    })
}

/// Classify a relationship as FK-based, connect-table-based or general.
fn analyze_relationship(
    db: &Database,
    rel: &XnfRelationship,
    schema: &CoSchema,
    comp_by_name: &HashMap<String, usize>,
) -> RelMeta {
    let general = RelMeta::General {
        name: rel.name.clone(),
    };
    if rel.children.len() != 1 {
        return general;
    }
    let child = &rel.children[0];
    let conjuncts = rel.predicate.conjuncts();

    // Column resolver: qualifier must be parent/child/using-alias.
    let side_of = |e: &Expr| -> Option<(char, String)> {
        if let Expr::Column {
            qualifier: Some(q),
            name,
        } = e
        {
            if q.eq_ignore_ascii_case(&rel.parent) {
                return Some(('p', name.clone()));
            }
            if q.eq_ignore_ascii_case(child) {
                return Some(('c', name.clone()));
            }
            if rel
                .using
                .first()
                .map(|(t, a)| q.eq_ignore_ascii_case(a.as_deref().unwrap_or(t)))
                .unwrap_or(false)
            {
                return Some(('m', name.clone()));
            }
        }
        None
    };
    let eq_sides = |e: &Expr| -> Option<((char, String), (char, String))> {
        if let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = e
        {
            Some((side_of(left)?, side_of(right)?))
        } else {
            None
        }
    };

    // Cache column index lookup via the component's base map or columns.
    let comp_col = |comp: &str, col: &str| -> Option<usize> {
        let idx = comp_by_name.get(&comp.to_ascii_lowercase())?;
        let meta = &schema.components[*idx];
        // Columns of the cache are the select list; with a base map the
        // positions align with `columns`. Resolve through the base table.
        let base = meta.base.as_ref()?;
        let table = db.catalog().table(&base.table).ok()?;
        let base_ord = table.schema.index_of(col)?;
        base.columns.iter().position(|&b| b == base_ord)
    };

    if rel.using.is_empty() && conjuncts.len() == 1 {
        // FK pattern: parent.key = child.fk (either side order).
        if let Some((a, b)) = eq_sides(conjuncts[0]) {
            let (p, c) = match (a.0, b.0) {
                ('p', 'c') => (a.1, b.1),
                ('c', 'p') => (b.1, a.1),
                _ => return general,
            };
            if let (Some(pc), Some(cc)) = (comp_col(&rel.parent, &p), comp_col(child, &c)) {
                return RelMeta::ForeignKey {
                    name: rel.name.clone(),
                    parent_col: pc,
                    child_col: cc,
                };
            }
        }
        return general;
    }
    if rel.using.len() == 1 && conjuncts.len() == 2 {
        // Connect-table pattern: parent.a = m.x AND m.y = child.b.
        let (m_table, _) = &rel.using[0];
        let Some(table) = db.catalog().table(m_table).ok() else {
            return general;
        };
        let mut parent_side: Option<(String, String)> = None; // (parent col, m col)
        let mut child_side: Option<(String, String)> = None;
        for cj in &conjuncts {
            if let Some((a, b)) = eq_sides(cj) {
                match (a.0, b.0) {
                    ('p', 'm') => parent_side = Some((a.1, b.1)),
                    ('m', 'p') => parent_side = Some((b.1, a.1)),
                    ('c', 'm') => child_side = Some((a.1, b.1)),
                    ('m', 'c') => child_side = Some((b.1, a.1)),
                    _ => return general,
                }
            } else {
                return general;
            }
        }
        if let (Some((pcol, mx)), Some((ccol, my))) = (parent_side, child_side) {
            if let (Some(pc), Some(cc), Some(mp), Some(mc)) = (
                comp_col(&rel.parent, &pcol),
                comp_col(child, &ccol),
                table.schema.index_of(&mx),
                table.schema.index_of(&my),
            ) {
                return RelMeta::ConnectTable {
                    name: rel.name.clone(),
                    table: table.name.clone(),
                    parent_col: pc,
                    child_col: cc,
                    m_parent_col: mp,
                    m_child_col: mc,
                };
            }
        }
    }
    general
}

/// Apply the workspace's pending changes back to the database, atomically,
/// as one autocommit transaction of its own. Returns the number of
/// base-table operations performed. To join a session's open transaction,
/// use [`crate::Session::write_back`].
pub fn write_back(db: &Database, ws: &mut Workspace, schema: &CoSchema) -> Result<usize> {
    write_back_scoped(db, None, ws, schema)
}

/// [`write_back`] inside a transaction scope: with an open session
/// transaction the changes join it (isolated until the session commits,
/// undone by its rollback); otherwise a dedicated transaction wraps the
/// write-back and commits — its deltas flowing through the coalesced,
/// off-critical-path materialized-view maintenance pipeline — on
/// success, or rolls back cleanly on conflict/error.
pub(crate) fn write_back_scoped(
    db: &Database,
    scope: crate::db::Scope<'_>,
    ws: &mut Workspace,
    schema: &CoSchema,
) -> Result<usize> {
    let changes = ws.take_changes();
    let mut scope = crate::db::WriteScope::open(db, scope);
    let result = apply_changes(db, &mut scope, ws, schema, &changes);
    match result {
        Ok(n) => {
            scope.finish()?;
            Ok(n)
        }
        Err(e) => {
            // A write-back that owns its transaction aborts it wholesale
            // (write conflicts included); inside a session transaction the
            // error propagates and the session decides.
            scope.abort_if_auto()?;
            // Restore the log so the caller may retry.
            ws.changes = changes;
            Err(e)
        }
    }
}

fn apply_changes(
    db: &Database,
    scope: &mut crate::db::WriteScope<'_>,
    ws: &Workspace,
    schema: &CoSchema,
    changes: &[Change],
) -> Result<usize> {
    let mut ops = 0;
    for change in changes {
        match change {
            Change::Update {
                comp,
                id: _,
                old,
                new,
            } => {
                let meta = &schema.components[*comp];
                let base = updatable(meta)?;
                update_base_row(db, scope, base, old, new)?;
                ops += 1;
            }
            Change::Insert { comp, id } => {
                let meta = &schema.components[*comp];
                let base = updatable(meta)?;
                let row = ws.components[*comp].row(*id);
                insert_base_row(db, scope, base, row)?;
                ops += 1;
            }
            Change::Delete { comp, id: _, old } => {
                let meta = &schema.components[*comp];
                let base = updatable(meta)?;
                delete_base_row(db, scope, base, old)?;
                ops += 1;
            }
            Change::Connect { rel, conn } => {
                apply_connect(db, scope, ws, schema, *rel, conn, true)?;
                ops += 1;
            }
            Change::Disconnect { rel, conn } => {
                apply_connect(db, scope, ws, schema, *rel, conn, false)?;
                ops += 1;
            }
        }
    }
    Ok(ops)
}

fn updatable(meta: &CompMeta) -> Result<&BaseMap> {
    meta.base.as_ref().ok_or_else(|| {
        XnfError::Api(format!(
            "component '{}' is not updatable (not a simple single-table view)",
            meta.name
        ))
    })
}

/// Find the base RID whose mapped columns equal the cached row, under the
/// writing scope's snapshot (so a write-back sees its own earlier changes
/// and is isolated from concurrent transactions).
fn find_base_rid(
    db: &Database,
    scope: &crate::db::WriteScope<'_>,
    base: &BaseMap,
    row: &[Value],
) -> Result<xnf_storage::Rid> {
    find_base_rid_masked(db, scope, base, row, &[])
}

/// Like [`find_base_rid`] but ignoring the cache columns in `skip` — used
/// by FK connect/disconnect, where the cached FK value is stale by design
/// (the cache records re-wiring in the adjacency, not in the row image).
fn find_base_rid_masked(
    db: &Database,
    scope: &crate::db::WriteScope<'_>,
    base: &BaseMap,
    row: &[Value],
    skip: &[usize],
) -> Result<xnf_storage::Rid> {
    let t = db.catalog().table(&base.table)?;
    let mut found = None;
    t.for_each_visible(&scope.snapshot(), |rid, tuple| {
        let matches = base
            .columns
            .iter()
            .zip(row)
            .enumerate()
            .all(|(i, (&b, v))| skip.contains(&i) || tuple.values[b].total_cmp(v).is_eq());
        if matches {
            found = Some(rid);
            Ok(false)
        } else {
            Ok(true)
        }
    })?;
    found.ok_or_else(|| {
        XnfError::Api(format!(
            "write-back conflict: no row in '{}' matches the cached image",
            base.table
        ))
    })
}

fn update_base_row(
    db: &Database,
    scope: &mut crate::db::WriteScope<'_>,
    base: &BaseMap,
    old: &[Value],
    new: &[Value],
) -> Result<()> {
    let rid = find_base_rid(db, scope, base, old)?;
    let t = db.catalog().table(&base.table)?;
    let mut tuple = t
        .get_snapshot(rid, &scope.snapshot())?
        .ok_or_else(|| XnfError::Api("write-back conflict: row vanished".to_string()))?;
    for (&b, v) in base.columns.iter().zip(new) {
        tuple.values[b] = v.clone();
    }
    let (old_tuple, new_rid) = t.update_txn(rid, &tuple, scope.xid())?;
    scope.log_update(&t, rid, new_rid, old_tuple, &tuple);
    Ok(())
}

fn insert_base_row(
    db: &Database,
    scope: &mut crate::db::WriteScope<'_>,
    base: &BaseMap,
    row: &[Value],
) -> Result<()> {
    let t = db.catalog().table(&base.table)?;
    let mut values = vec![Value::Null; t.schema.len()];
    for (&b, v) in base.columns.iter().zip(row) {
        values[b] = v.clone();
    }
    let tuple = Tuple::new(values);
    let rid = t.insert_txn(&tuple, scope.xid())?;
    scope.log_insert(&t, rid, &tuple);
    Ok(())
}

fn delete_base_row(
    db: &Database,
    scope: &mut crate::db::WriteScope<'_>,
    base: &BaseMap,
    row: &[Value],
) -> Result<()> {
    let rid = find_base_rid(db, scope, base, row)?;
    let t = db.catalog().table(&base.table)?;
    let old = t.mark_delete_txn(rid, scope.xid())?;
    scope.log_delete(&t, rid, old);
    Ok(())
}

fn apply_connect(
    db: &Database,
    scope: &mut crate::db::WriteScope<'_>,
    ws: &Workspace,
    schema: &CoSchema,
    rel: usize,
    conn: &[TupleId],
    connect: bool,
) -> Result<()> {
    let meta = &schema.relationships[rel];
    let r = &ws.relationships[rel];
    let parent_row = ws.components[r.parent].row(conn[0]);
    let child_row = ws.components[r.children[0]].row(conn[1]);
    match meta {
        RelMeta::ForeignKey {
            parent_col,
            child_col,
            ..
        } => {
            // Update the child's FK column to the parent key (or NULL). The
            // cached FK value may be stale (a preceding disconnect already
            // rewrote it in the base), so match ignoring the FK column.
            let child_meta = &schema.components[r.children[0]];
            let base = updatable(child_meta)?;
            let rid = find_base_rid_masked(db, scope, base, child_row, &[*child_col])?;
            let t = db.catalog().table(&base.table)?;
            let mut tuple = t
                .get_snapshot(rid, &scope.snapshot())?
                .ok_or_else(|| XnfError::Api("write-back conflict: row vanished".to_string()))?;
            tuple.values[base.columns[*child_col]] = if connect {
                parent_row[*parent_col].clone()
            } else {
                Value::Null
            };
            let (old_tuple, new_rid) = t.update_txn(rid, &tuple, scope.xid())?;
            scope.log_update(&t, rid, new_rid, old_tuple, &tuple);
            Ok(())
        }
        RelMeta::ConnectTable {
            table,
            parent_col,
            child_col,
            m_parent_col,
            m_child_col,
            ..
        } => {
            let t = db.catalog().table(table)?;
            if connect {
                let mut values = vec![Value::Null; t.schema.len()];
                values[*m_parent_col] = parent_row[*parent_col].clone();
                values[*m_child_col] = child_row[*child_col].clone();
                let tuple = Tuple::new(values);
                let rid = t.insert_txn(&tuple, scope.xid())?;
                scope.log_insert(&t, rid, &tuple);
            } else {
                // Delete one matching mapping row.
                let mut target = None;
                t.for_each_visible(&scope.snapshot(), |rid, tuple| {
                    if tuple.values[*m_parent_col]
                        .total_cmp(&parent_row[*parent_col])
                        .is_eq()
                        && tuple.values[*m_child_col]
                            .total_cmp(&child_row[*child_col])
                            .is_eq()
                    {
                        target = Some(rid);
                        Ok(false)
                    } else {
                        Ok(true)
                    }
                })?;
                let rid = target.ok_or_else(|| {
                    XnfError::Api(format!(
                        "write-back conflict: mapping row missing in '{table}'"
                    ))
                })?;
                let old = t.mark_delete_txn(rid, scope.xid())?;
                scope.log_delete(&t, rid, old);
            }
            Ok(())
        }
        RelMeta::General { name } => Err(XnfError::Api(format!(
            "relationship '{name}' is not updatable (neither FK- nor connect-table-based)"
        ))),
    }
}
